//! Dual-state LIF neuron parameters and the spike nonlinearity.

use crate::surrogate::Surrogate;
use serde::{Deserialize, Serialize};

/// Parameters of the dual-state (current + voltage) LIF neuron of
/// eqs. (5)–(7).
///
/// The dynamics per timestep `t` for a layer `k` (Algorithm 1):
///
/// ```text
/// c(t) = d_c · c(t−1) + W·o_in(t) + b          (synaptic current, eq. 5)
/// v(t) = d_v · v(t−1) · (1 − o(t−1)) + c(t)    (membrane voltage, eq. 6)
/// o(t) = 1 if v(t) > V_th else 0               (spike, eq. 7)
/// ```
///
/// The `(1 − o(t−1))` factor implements the reset-to-zero of eq. (7) in a
/// form that STBP can differentiate through.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifParams {
    /// Spike threshold `V_th`.
    pub v_th: f64,
    /// Current decay factor `d_c ∈ [0, 1)`.
    pub d_c: f64,
    /// Voltage decay factor `d_v ∈ [0, 1)`.
    pub d_v: f64,
}

impl LifParams {
    /// The paper's Table 2 values: `V_th = 0.5`, `d_c = 0.5`, `d_v = 0.8`.
    pub fn paper() -> Self {
        Self { v_th: 0.5, d_c: 0.5, d_v: 0.8 }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a message if the threshold is non-positive or a decay factor
    /// is outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), String> {
        if self.v_th <= 0.0 || !self.v_th.is_finite() {
            return Err(format!("v_th must be positive, got {}", self.v_th));
        }
        for (name, d) in [("d_c", self.d_c), ("d_v", self.d_v)] {
            if !(0.0..1.0).contains(&d) {
                return Err(format!("{name} must be in [0, 1), got {d}"));
            }
        }
        Ok(())
    }
}

impl Default for LifParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Threshold-adaptation parameters for **ALIF** (adaptive LIF) neurons.
///
/// Each spike raises a per-neuron adaptation trace `b`, which in turn
/// raises the effective threshold — a homeostatic mechanism that spreads
/// activity across the population and reduces bursting:
///
/// ```text
/// b(t)  = ρ · b(t−1) + (1 − ρ) · o(t−1)
/// th(t) = V_th + β · b(t)
/// ```
///
/// ALIF is the richer-neuron direction the paper's future-work section
/// points at (and the LSNN/PopSAN literature uses); `spikefolio` supports
/// it end-to-end in training (STBP differentiates through the adaptation
/// recurrence), while the Loihi chip model restricts deployment to plain
/// LIF.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveParams {
    /// Threshold increment per unit of adaptation trace (`β ≥ 0`).
    pub beta: f64,
    /// Adaptation decay (`ρ ∈ [0, 1)`): larger = longer memory.
    pub rho: f64,
}

impl AdaptiveParams {
    /// A moderate default: `β = 0.2`, `ρ = 0.9`.
    pub fn new() -> Self {
        Self { beta: 0.2, rho: 0.9 }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a message if `beta < 0` or `rho` is outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), String> {
        if self.beta < 0.0 || !self.beta.is_finite() {
            return Err(format!("beta must be non-negative, got {}", self.beta));
        }
        if !(0.0..1.0).contains(&self.rho) {
            return Err(format!("rho must be in [0, 1), got {}", self.rho));
        }
        Ok(())
    }
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        Self::new()
    }
}

/// The spike nonlinearity used in the forward pass.
///
/// [`SpikeFn::Hard`] is the paper's threshold (eq. 7) with a surrogate
/// gradient for STBP. [`SpikeFn::Soft`] replaces the threshold with a
/// sigmoid of matching location: the forward pass becomes fully
/// differentiable and the analytic gradient *exactly* equals the backward
/// pass — which is how the STBP recurrences are validated against finite
/// differences in the test suite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpikeFn {
    /// Heaviside threshold with surrogate gradient (production mode).
    Hard {
        /// Surrogate used during the backward pass.
        surrogate: Surrogate,
    },
    /// Differentiable sigmoid relaxation (gradient-check mode).
    Soft {
        /// Sigmoid temperature: smaller = closer to the hard threshold.
        temperature: f64,
    },
}

impl SpikeFn {
    /// Spike output for membrane voltage `v` and threshold `v_th`.
    #[inline]
    pub fn spike(&self, v: f64, v_th: f64) -> f64 {
        match *self {
            SpikeFn::Hard { .. } => {
                if v > v_th {
                    1.0
                } else {
                    0.0
                }
            }
            SpikeFn::Soft { temperature } => 1.0 / (1.0 + (-(v - v_th) / temperature).exp()),
        }
    }

    /// Gradient `∂o/∂v` used in the backward pass.
    #[inline]
    pub fn grad(&self, v: f64, v_th: f64) -> f64 {
        match *self {
            SpikeFn::Hard { surrogate } => surrogate.grad(v, v_th),
            SpikeFn::Soft { temperature } => {
                let s = self.spike(v, v_th);
                s * (1.0 - s) / temperature
            }
        }
    }
}

impl Default for SpikeFn {
    fn default() -> Self {
        SpikeFn::Hard { surrogate: Surrogate::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_match_table2() {
        let p = LifParams::paper();
        assert_eq!((p.v_th, p.d_c, p.d_v), (0.5, 0.5, 0.8));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_params() {
        assert!(LifParams { v_th: 0.0, ..LifParams::paper() }.validate().is_err());
        assert!(LifParams { d_c: 1.0, ..LifParams::paper() }.validate().is_err());
        assert!(LifParams { d_v: -0.1, ..LifParams::paper() }.validate().is_err());
    }

    #[test]
    fn hard_spike_is_binary() {
        let f = SpikeFn::default();
        assert_eq!(f.spike(0.6, 0.5), 1.0);
        assert_eq!(f.spike(0.4, 0.5), 0.0);
        assert_eq!(f.spike(0.5, 0.5), 0.0, "threshold itself does not spike (strict >)");
    }

    #[test]
    fn soft_spike_is_sigmoid() {
        let f = SpikeFn::Soft { temperature: 0.1 };
        assert!((f.spike(0.5, 0.5) - 0.5).abs() < 1e-12);
        assert!(f.spike(1.5, 0.5) > 0.999);
        assert!(f.spike(-0.5, 0.5) < 0.001);
    }

    #[test]
    fn soft_grad_matches_finite_difference() {
        let f = SpikeFn::Soft { temperature: 0.3 };
        for &v in &[0.1, 0.4, 0.5, 0.6, 1.2] {
            let eps = 1e-6;
            let num = (f.spike(v + eps, 0.5) - f.spike(v - eps, 0.5)) / (2.0 * eps);
            assert!((f.grad(v, 0.5) - num).abs() < 1e-6, "v = {v}");
        }
    }

    #[test]
    fn hard_grad_uses_surrogate() {
        let f = SpikeFn::Hard { surrogate: Surrogate::Rectangular { amplitude: 2.0, window: 0.1 } };
        assert_eq!(f.grad(0.55, 0.5), 2.0);
        assert_eq!(f.grad(0.75, 0.5), 0.0);
    }
}
