//! ASCII spike-raster rendering — a debugging aid for inspecting what a
//! network actually does over its `T` timesteps.

use spikefolio_tensor::Matrix;

/// Renders a spike raster (`T × neurons`, values in `[0, 1]`) as ASCII
/// art: one row per timestep, `|` for a spike (≥ 0.5), `·` for silence,
/// with a trailing per-step spike count. Wide rasters are downsampled to
/// `max_width` columns by max-pooling, noted in the header.
///
/// # Example
///
/// ```
/// use spikefolio_tensor::Matrix;
///
/// let raster = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
/// let art = spikefolio_snn::raster::render(&raster, 80);
/// assert!(art.contains("|·|"));
/// ```
pub fn render(raster: &Matrix, max_width: usize) -> String {
    let max_width = max_width.max(8);
    let n = raster.cols();
    let pool = n.div_ceil(max_width).max(1);
    let width = n.div_ceil(pool);
    let mut s = if pool > 1 {
        format!("spike raster: {} steps × {} neurons (pooled ×{pool})\n", raster.rows(), n)
    } else {
        format!("spike raster: {} steps × {} neurons\n", raster.rows(), n)
    };
    for t in 0..raster.rows() {
        let row = raster.row(t);
        let mut count = 0usize;
        s.push_str(&format!("t={t:<3} "));
        for c in 0..width {
            let from = c * pool;
            let to = (from + pool).min(n);
            let fired = row[from..to].iter().any(|&o| o >= 0.5);
            count += row[from..to].iter().filter(|&&o| o >= 0.5).count();
            s.push(if fired { '|' } else { '·' });
        }
        s.push_str(&format!("  ({count} spikes)\n"));
    }
    s
}

/// Per-neuron firing rates of a raster (mean over timesteps).
pub fn firing_rates(raster: &Matrix) -> Vec<f64> {
    let t = raster.rows().max(1) as f64;
    (0..raster.cols()).map(|c| raster.col(c).iter().sum::<f64>() / t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_spikes_and_counts() {
        let r = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 0.0, 0.0]]);
        let art = render(&r, 80);
        assert!(art.contains("t=0   |·|  (2 spikes)"), "{art}");
        assert!(art.contains("t=1   ···  (0 spikes)"), "{art}");
    }

    #[test]
    fn pools_wide_rasters() {
        let r = Matrix::filled(2, 1000, 1.0);
        let art = render(&r, 50);
        assert!(art.contains("pooled"));
        // Each line stays near the width budget.
        let line = art.lines().nth(1).unwrap();
        assert!(line.len() < 80, "line too long: {}", line.len());
        assert!(art.contains("(1000 spikes)"));
    }

    #[test]
    fn firing_rates_average_over_time() {
        let r = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]);
        let rates = firing_rates(&r);
        assert_eq!(rates, vec![1.0, 0.5]);
    }

    #[test]
    fn works_on_real_encoder_output() {
        use crate::encoder::{PopulationEncoder, PopulationEncoderConfig};
        use rand::SeedableRng;
        let enc = PopulationEncoder::new(4, PopulationEncoderConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let raster = enc.encode(&[1.0, 0.9, 1.1, 1.2], 5, &mut rng);
        let art = render(&raster, 60);
        assert_eq!(art.lines().count(), 6); // header + 5 steps
    }
}
