//! Population encoder (eqs. 2–4): Gaussian receptive fields turning a real
//! state vector into spike trains.
//!
//! Each of the `M` state dimensions gets a population of `P` neurons whose
//! Gaussian means tile the dimension's value range. The stimulation
//! strength of neuron `k` for state value `s` is (eq. 2)
//!
//! ```text
//! A_E = exp(−½ ((s − μ_k)/σ)²)
//! ```
//!
//! and spikes over the `T` simulation steps are produced either
//! probabilistically (Bernoulli(`A_E`) per step) or deterministically via a
//! one-step soft-reset LIF accumulator (eqs. 3–4).

use rand::Rng;
use serde::{Deserialize, Serialize};
use spikefolio_tensor::Matrix;

/// Spike-generation mode of the encoder (§II.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Encoding {
    /// Each neuron spikes with probability `A_E` at every timestep.
    Probabilistic,
    /// One-step soft-reset LIF accumulator (eqs. 3–4): deterministic, used
    /// for Loihi deployment where reproducibility matters.
    Deterministic,
}

/// Configuration of the population encoder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationEncoderConfig {
    /// Neurons per state dimension (`P`).
    pub pop_size: usize,
    /// Receptive-field width `σ` (eq. 2). If zero or negative, a width of
    /// `(hi − lo) / pop_size` is derived so neighbouring fields overlap.
    pub sigma: f64,
    /// Lower edge of the expected state value range.
    pub value_lo: f64,
    /// Upper edge of the expected state value range.
    pub value_hi: f64,
    /// Spike-generation mode.
    pub encoding: Encoding,
    /// Soft-reset constant `ε` of eq. (4).
    pub epsilon: f64,
}

impl Default for PopulationEncoderConfig {
    /// Ten neurons per dimension over `[0.5, 1.5]` (normalized price ratios
    /// hover around 1), deterministic encoding.
    fn default() -> Self {
        Self {
            pop_size: 10,
            sigma: 0.0,
            value_lo: 0.5,
            value_hi: 1.5,
            encoding: Encoding::Deterministic,
            epsilon: 0.05,
        }
    }
}

/// The population encoder. See the [module docs](self).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use spikefolio_snn::{PopulationEncoder, PopulationEncoderConfig};
///
/// let enc = PopulationEncoder::new(2, PopulationEncoderConfig::default());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let spikes = enc.encode(&[1.0, 1.2], 5, &mut rng); // T=5 rows
/// assert_eq!(spikes.shape(), (5, enc.output_dim()));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationEncoder {
    state_dim: usize,
    config: PopulationEncoderConfig,
    /// Gaussian means, `state_dim × pop_size`, row per dimension.
    means: Matrix,
    sigma: f64,
}

impl PopulationEncoder {
    /// Builds an encoder for `state_dim` input dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `state_dim` or `pop_size` is zero, or if
    /// `value_lo >= value_hi`.
    pub fn new(state_dim: usize, config: PopulationEncoderConfig) -> Self {
        assert!(state_dim > 0, "state_dim must be positive");
        assert!(config.pop_size > 0, "pop_size must be positive");
        assert!(
            config.value_lo < config.value_hi,
            "value range [{}, {}] is empty",
            config.value_lo,
            config.value_hi
        );
        let span = config.value_hi - config.value_lo;
        let sigma = if config.sigma > 0.0 { config.sigma } else { span / config.pop_size as f64 };
        // Means tile the range uniformly: μ_k = lo + (k + ½)·span/P.
        let means = Matrix::from_fn(state_dim, config.pop_size, |_, k| {
            config.value_lo + (k as f64 + 0.5) * span / config.pop_size as f64
        });
        Self { state_dim, config, means, sigma }
    }

    /// Number of input dimensions.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Total number of encoder neurons (`state_dim × pop_size`).
    pub fn output_dim(&self) -> usize {
        self.state_dim * self.config.pop_size
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &PopulationEncoderConfig {
        &self.config
    }

    /// The receptive-field width in force (derived if the configured σ was
    /// non-positive).
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Stimulation strengths `A_E` (eq. 2) for a state vector: one entry
    /// per encoder neuron, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != state_dim`.
    pub fn stimulation(&self, state: &[f64]) -> Vec<f64> {
        assert_eq!(state.len(), self.state_dim, "state length mismatch");
        let mut a = Vec::with_capacity(self.output_dim());
        for (dim, &s) in state.iter().enumerate() {
            for k in 0..self.config.pop_size {
                let mu = self.means[(dim, k)];
                let z = (s - mu) / self.sigma;
                a.push((-0.5 * z * z).exp());
            }
        }
        a
    }

    /// Generates the spike train: a `T × output_dim` matrix of 0/1 values.
    ///
    /// Probabilistic mode draws Bernoulli(`A_E`) per step from `rng`;
    /// deterministic mode integrates `A_E` in a soft-reset accumulator
    /// (eqs. 3–4) and ignores `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != state_dim` or `timesteps == 0`.
    pub fn encode<R: Rng + ?Sized>(&self, state: &[f64], timesteps: usize, rng: &mut R) -> Matrix {
        let mut spikes = Matrix::zeros(timesteps, self.output_dim());
        self.encode_into(state, timesteps, rng, &mut spikes);
        spikes
    }

    /// Like [`PopulationEncoder::encode`], but writes into a caller-owned
    /// `timesteps × output_dim` matrix (cleared first), so batch drivers can
    /// reuse one scratch buffer across samples. Consumes `rng` identically
    /// to [`PopulationEncoder::encode`].
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != state_dim`, `timesteps == 0`, or `out` has
    /// the wrong shape.
    pub fn encode_into<R: Rng + ?Sized>(
        &self,
        state: &[f64],
        timesteps: usize,
        rng: &mut R,
        out: &mut Matrix,
    ) {
        assert!(timesteps > 0, "timesteps must be positive");
        let n = self.output_dim();
        assert_eq!(
            out.shape(),
            (timesteps, n),
            "encode_into: out shape {:?} != ({timesteps}, {n})",
            out.shape()
        );
        let a = self.stimulation(state);
        out.fill_zero();
        let spikes = out;
        match self.config.encoding {
            Encoding::Probabilistic => {
                for t in 0..timesteps {
                    let row = spikes.row_mut(t);
                    for (o, &p) in row.iter_mut().zip(&a) {
                        *o = if rng.gen::<f64>() < p { 1.0 } else { 0.0 };
                    }
                }
            }
            Encoding::Deterministic => {
                let eps = self.config.epsilon;
                let mut v = vec![0.0_f64; n];
                for t in 0..timesteps {
                    let row = spikes.row_mut(t);
                    for ((o, vk), &ak) in row.iter_mut().zip(v.iter_mut()).zip(&a) {
                        *vk += ak; // eq. (3)
                        if *vk > 1.0 - eps {
                            *o = 1.0;
                            *vk -= 1.0 - eps; // soft reset, eq. (4)
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    fn encoder(encoding: Encoding) -> PopulationEncoder {
        PopulationEncoder::new(
            3,
            PopulationEncoderConfig { encoding, ..PopulationEncoderConfig::default() },
        )
    }

    #[test]
    fn output_dim_is_state_times_pop() {
        let e = encoder(Encoding::Deterministic);
        assert_eq!(e.output_dim(), 30);
    }

    #[test]
    fn stimulation_peaks_at_nearest_mean() {
        let e = PopulationEncoder::new(
            1,
            PopulationEncoderConfig { pop_size: 5, ..PopulationEncoderConfig::default() },
        );
        // Means are at 0.6, 0.8, 1.0, 1.2, 1.4; stimulate with s = 1.0.
        let a = e.stimulation(&[1.0]);
        let best = spikefolio_tensor::vector::argmax(&a).unwrap();
        assert_eq!(best, 2);
        assert!((a[2] - 1.0).abs() < 1e-12, "exact mean match gives A_E = 1");
    }

    #[test]
    fn stimulation_is_in_unit_interval() {
        let e = encoder(Encoding::Deterministic);
        for s in [[0.0, 1.0, 3.0], [0.5, 1.5, 1.0], [-2.0, 0.9, 1.1]] {
            let a = e.stimulation(&s);
            assert!(a.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn deterministic_encoding_ignores_rng() {
        let e = encoder(Encoding::Deterministic);
        let s1 = e.encode(&[1.0, 0.9, 1.1], 5, &mut rng());
        let s2 = e.encode(&[1.0, 0.9, 1.1], 5, &mut rand::rngs::StdRng::seed_from_u64(12345));
        assert_eq!(s1, s2);
    }

    #[test]
    fn probabilistic_encoding_uses_rng() {
        let e = encoder(Encoding::Probabilistic);
        let s1 = e.encode(&[1.0, 0.9, 1.1], 50, &mut rng());
        let s2 = e.encode(&[1.0, 0.9, 1.1], 50, &mut rand::rngs::StdRng::seed_from_u64(12345));
        assert_ne!(s1, s2, "different RNG streams should differ over 50 steps");
    }

    #[test]
    fn spikes_are_binary() {
        for mode in [Encoding::Deterministic, Encoding::Probabilistic] {
            let e = encoder(mode);
            let s = e.encode(&[1.0, 0.8, 1.2], 7, &mut rng());
            assert!(s.as_slice().iter().all(|&x| x == 0.0 || x == 1.0));
        }
    }

    #[test]
    fn stronger_stimulation_spikes_more() {
        // A neuron exactly at its mean (A_E = 1) must out-spike one far away.
        let e = PopulationEncoder::new(
            1,
            PopulationEncoderConfig { pop_size: 5, ..PopulationEncoderConfig::default() },
        );
        let spikes = e.encode(&[1.0], 10, &mut rng());
        let count = |k: usize| -> f64 { (0..10).map(|t| spikes[(t, k)]).sum() };
        assert!(count(2) > count(0), "on-mean neuron should spike more than edge neuron");
    }

    #[test]
    fn deterministic_rate_tracks_stimulation() {
        // With A_E = 1 the accumulator fires every step (1.0 > 1 - ε always
        // after one accumulation); with A_E = 0.5 roughly every other step.
        let e = PopulationEncoder::new(
            1,
            PopulationEncoderConfig {
                pop_size: 1,
                sigma: 1.0,
                value_lo: 0.0,
                value_hi: 2.0,
                encoding: Encoding::Deterministic,
                epsilon: 0.05,
            },
        );
        // pop_size 1 → mean at 1.0.
        let t = 20;
        let s_full = e.encode(&[1.0], t, &mut rng());
        let fired: f64 = s_full.as_slice().iter().sum();
        assert_eq!(fired, t as f64, "A_E = 1 fires every step");
    }

    #[test]
    fn probabilistic_rate_approximates_stimulation() {
        let e = PopulationEncoder::new(
            1,
            PopulationEncoderConfig {
                pop_size: 1,
                sigma: 1.0,
                value_lo: 0.0,
                value_hi: 2.0,
                encoding: Encoding::Probabilistic,
                epsilon: 0.05,
            },
        );
        let a = e.stimulation(&[1.5])[0]; // off-mean → A_E < 1
        let t = 4000;
        let s = e.encode(&[1.5], t, &mut rng());
        let rate = s.as_slice().iter().sum::<f64>() / t as f64;
        assert!((rate - a).abs() < 0.05, "rate {rate} vs A_E {a}");
    }

    #[test]
    fn encode_into_reuses_buffer_and_matches_encode() {
        for mode in [Encoding::Deterministic, Encoding::Probabilistic] {
            let e = encoder(mode);
            let state = [1.0, 0.9, 1.1];
            let fresh = e.encode(&state, 5, &mut rng());
            // Same seed, dirty reused buffer: identical spikes and RNG use.
            let mut buf = Matrix::filled(5, e.output_dim(), 7.0);
            let mut r = rng();
            e.encode_into(&state, 5, &mut r, &mut buf);
            assert_eq!(buf, fresh, "{mode:?}");
            // The RNG must have advanced exactly as in `encode`.
            let mut r2 = rng();
            let _ = e.encode(&state, 5, &mut r2);
            assert_eq!(r.next_u64(), r2.next_u64(), "{mode:?} RNG stream diverged");
        }
    }

    #[test]
    #[should_panic(expected = "encode_into: out shape")]
    fn encode_into_rejects_wrong_shape() {
        let e = encoder(Encoding::Deterministic);
        let mut buf = Matrix::zeros(4, e.output_dim());
        e.encode_into(&[1.0, 0.9, 1.1], 5, &mut rng(), &mut buf);
    }

    #[test]
    #[should_panic(expected = "state length")]
    fn wrong_state_length_panics() {
        let e = encoder(Encoding::Deterministic);
        let _ = e.stimulation(&[1.0]);
    }

    #[test]
    fn derived_sigma_overlaps_fields() {
        let e = PopulationEncoder::new(1, PopulationEncoderConfig::default());
        // σ derived as span/P = 0.1; neighbouring means are 0.1 apart, so a
        // state halfway between two means still stimulates both at
        // exp(-1/8) ≈ 0.88.
        let a = e.stimulation(&[0.65]);
        let active = a.iter().filter(|&&x| x > 0.5).count();
        assert!(active >= 2, "receptive fields should overlap, got {active} active");
    }
}
