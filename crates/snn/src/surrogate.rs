//! Pseudo-gradient (surrogate) functions for the spike nonlinearity.
//!
//! The Heaviside spike function has zero gradient almost everywhere, so
//! STBP substitutes a *pseudo-gradient* `z(v)` around the threshold
//! (eq. 11). The paper uses the rectangular window, which it reports as
//! experimentally best; triangular and sigmoid-derivative shapes are
//! provided for the ablation bench.

use serde::{Deserialize, Serialize};

/// Surrogate gradient shape for the spike threshold.
///
/// # Example
///
/// ```
/// use spikefolio_snn::Surrogate;
///
/// let z = Surrogate::paper_rectangular(); // Table 2 parameters
/// assert!(z.grad(0.5, 0.5) > 0.0);   // at threshold the gradient passes
/// assert_eq!(z.grad(5.0, 0.5), 0.0); // far away it is zero
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Surrogate {
    /// Rectangular window (eq. 11): `z(v) = a1` if `|v − V_th| < a2`,
    /// else 0.
    Rectangular {
        /// Gradient amplitude `a1`.
        amplitude: f64,
        /// Half-width `a2` of the window around the threshold.
        window: f64,
    },
    /// Triangular hat: `z(v) = a1 · max(0, 1 − |v − V_th|/a2)`.
    Triangular {
        /// Peak amplitude `a1`.
        amplitude: f64,
        /// Base half-width `a2`.
        window: f64,
    },
    /// Derivative of a scaled sigmoid: `z(v) = a1 · σ'( (v − V_th)/a2 )`
    /// with `σ'(x) = σ(x)(1 − σ(x))` (multiplied by `1/a2`).
    SigmoidDerivative {
        /// Amplitude `a1`.
        amplitude: f64,
        /// Temperature `a2`.
        temperature: f64,
    },
}

impl Surrogate {
    /// The paper's Table 2 rectangular surrogate. Table 2 lists
    /// `(a1, a2) = (9.0, 0.4)`; combined with the `×0.1` convention of the
    /// STBP reference implementation this is an effective amplitude of 0.9
    /// over a window of half-width 0.4.
    pub fn paper_rectangular() -> Self {
        Surrogate::Rectangular { amplitude: 0.9, window: 0.4 }
    }

    /// Pseudo-gradient `z(v)` at membrane voltage `v` with threshold
    /// `v_th`.
    pub fn grad(&self, v: f64, v_th: f64) -> f64 {
        let d = v - v_th;
        match *self {
            Surrogate::Rectangular { amplitude, window } => {
                if d.abs() < window {
                    amplitude
                } else {
                    0.0
                }
            }
            Surrogate::Triangular { amplitude, window } => {
                amplitude * (1.0 - d.abs() / window).max(0.0)
            }
            Surrogate::SigmoidDerivative { amplitude, temperature } => {
                let s = 1.0 / (1.0 + (-d / temperature).exp());
                amplitude * s * (1.0 - s) / temperature
            }
        }
    }

    /// Short display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Surrogate::Rectangular { .. } => "rectangular",
            Surrogate::Triangular { .. } => "triangular",
            Surrogate::SigmoidDerivative { .. } => "sigmoid",
        }
    }
}

impl Default for Surrogate {
    fn default() -> Self {
        Surrogate::paper_rectangular()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_flat_inside_window() {
        let z = Surrogate::Rectangular { amplitude: 0.9, window: 0.4 };
        assert_eq!(z.grad(0.5, 0.5), 0.9);
        assert_eq!(z.grad(0.89, 0.5), 0.9);
        assert_eq!(z.grad(0.91, 0.5), 0.0);
        assert_eq!(z.grad(0.09, 0.5), 0.0);
    }

    #[test]
    fn triangular_peaks_at_threshold() {
        let z = Surrogate::Triangular { amplitude: 1.0, window: 0.5 };
        assert_eq!(z.grad(0.5, 0.5), 1.0);
        assert!((z.grad(0.75, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(z.grad(1.1, 0.5), 0.0);
    }

    #[test]
    fn sigmoid_derivative_is_smooth_and_positive() {
        let z = Surrogate::SigmoidDerivative { amplitude: 1.0, temperature: 0.25 };
        let peak = z.grad(0.5, 0.5);
        assert!(peak > 0.0);
        assert!(z.grad(0.6, 0.5) < peak);
        assert!(z.grad(0.4, 0.5) < peak);
        // Symmetric.
        assert!((z.grad(0.6, 0.5) - z.grad(0.4, 0.5)).abs() < 1e-12);
    }

    #[test]
    fn all_shapes_vanish_far_from_threshold() {
        for z in [
            Surrogate::paper_rectangular(),
            Surrogate::Triangular { amplitude: 1.0, window: 0.5 },
            Surrogate::SigmoidDerivative { amplitude: 1.0, temperature: 0.1 },
        ] {
            assert!(z.grad(100.0, 0.5) < 1e-9, "{}", z.name());
            assert!(z.grad(-100.0, 0.5) < 1e-9, "{}", z.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            Surrogate::paper_rectangular().name(),
            Surrogate::Triangular { amplitude: 1.0, window: 1.0 }.name(),
            Surrogate::SigmoidDerivative { amplitude: 1.0, temperature: 1.0 }.name(),
        ];
        assert_eq!(names.len(), 3);
        assert_ne!(names[0], names[1]);
        assert_ne!(names[1], names[2]);
    }
}
