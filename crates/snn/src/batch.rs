//! Batched SNN execution engine: roll a whole minibatch of states through
//! the `T` simulation steps with one drive kernel per layer per step
//! instead of `B` separate matrix–vector products.
//!
//! Since PR 6 the drive defaults to the **event-driven sparse path**
//! ([`spikefolio_tensor::sparse`]): each spike stack carries a
//! [`SpikeSet`] of its active indices, and the kernels touch only active
//! presynaptic columns. The dense GEMM path is retained as the bitwise
//! reference ([`KernelPath::Dense`], selectable per call via
//! [`SdpNetwork::forward_batch_with`] or process-wide via
//! [`set_kernel_path`]); in the default [`SparseMode::Bitwise`] the two
//! paths produce bit-identical traces.
//!
//! # Memory layout
//!
//! All per-timestep quantities are stored as *stacked* `(T·B) × dim`
//! matrices with row index `r = t·B + b` — timestep-major, sample-minor. A
//! timestep is therefore one contiguous `B × dim` row block, which is
//! exactly the operand shape the GEMM kernels in `spikefolio_tensor::gemm`
//! address without copying. Layer `k`'s inputs are layer `k−1`'s output
//! stack (or the encoder stack for `k = 0`); inputs are never duplicated
//! into per-layer traces.
//!
//! # Workspace reuse
//!
//! [`BatchWorkspace`] preallocates every per-step buffer (layer states,
//! drive scratch, backward deltas, the stacked `Δc` and upstream-gradient
//! matrices). After construction, [`SdpNetwork::forward_batch`] and
//! [`crate::stbp::backward_batch`] allocate only O(B) decoder-sized
//! vectors outside the per-step hot loop.
//!
//! # Determinism contract
//!
//! * The forward pass encodes sample `b` with `rngs[b]`, consuming exactly
//!   the random stream [`crate::encoder::PopulationEncoder::encode`]
//!   would, and every layer
//!   update evaluates the same floating-point expressions in the same order
//!   as [`crate::layer::LifLayer::step`] (the batched drive GEMM computes
//!   k-ascending dot products, bitwise identical to `matvec`). Actions from
//!   `forward_batch` are therefore **bit-identical** to per-sample
//!   [`SdpNetwork::forward`] calls with the same per-sample RNGs.
//! * The backward pass reproduces the per-sample recurrences bitwise and
//!   only reorders the final `(t, b)` gradient reductions, so parameter
//!   gradients match the per-sample path to ~1e-14 (well inside the 1e-12
//!   equivalence budget).

use crate::network::{SdpNetwork, SpikeStats};
use rand::Rng;
use spikefolio_telemetry::labels::{SPAN_PROFILE_SNN_ENCODE, SPAN_PROFILE_SNN_LIF};
use spikefolio_telemetry::{NoopRecorder, Recorder, Stopwatch};
use spikefolio_tensor::sparse::{self, SparseMode, SpikeSet};
use spikefolio_tensor::{gemm, Matrix};
use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation the batched passes route through.
///
/// The event-driven sparse path is the production default; the dense GEMM
/// path is kept as the bitwise reference the equivalence test battery
/// compares against. In [`SparseMode::Bitwise`] the two produce
/// bit-identical traces and gradients (see
/// [`spikefolio_tensor::sparse`]), so which one runs is observable only
/// in wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// Event-driven sparse kernels ([`sparse::spike_drive`] /
    /// [`sparse::spike_outer_acc`]) in the given reduction mode.
    Sparse(SparseMode),
    /// Dense GEMM reference kernels ([`gemm::gemm_nt`] /
    /// [`gemm::gemm_tn_acc`]).
    Dense,
}

/// Process-global kernel-path override, encoded for the atomic:
/// 0 = default (sparse, mode from [`sparse::default_mode`]), 1 = dense,
/// 2 = sparse bitwise, 3 = sparse fast-math.
static KERNEL_PATH_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Forces every [`SdpNetwork::forward_batch`] /
/// [`crate::stbp::backward_batch`] call in this process onto `path`.
///
/// Intended for equivalence testing of code that only exposes the default
/// entry points (e.g. driving a full training run down the dense reference
/// path). Note the override is process-global: concurrent tests observe
/// it too, which is safe precisely because `Dense` and
/// `Sparse(SparseMode::Bitwise)` are bit-identical — avoid setting
/// `Sparse(SparseMode::FastMath)` globally in multi-threaded test runs.
pub fn set_kernel_path(path: KernelPath) {
    let code = match path {
        KernelPath::Dense => 1,
        KernelPath::Sparse(SparseMode::Bitwise) => 2,
        KernelPath::Sparse(SparseMode::FastMath) => 3,
    };
    KERNEL_PATH_OVERRIDE.store(code, Ordering::SeqCst);
}

/// Clears a [`set_kernel_path`] override, restoring the default (sparse,
/// with the mode chosen by [`sparse::default_mode`]).
pub fn reset_kernel_path() {
    KERNEL_PATH_OVERRIDE.store(0, Ordering::SeqCst);
}

/// The process default when no [`set_kernel_path`] override is active:
/// the `SPIKEFOLIO_KERNEL_PATH` environment variable (`dense`, `sparse`,
/// `fastmath`) read once at first use, falling back to the sparse path
/// with the mode chosen by [`sparse::default_mode`]. The env hook exists
/// for A/B benchmarking (`bench run` under each path) without a rebuild.
fn env_default_path() -> KernelPath {
    static PATH: std::sync::OnceLock<KernelPath> = std::sync::OnceLock::new();
    *PATH.get_or_init(|| match std::env::var("SPIKEFOLIO_KERNEL_PATH").as_deref() {
        Ok("dense") => KernelPath::Dense,
        Ok("fastmath") => KernelPath::Sparse(SparseMode::FastMath),
        Ok("sparse") => KernelPath::Sparse(SparseMode::Bitwise),
        _ => KernelPath::Sparse(sparse::default_mode()),
    })
}

/// The [`KernelPath`] the default entry points currently route through.
pub fn kernel_path() -> KernelPath {
    match KERNEL_PATH_OVERRIDE.load(Ordering::SeqCst) {
        1 => KernelPath::Dense,
        2 => KernelPath::Sparse(SparseMode::Bitwise),
        3 => KernelPath::Sparse(SparseMode::FastMath),
        _ => env_default_path(),
    }
}

/// Recorded history of one layer for a whole minibatch: stacked
/// `(T·B) × out_dim` matrices, row `r = t·B + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchLayerTrace {
    /// Post-update membrane voltages `v(t)`.
    pub voltages: Matrix,
    /// Output spikes `o(t)` — also the next layer's input stack.
    pub outputs: Matrix,
    /// Effective thresholds `th(t)` (constant `V_th` columns for plain LIF).
    pub thresholds: Matrix,
    /// Event view of `outputs`: per stacked row, the ascending indices of
    /// the neurons that spiked. Built incrementally as rows are produced
    /// and consumed by the event-driven kernels of the next layer's drive
    /// and this layer's weight gradient.
    pub output_set: SpikeSet,
}

/// Full forward trace of a minibatch, consumed by
/// [`crate::stbp::backward_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNetworkTrace {
    batch: usize,
    timesteps: usize,
    /// Encoder spike stack, `(T·B) × encoder_dim`, row `r = t·B + b`.
    pub encoder: Matrix,
    /// Event view of `encoder`: per stacked row, the ascending active
    /// column indices. Built once right after encoding and threaded
    /// through the event-driven forward/backward kernels.
    pub encoder_set: SpikeSet,
    /// Per-layer traces, input-side first.
    pub layers: Vec<BatchLayerTrace>,
    /// Decoder firing rates, one row per sample (`B × action_dim`).
    pub firing_rates: Matrix,
    /// Softmax actions, one row per sample (`B × action_dim`).
    pub actions: Matrix,
    /// Event counters summed over the whole minibatch.
    pub stats: SpikeStats,
    /// Spikes emitted per LIF layer (input-side first), summed over the
    /// minibatch; sums to [`SpikeStats::neuron_spikes`]. Feeds the
    /// per-layer spike-activity telemetry
    /// ([`SdpNetwork::layer_firing_rates`]).
    pub layer_spikes: Vec<u64>,
    /// Synaptic operations tallied *by the drive kernels themselves* while
    /// propagating spikes (events × fan-out). Independently recomputed
    /// from the dense rasters as [`SpikeStats::synops`]; the equivalence
    /// suite and the CI bench smoke assert the two never drift apart.
    pub kernel_events: u64,
}

impl BatchNetworkTrace {
    /// Allocates a trace sized for `net` at minibatch size `batch`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn new(net: &SdpNetwork, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        let t_max = net.config().timesteps;
        let rows = t_max * batch;
        let action_dim = net.config().action_dim;
        Self {
            batch,
            timesteps: t_max,
            encoder: Matrix::zeros(rows, net.encoder.output_dim()),
            encoder_set: SpikeSet::new(net.encoder.output_dim()),
            layers: net
                .layers
                .iter()
                .map(|l| BatchLayerTrace {
                    voltages: Matrix::zeros(rows, l.out_dim()),
                    outputs: Matrix::zeros(rows, l.out_dim()),
                    thresholds: Matrix::zeros(rows, l.out_dim()),
                    output_set: SpikeSet::new(l.out_dim()),
                })
                .collect(),
            firing_rates: Matrix::zeros(batch, action_dim),
            actions: Matrix::zeros(batch, action_dim),
            stats: SpikeStats::default(),
            layer_spikes: vec![0; net.layers.len()],
            kernel_events: 0,
        }
    }

    /// Minibatch size `B` the trace was allocated for.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Simulation length `T` the trace was allocated for.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    /// The action row of sample `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= batch`.
    pub fn action(&self, b: usize) -> &[f64] {
        self.actions.row(b)
    }
}

/// Per-layer preallocated buffers of a [`BatchWorkspace`].
#[derive(Debug, Clone)]
pub(crate) struct BatchLayerBufs {
    /// Synaptic currents `c`, `B × out`.
    pub(crate) current: Matrix,
    /// Membrane voltages `v`, `B × out`.
    pub(crate) voltage: Matrix,
    /// Previous-step spikes `o(t−1)`, `B × out`.
    pub(crate) spikes: Matrix,
    /// ALIF adaptation traces `b`, `B × out`.
    pub(crate) adapt: Matrix,
    /// Drive scratch `W·o_in` for one timestep, `B × out`.
    pub(crate) drive: Matrix,
    /// Transposed weights `Wᵀ`, `in × out` — refreshed once per batched
    /// forward call so the event-driven drive streams one contiguous
    /// `out`-wide row per presynaptic event.
    pub(crate) wt: Matrix,
    /// Backward scratch `δo(t)`, `B × out`.
    pub(crate) d_o: Matrix,
    /// Backward scratch `δv(t)`, `B × out`.
    pub(crate) d_v: Matrix,
    /// Backward carry `δv(t+1)`, `B × out`.
    pub(crate) dv_next: Matrix,
    /// Backward scratch `δb(t)` (adaptation chain), `B × out`.
    pub(crate) d_b: Matrix,
    /// Backward carry `δb(t+1)`, `B × out`.
    pub(crate) db_next: Matrix,
    /// Stacked `δc(t)` rows, `(T·B) × out` — the GEMM operand of eq. (13).
    pub(crate) dc_stack: Matrix,
    /// Stacked upstream gradient on this layer's output spikes,
    /// `(T·B) × out`.
    pub(crate) d_ext: Matrix,
}

/// Preallocated scratch for batched forward/backward passes.
///
/// Build once per `(network shape, batch size)` pair and reuse across
/// steps: the hot loops of [`SdpNetwork::forward_batch`] and
/// [`crate::stbp::backward_batch`] are then allocation-free.
#[derive(Debug, Clone)]
pub struct BatchWorkspace {
    pub(crate) batch: usize,
    /// Per-sample encoder scratch, `T × encoder_dim`.
    pub(crate) enc_scratch: Matrix,
    pub(crate) layers: Vec<BatchLayerBufs>,
    /// Per-sample spike sums over the last layer, `B × out_last`.
    pub(crate) spike_sums: Matrix,
}

impl BatchWorkspace {
    /// Allocates a workspace sized for `net` at minibatch size `batch`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn new(net: &SdpNetwork, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        let t_max = net.config().timesteps;
        let layers = net
            .layers
            .iter()
            .map(|l| {
                let out = l.out_dim();
                BatchLayerBufs {
                    current: Matrix::zeros(batch, out),
                    voltage: Matrix::zeros(batch, out),
                    spikes: Matrix::zeros(batch, out),
                    adapt: Matrix::zeros(batch, out),
                    drive: Matrix::zeros(batch, out),
                    wt: Matrix::zeros(l.in_dim(), out),
                    d_o: Matrix::zeros(batch, out),
                    d_v: Matrix::zeros(batch, out),
                    dv_next: Matrix::zeros(batch, out),
                    d_b: Matrix::zeros(batch, out),
                    db_next: Matrix::zeros(batch, out),
                    dc_stack: Matrix::zeros(t_max * batch, out),
                    d_ext: Matrix::zeros(t_max * batch, out),
                }
            })
            .collect();
        let out_last = net.layers.last().map_or(0, |l| l.out_dim());
        Self {
            batch,
            enc_scratch: Matrix::zeros(t_max, net.encoder.output_dim()),
            layers,
            spike_sums: Matrix::zeros(batch, out_last),
        }
    }

    /// Minibatch size `B` the workspace was allocated for.
    pub fn batch(&self) -> usize {
        self.batch
    }
}

fn count_spikes(data: &[f64]) -> u64 {
    data.iter().filter(|&&s| s > 0.0).count() as u64
}

impl SdpNetwork {
    /// Batched forward pass: runs every row of `states` (`B × state_dim`)
    /// through Algorithm 1 simultaneously, one GEMM per layer per timestep.
    ///
    /// Sample `b` is encoded with `rngs[b]`, so with per-sample seeded RNGs
    /// the result is independent of how samples are grouped into batches —
    /// and bit-identical to per-sample [`SdpNetwork::forward`] calls (see
    /// the [module docs](crate::batch)).
    ///
    /// `ws` and `trace` must have been built for this network at batch size
    /// `states.rows()`; both are fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree (state width, batch size, RNG count, or a
    /// workspace/trace built for a different network or batch size).
    pub fn forward_batch<R: Rng>(
        &self,
        states: &Matrix,
        rngs: &mut [R],
        ws: &mut BatchWorkspace,
        trace: &mut BatchNetworkTrace,
    ) {
        self.forward_batch_recorded(states, rngs, ws, trace, &mut NoopRecorder);
    }

    /// One-shot batched action selection: allocates a workspace and trace
    /// for `states.rows()` samples, runs [`forward_batch`](Self::forward_batch),
    /// and returns each sample's portfolio weight vector. The serving path
    /// uses this when it has no long-lived workspace to reuse; results are
    /// bit-identical to per-sample [`SdpNetwork::act`] with the same RNGs.
    ///
    /// # Panics
    ///
    /// Panics on the same shape mismatches as [`forward_batch`](Self::forward_batch).
    pub fn act_batch<R: Rng>(&self, states: &Matrix, rngs: &mut [R]) -> Vec<Vec<f64>> {
        let bsz = states.rows();
        let mut ws = BatchWorkspace::new(self, bsz);
        let mut trace = BatchNetworkTrace::new(self, bsz);
        self.forward_batch(states, rngs, &mut ws, &mut trace);
        (0..bsz).map(|b| trace.action(b).to_vec()).collect()
    }

    /// [`SdpNetwork::forward_batch`] routed through an explicit
    /// [`KernelPath`] instead of the process default — the entry point the
    /// equivalence test battery uses to compare the event-driven path
    /// against the dense reference on identical inputs.
    ///
    /// # Panics
    ///
    /// Panics on the same shape mismatches as
    /// [`forward_batch`](Self::forward_batch).
    pub fn forward_batch_with<R: Rng>(
        &self,
        states: &Matrix,
        rngs: &mut [R],
        ws: &mut BatchWorkspace,
        trace: &mut BatchNetworkTrace,
        path: KernelPath,
    ) {
        self.forward_batch_impl(states, rngs, ws, trace, &mut NoopRecorder, path);
    }

    /// [`SdpNetwork::forward_batch`] with phase profiling: the encode
    /// section and the LIF timestep loop are timed as
    /// [`SPAN_PROFILE_SNN_ENCODE`] and [`SPAN_PROFILE_SNN_LIF`] spans on
    /// `rec`.
    ///
    /// Observe-only: the recorder never influences the computation, and
    /// with a disabled recorder (e.g. [`NoopRecorder`]) the stopwatches
    /// never read the clock — the cost over `forward_batch` is a few
    /// predictable branches per call, not per element.
    pub fn forward_batch_recorded<R: Rng>(
        &self,
        states: &Matrix,
        rngs: &mut [R],
        ws: &mut BatchWorkspace,
        trace: &mut BatchNetworkTrace,
        rec: &mut dyn Recorder,
    ) {
        self.forward_batch_impl(states, rngs, ws, trace, rec, kernel_path());
    }

    fn forward_batch_impl<R: Rng>(
        &self,
        states: &Matrix,
        rngs: &mut [R],
        ws: &mut BatchWorkspace,
        trace: &mut BatchNetworkTrace,
        rec: &mut dyn Recorder,
        path: KernelPath,
    ) {
        let bsz = states.rows();
        let t_max = self.config().timesteps;
        let enc_dim = self.encoder.output_dim();
        assert!(bsz > 0, "forward_batch: empty batch");
        assert_eq!(states.cols(), self.config().state_dim, "forward_batch: state width mismatch");
        assert_eq!(rngs.len(), bsz, "forward_batch: need one RNG per sample");
        assert_eq!(ws.batch, bsz, "forward_batch: workspace batch mismatch");
        assert_eq!(trace.batch, bsz, "forward_batch: trace batch mismatch");
        assert_eq!(trace.encoder.cols(), enc_dim, "forward_batch: trace encoder width mismatch");
        assert_eq!(trace.layers.len(), self.layers.len(), "forward_batch: trace depth mismatch");

        trace.stats = SpikeStats::default();
        trace.kernel_events = 0;

        // Encode each sample with its own RNG, then interleave the T rows
        // into the timestep-major stack (row t·B + b). The event view of
        // the stack is built here, once, and threaded through the
        // event-driven kernels of both passes.
        let encode_watch = Stopwatch::start(rec);
        for (b, rng) in rngs.iter_mut().enumerate() {
            self.encoder.encode_into(states.row(b), t_max, rng, &mut ws.enc_scratch);
            for t in 0..t_max {
                trace.encoder.row_mut(t * bsz + b).copy_from_slice(ws.enc_scratch.row(t));
            }
        }
        trace.encoder_set.rebuild_from(&trace.encoder);
        trace.stats.encoder_spikes = count_spikes(trace.encoder.as_slice());
        encode_watch.stop(rec, SPAN_PROFILE_SNN_ENCODE);

        for lb in &mut ws.layers {
            lb.current.fill_zero();
            lb.voltage.fill_zero();
            lb.spikes.fill_zero();
            lb.adapt.fill_zero();
        }
        for lt in &mut trace.layers {
            lt.output_set.clear();
        }
        // The event-driven drive streams rows of Wᵀ; weights are constant
        // over the simulation, so transpose once per call into the
        // workspace (amortized over T·B drive rows).
        if matches!(path, KernelPath::Sparse(_)) {
            for (lb, layer) in ws.layers.iter_mut().zip(&self.layers) {
                layer.weights.transpose_into(&mut lb.wt);
            }
        }

        let mut kernel_events = 0u64;
        let lif_watch = Stopwatch::start(rec);
        for t in 0..t_max {
            for (k, layer) in self.layers.iter().enumerate() {
                let out_dim = layer.out_dim();
                let in_dim = layer.in_dim();
                let (done, rest) = trace.layers.split_at_mut(k);
                let lt = &mut rest[0];
                let (input_block, input_set): (&[f64], &SpikeSet) = if k == 0 {
                    (
                        &trace.encoder.as_slice()[t * bsz * in_dim..(t + 1) * bsz * in_dim],
                        &trace.encoder_set,
                    )
                } else {
                    (
                        &done[k - 1].outputs.as_slice()[t * bsz * in_dim..(t + 1) * bsz * in_dim],
                        &done[k - 1].output_set,
                    )
                };
                let lb = &mut ws.layers[k];
                match path {
                    KernelPath::Sparse(mode) => {
                        // Event-driven c-drive: touch only the active
                        // presynaptic columns, k-ascending — bitwise
                        // identical to the dense reference in
                        // `SparseMode::Bitwise` (see tensor::sparse).
                        kernel_events += sparse::spike_drive(
                            input_block,
                            input_set,
                            t * bsz,
                            lb.wt.as_slice(),
                            lb.drive.as_mut_slice(),
                            bsz,
                            in_dim,
                            out_dim,
                            mode,
                        );
                    }
                    KernelPath::Dense => {
                        // Dense reference: B k-ascending dots per neuron,
                        // bitwise identical to per-sample `matvec`. Tally
                        // the events the sparse kernel would process so
                        // traces stay comparable across paths.
                        gemm::gemm_nt(
                            input_block,
                            layer.weights.as_slice(),
                            lb.drive.as_mut_slice(),
                            bsz,
                            in_dim,
                            out_dim,
                        );
                        for b in 0..bsz {
                            kernel_events +=
                                input_set.row(t * bsz + b).len() as u64 * out_dim as u64;
                        }
                    }
                }
                let p = &layer.params;
                for b in 0..bsz {
                    let r = t * bsz + b;
                    let drive = lb.drive.row(b);
                    let cur = lb.current.row_mut(b);
                    let volt = lb.voltage.row_mut(b);
                    let spk = lb.spikes.row_mut(b);
                    for i in 0..out_dim {
                        // eq. (5): c(t) = d_c·c(t−1) + W·o_in + b.
                        cur[i] = p.d_c * cur[i] + drive[i] + layer.bias[i];
                        // eq. (6) + reset: v(t) = d_v·v(t−1)·(1 − o(t−1)) + c(t).
                        volt[i] = p.d_v * volt[i] * (1.0 - spk[i]) + cur[i];
                    }
                    let th_row = lt.thresholds.row_mut(r);
                    match layer.adaptation {
                        Some(ad) => {
                            let adapt = lb.adapt.row_mut(b);
                            for i in 0..out_dim {
                                adapt[i] = ad.rho * adapt[i] + (1.0 - ad.rho) * spk[i];
                                th_row[i] = p.v_th + ad.beta * adapt[i];
                            }
                        }
                        None => th_row.iter_mut().for_each(|th| *th = p.v_th),
                    }
                    lt.voltages.row_mut(r).copy_from_slice(volt);
                    for i in 0..out_dim {
                        spk[i] = layer.spike_fn.spike(volt[i], th_row[i]); // eq. (7)
                    }
                    lt.outputs.row_mut(r).copy_from_slice(spk);
                    // Row r is final: record its events. t is outer and b
                    // inner, so rows arrive in ascending stack order and
                    // the set is complete for this timestep before the
                    // next layer's drive reads it.
                    lt.output_set.push_row(spk);
                }
            }
        }
        trace.kernel_events = kernel_events;
        lif_watch.stop(rec, SPAN_PROFILE_SNN_LIF);

        // Event counters (summed over the batch, matching B per-sample runs).
        for (k, layer) in self.layers.iter().enumerate() {
            let inputs = if k == 0 {
                trace.encoder.as_slice()
            } else {
                trace.layers[k - 1].outputs.as_slice()
            };
            trace.stats.synops += count_spikes(inputs) * layer.out_dim() as u64;
            trace.stats.neuron_updates += (layer.out_dim() * t_max * bsz) as u64;
            let out_spikes = count_spikes(trace.layers[k].outputs.as_slice());
            trace.stats.neuron_spikes += out_spikes;
            trace.layer_spikes[k] = out_spikes;
        }

        // Σ_t o(t) per sample over the last layer, t ascending as in the
        // per-sample path, then decode each sample.
        let last = trace.layers.last().expect("network has at least one layer");
        ws.spike_sums.fill_zero();
        for t in 0..t_max {
            for b in 0..bsz {
                let sums = ws.spike_sums.row_mut(b);
                for (s, &o) in sums.iter_mut().zip(last.outputs.row(t * bsz + b)) {
                    *s += o;
                }
            }
        }
        for b in 0..bsz {
            let dec = self.decoder.decode(ws.spike_sums.row(b));
            trace.firing_rates.row_mut(b).copy_from_slice(&dec.firing_rates);
            trace.actions.row_mut(b).copy_from_slice(&dec.action);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoding;
    use crate::network::SdpNetworkConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn states(net: &SdpNetwork, batch: usize) -> Matrix {
        let dim = net.config().state_dim;
        Matrix::from_fn(batch, dim, |b, d| 0.8 + 0.05 * ((b * dim + d) % 9) as f64)
    }

    #[test]
    fn forward_batch_is_bitwise_equal_to_per_sample_forward() {
        for encoding in [Encoding::Deterministic, Encoding::Probabilistic] {
            let mut cfg = SdpNetworkConfig::small(4, 3);
            cfg.encoder.encoding = encoding;
            let net = SdpNetwork::new(cfg, &mut rng(7));
            let batch = 5;
            let st = states(&net, batch);
            let mut ws = BatchWorkspace::new(&net, batch);
            let mut trace = BatchNetworkTrace::new(&net, batch);
            let mut rngs: Vec<StdRng> = (0..batch).map(|b| rng(100 + b as u64)).collect();
            net.forward_batch(&st, &mut rngs, &mut ws, &mut trace);
            for b in 0..batch {
                let mut r = rng(100 + b as u64);
                let (action, _) = net.forward(st.row(b), &mut r);
                assert_eq!(trace.action(b), action.as_slice(), "{encoding:?} sample {b}");
            }
        }
    }

    #[test]
    fn forward_batch_stats_match_summed_per_sample_stats() {
        let net = SdpNetwork::new(SdpNetworkConfig::small(4, 3), &mut rng(7));
        let batch = 4;
        let st = states(&net, batch);
        let mut ws = BatchWorkspace::new(&net, batch);
        let mut trace = BatchNetworkTrace::new(&net, batch);
        let mut rngs: Vec<StdRng> = (0..batch).map(|b| rng(b as u64)).collect();
        net.forward_batch(&st, &mut rngs, &mut ws, &mut trace);
        let mut expect = SpikeStats::default();
        for b in 0..batch {
            let (_, s) = net.act_with_stats(st.row(b), &mut rng(b as u64));
            expect.encoder_spikes += s.encoder_spikes;
            expect.neuron_spikes += s.neuron_spikes;
            expect.synops += s.synops;
            expect.neuron_updates += s.neuron_updates;
        }
        assert_eq!(trace.stats, expect);
    }

    #[test]
    fn forward_batch_layer_spikes_match_summed_per_sample_traces() {
        let net = SdpNetwork::new(SdpNetworkConfig::small(4, 3), &mut rng(11));
        let batch = 4;
        let st = states(&net, batch);
        let mut ws = BatchWorkspace::new(&net, batch);
        let mut trace = BatchNetworkTrace::new(&net, batch);
        let mut rngs: Vec<StdRng> = (0..batch).map(|b| rng(b as u64)).collect();
        net.forward_batch(&st, &mut rngs, &mut ws, &mut trace);
        let mut expect = vec![0u64; net.layers.len()];
        for b in 0..batch {
            let (_, t) = net.forward(st.row(b), &mut rng(b as u64));
            assert_eq!(t.layer_spikes.iter().sum::<u64>(), t.stats.neuron_spikes);
            for (e, s) in expect.iter_mut().zip(&t.layer_spikes) {
                *e += s;
            }
        }
        assert_eq!(trace.layer_spikes, expect);
        assert_eq!(trace.layer_spikes.iter().sum::<u64>(), trace.stats.neuron_spikes);
        let rates = net.layer_firing_rates(&trace.layer_spikes, batch as u64);
        assert_eq!(rates.len(), net.layers.len());
        for r in &rates {
            assert!((0.0..=1.0).contains(r), "firing rate {r} out of [0, 1]");
        }
    }

    #[test]
    fn workspace_and_trace_are_reusable_across_calls() {
        let net = SdpNetwork::new(SdpNetworkConfig::small(4, 3), &mut rng(9));
        let batch = 3;
        let mut ws = BatchWorkspace::new(&net, batch);
        let mut trace = BatchNetworkTrace::new(&net, batch);
        let st1 = states(&net, batch);
        let st2 = st1.map(|v| v + 0.01);
        let mut rngs: Vec<StdRng> = (0..batch).map(|b| rng(b as u64)).collect();
        net.forward_batch(&st1, &mut rngs, &mut ws, &mut trace);
        let first = trace.actions.clone();
        // Run different inputs through the same buffers, then the originals
        // again: stale state must not leak.
        let mut rngs2: Vec<StdRng> = (0..batch).map(|b| rng(b as u64)).collect();
        net.forward_batch(&st2, &mut rngs2, &mut ws, &mut trace);
        let mut rngs3: Vec<StdRng> = (0..batch).map(|b| rng(b as u64)).collect();
        net.forward_batch(&st1, &mut rngs3, &mut ws, &mut trace);
        assert_eq!(trace.actions, first, "workspace reuse must be stateless");
    }

    #[test]
    fn adaptive_network_matches_per_sample_path() {
        let mut cfg = SdpNetworkConfig::small(4, 3);
        cfg.adaptation = Some(crate::neuron::AdaptiveParams { beta: 0.6, rho: 0.85 });
        let net = SdpNetwork::new(cfg, &mut rng(21));
        let batch = 3;
        let st = states(&net, batch);
        let mut ws = BatchWorkspace::new(&net, batch);
        let mut trace = BatchNetworkTrace::new(&net, batch);
        let mut rngs: Vec<StdRng> = (0..batch).map(|b| rng(b as u64)).collect();
        net.forward_batch(&st, &mut rngs, &mut ws, &mut trace);
        for b in 0..batch {
            let (action, _) = net.forward(st.row(b), &mut rng(b as u64));
            assert_eq!(trace.action(b), action.as_slice(), "ALIF sample {b}");
        }
    }

    #[test]
    fn recorded_forward_is_bitwise_identical_and_emits_profile_spans() {
        use spikefolio_telemetry::MemoryRecorder;
        let net = SdpNetwork::new(SdpNetworkConfig::small(4, 3), &mut rng(7));
        let batch = 4;
        let st = states(&net, batch);
        let mut ws = BatchWorkspace::new(&net, batch);
        let mut plain = BatchNetworkTrace::new(&net, batch);
        let mut rngs: Vec<StdRng> = (0..batch).map(|b| rng(b as u64)).collect();
        net.forward_batch(&st, &mut rngs, &mut ws, &mut plain);

        let mut rec = MemoryRecorder::default();
        let mut observed = BatchNetworkTrace::new(&net, batch);
        let mut rngs2: Vec<StdRng> = (0..batch).map(|b| rng(b as u64)).collect();
        net.forward_batch_recorded(&st, &mut rngs2, &mut ws, &mut observed, &mut rec);

        assert_eq!(observed, plain, "recording must not change the forward pass");
        let (enc_s, enc_n) = rec.span_total(SPAN_PROFILE_SNN_ENCODE);
        let (lif_s, lif_n) = rec.span_total(SPAN_PROFILE_SNN_LIF);
        assert_eq!((enc_n, lif_n), (1, 1), "one span per profiled section");
        assert!(enc_s >= 0.0 && lif_s >= 0.0);
    }

    #[test]
    fn sparse_and_dense_paths_produce_identical_traces() {
        let net = SdpNetwork::new(SdpNetworkConfig::small(4, 3), &mut rng(17));
        let batch = 4;
        let st = states(&net, batch);
        let mut ws = BatchWorkspace::new(&net, batch);
        let mut dense = BatchNetworkTrace::new(&net, batch);
        let mut rngs: Vec<StdRng> = (0..batch).map(|b| rng(b as u64)).collect();
        net.forward_batch_with(&st, &mut rngs, &mut ws, &mut dense, KernelPath::Dense);
        let mut sparse_t = BatchNetworkTrace::new(&net, batch);
        let mut rngs2: Vec<StdRng> = (0..batch).map(|b| rng(b as u64)).collect();
        net.forward_batch_with(
            &st,
            &mut rngs2,
            &mut ws,
            &mut sparse_t,
            KernelPath::Sparse(SparseMode::Bitwise),
        );
        assert_eq!(sparse_t, dense, "bitwise sparse trace must equal the dense reference");
        assert!(sparse_t.kernel_events > 0, "workload should produce events");
    }

    #[test]
    fn kernel_events_match_independent_synops_count() {
        // The drive kernels tally events as they propagate spikes; the
        // stats recompute synops from the dense rasters. The two must agree.
        let net = SdpNetwork::new(SdpNetworkConfig::small(4, 3), &mut rng(29));
        let batch = 6;
        let st = states(&net, batch);
        let mut ws = BatchWorkspace::new(&net, batch);
        let mut trace = BatchNetworkTrace::new(&net, batch);
        let mut rngs: Vec<StdRng> = (0..batch).map(|b| rng(b as u64)).collect();
        net.forward_batch(&st, &mut rngs, &mut ws, &mut trace);
        assert_eq!(trace.kernel_events, trace.stats.synops);
    }

    #[test]
    fn kernel_path_override_round_trips() {
        // Default with no env override is the bitwise sparse path.
        if std::env::var("SPIKEFOLIO_FAST_MATH").is_err() {
            assert_eq!(kernel_path(), KernelPath::Sparse(SparseMode::Bitwise));
        }
        // Dense and Sparse(Bitwise) are bit-identical, so flipping the
        // global override mid-run is safe for concurrently running tests.
        set_kernel_path(KernelPath::Dense);
        assert_eq!(kernel_path(), KernelPath::Dense);
        reset_kernel_path();
        assert_eq!(kernel_path(), KernelPath::Sparse(sparse::default_mode()));
    }

    #[test]
    #[should_panic(expected = "workspace batch mismatch")]
    fn wrong_workspace_batch_panics() {
        let net = SdpNetwork::new(SdpNetworkConfig::small(4, 3), &mut rng(3));
        let st = states(&net, 2);
        let mut ws = BatchWorkspace::new(&net, 3);
        let mut trace = BatchNetworkTrace::new(&net, 2);
        let mut rngs = vec![rng(0), rng(1)];
        net.forward_batch(&st, &mut rngs, &mut ws, &mut trace);
    }
}
