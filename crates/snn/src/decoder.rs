//! Rate decoder (eqs. 8–10): output-population firing rates → portfolio
//! weights on the simplex.
//!
//! The last LIF layer carries `N` output populations of `pop_out` neurons
//! each. Per action `i` (Algorithm 1):
//!
//! ```text
//! firingRate_i = Σ_t Σ_{j ∈ pop i} o_j(t) / (T · pop_out)      (eq. 8)
//! z_i          = w_d_i · firingRate_i + b_d_i                  (eq. 9)
//! a_i          = exp(z_i) / Σ_j exp(z_j)                       (eq. 10)
//! ```
//!
//! The exponential-normalize of Algorithm 1 is a softmax over `z`, which
//! guarantees the action lies on the probability simplex.

use rand::Rng;
use spikefolio_tensor::ops::{softmax, softmax_backward};

/// The decoder of eqs. (8)–(10).
#[derive(Debug, Clone, PartialEq)]
pub struct Decoder {
    /// Per-action rate weight `w_d` (eq. 9).
    pub weights: Vec<f64>,
    /// Per-action bias `b_d` (eq. 9).
    pub bias: Vec<f64>,
    /// Neurons per output population.
    pub pop_out: usize,
    /// Simulation length `T` the rates are averaged over.
    pub timesteps: usize,
}

/// Forward byproducts of the decoder needed for its backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct DecoderTrace {
    /// Mean firing rate per action (eq. 8).
    pub firing_rates: Vec<f64>,
    /// The softmax output (the action itself).
    pub action: Vec<f64>,
}

/// Gradients of the decoder parameters plus the gradient flowing back into
/// the last layer's spike raster.
#[derive(Debug, Clone, PartialEq)]
pub struct DecoderGradients {
    /// `∂L/∂w_d` per action (eq. 12).
    pub d_weights: Vec<f64>,
    /// `∂L/∂b_d` per action (eq. 12).
    pub d_bias: Vec<f64>,
    /// `∂L/∂o_j(t)` for every last-layer neuron — constant across `t`
    /// because the rate is a plain average (one entry per neuron).
    pub d_spikes_per_step: Vec<f64>,
}

impl Decoder {
    /// Creates a decoder for `action_dim` actions with `pop_out` neurons
    /// per output population and averaging window `timesteps`.
    ///
    /// Weights start at 1 and biases at 0 so that an untrained network
    /// maps equal rates to the uniform portfolio.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(action_dim: usize, pop_out: usize, timesteps: usize) -> Self {
        assert!(action_dim > 0 && pop_out > 0 && timesteps > 0, "decoder dims must be positive");
        Self { weights: vec![1.0; action_dim], bias: vec![0.0; action_dim], pop_out, timesteps }
    }

    /// Creates a decoder with small random perturbations on the weights,
    /// breaking symmetry between actions.
    pub fn new_randomized<R: Rng + ?Sized>(
        action_dim: usize,
        pop_out: usize,
        timesteps: usize,
        rng: &mut R,
    ) -> Self {
        let mut d = Self::new(action_dim, pop_out, timesteps);
        for w in &mut d.weights {
            *w += rng.gen_range(-0.05..0.05);
        }
        d
    }

    /// Number of actions.
    pub fn action_dim(&self) -> usize {
        self.weights.len()
    }

    /// Number of last-layer neurons expected (`action_dim × pop_out`).
    pub fn input_dim(&self) -> usize {
        self.action_dim() * self.pop_out
    }

    /// Decodes summed spikes into an action.
    ///
    /// `spike_sums[j]` is `Σ_t o_j(t)` for last-layer neuron `j`.
    ///
    /// # Panics
    ///
    /// Panics if `spike_sums.len() != input_dim()`.
    pub fn decode(&self, spike_sums: &[f64]) -> DecoderTrace {
        assert_eq!(spike_sums.len(), self.input_dim(), "spike sum length mismatch");
        let denom = (self.timesteps * self.pop_out) as f64;
        let firing_rates: Vec<f64> = spike_sums
            .chunks_exact(self.pop_out)
            .map(|pop| pop.iter().sum::<f64>() / denom)
            .collect();
        let z: Vec<f64> = firing_rates
            .iter()
            .zip(self.weights.iter().zip(&self.bias))
            .map(|(&fr, (&w, &b))| w * fr + b)
            .collect();
        let action = softmax(&z);
        DecoderTrace { firing_rates, action }
    }

    /// Backward pass: given the forward trace and `∂L/∂a`, returns the
    /// parameter gradients and the per-step gradient on each last-layer
    /// spike (eq. 12 plus the softmax Jacobian).
    ///
    /// # Panics
    ///
    /// Panics if `d_action.len() != action_dim()`.
    pub fn backward(&self, trace: &DecoderTrace, d_action: &[f64]) -> DecoderGradients {
        assert_eq!(d_action.len(), self.action_dim(), "d_action length mismatch");
        let dz = softmax_backward(&trace.action, d_action);
        let d_weights: Vec<f64> =
            dz.iter().zip(&trace.firing_rates).map(|(&dzi, &fr)| dzi * fr).collect();
        let d_bias = dz.clone();
        let denom = (self.timesteps * self.pop_out) as f64;
        let mut d_spikes_per_step = Vec::with_capacity(self.input_dim());
        for (i, &dzi) in dz.iter().enumerate() {
            let g = dzi * self.weights[i] / denom;
            d_spikes_per_step.extend(std::iter::repeat_n(g, self.pop_out));
        }
        DecoderGradients { d_weights, d_bias, d_spikes_per_step }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_rates_give_uniform_action() {
        let d = Decoder::new(4, 3, 5);
        let trace = d.decode(&[5.0; 12]); // every neuron spiked each step
        assert!(trace.action.iter().all(|&a| (a - 0.25).abs() < 1e-12));
        assert!(trace.firing_rates.iter().all(|&f| (f - 1.0).abs() < 1e-12));
    }

    #[test]
    fn hotter_population_gets_more_weight() {
        let d = Decoder::new(3, 2, 5);
        // Population 1 spikes twice as much as the others.
        let sums = [2.0, 2.0, 4.0, 4.0, 2.0, 2.0];
        let trace = d.decode(&sums);
        assert!(trace.action[1] > trace.action[0]);
        assert!(trace.action[1] > trace.action[2]);
        assert!((trace.action.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn firing_rates_average_over_population_and_time() {
        let d = Decoder::new(2, 2, 10);
        let trace = d.decode(&[10.0, 0.0, 5.0, 5.0]);
        assert!((trace.firing_rates[0] - 0.5).abs() < 1e-12);
        assert!((trace.firing_rates[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn action_is_always_on_simplex() {
        let d = Decoder::new(5, 4, 5);
        for scale in [0.0, 1.0, 3.0, 20.0] {
            let sums: Vec<f64> = (0..20).map(|j| (j % 5) as f64 * scale).collect();
            let a = d.decode(&sums).action;
            assert!(spikefolio_tensor::simplex::is_on_simplex(&a, 1e-9), "scale {scale}");
        }
    }

    #[test]
    fn backward_matches_finite_difference_on_weights() {
        // Loss L = Σ c_i a_i for arbitrary c; check ∂L/∂w_d numerically.
        let mut d = Decoder::new(3, 2, 4);
        d.weights = vec![1.2, 0.8, 1.0];
        d.bias = vec![0.1, -0.1, 0.0];
        let sums = [3.0, 2.0, 1.0, 4.0, 2.0, 2.0];
        let c = [1.0, -2.0, 0.5];
        let trace = d.decode(&sums);
        let grads = d.backward(&trace, &c);
        let eps = 1e-6;
        for i in 0..3 {
            let mut dp = d.clone();
            dp.weights[i] += eps;
            let mut dm = d.clone();
            dm.weights[i] -= eps;
            let lp: f64 = dp.decode(&sums).action.iter().zip(&c).map(|(a, b)| a * b).sum();
            let lm: f64 = dm.decode(&sums).action.iter().zip(&c).map(|(a, b)| a * b).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (grads.d_weights[i] - num).abs() < 1e-6,
                "w[{i}]: {} vs {num}",
                grads.d_weights[i]
            );
        }
    }

    #[test]
    fn backward_matches_finite_difference_on_bias_and_spikes() {
        let mut d = Decoder::new(2, 2, 3);
        d.weights = vec![0.9, 1.1];
        let sums = [1.0, 2.0, 3.0, 0.0];
        let c = [2.0, -1.0];
        let trace = d.decode(&sums);
        let grads = d.backward(&trace, &c);
        let eps = 1e-6;
        for i in 0..2 {
            let mut dp = d.clone();
            dp.bias[i] += eps;
            let mut dm = d.clone();
            dm.bias[i] -= eps;
            let lp: f64 = dp.decode(&sums).action.iter().zip(&c).map(|(a, b)| a * b).sum();
            let lm: f64 = dm.decode(&sums).action.iter().zip(&c).map(|(a, b)| a * b).sum();
            assert!((grads.d_bias[i] - (lp - lm) / (2.0 * eps)).abs() < 1e-6);
        }
        // Spike-sum gradient: perturb one spike sum. d_spikes_per_step is the
        // gradient per *per-step spike*, i.e. per unit of spike sum.
        for j in 0..4 {
            let mut sp = sums;
            sp[j] += eps;
            let mut sm = sums;
            sm[j] -= eps;
            let lp: f64 = d.decode(&sp).action.iter().zip(&c).map(|(a, b)| a * b).sum();
            let lm: f64 = d.decode(&sm).action.iter().zip(&c).map(|(a, b)| a * b).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (grads.d_spikes_per_step[j] - num).abs() < 1e-6,
                "spike {j}: {} vs {num}",
                grads.d_spikes_per_step[j]
            );
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_spike_sum_length_panics() {
        let d = Decoder::new(2, 2, 3);
        let _ = d.decode(&[1.0, 2.0, 3.0]);
    }
}
