//! Spatio-temporal backpropagation (STBP) for dual-state LIF networks
//! (eqs. 11–13).
//!
//! Given the forward trace of Algorithm 1 and the loss gradient on the
//! action `∂L/∂a`, the backward pass unrolls the recurrences
//!
//! ```text
//! δo(t) = δo_ext(t) + Wᵀ_{k+1} δc(t)(k+1) − d_v·v(t)·δv(t+1)
//! δv(t) = δo(t)·z(v(t)) + δv(t+1)·d_v·(1 − o(t))
//! δc(t) = δv(t) + d_c·δc(t+1)
//! ∇W    = Σ_t δc(t) ⊗ o_in(t),   ∇b = Σ_t δc(t)        (eq. 13)
//! ```
//!
//! where `z(·)` is the pseudo-gradient of eq. (11). The same code path is
//! exact (no surrogate) when the network uses the soft spike relaxation,
//! which is how the recurrences are validated against finite differences.

use crate::batch::{kernel_path, BatchNetworkTrace, BatchWorkspace, KernelPath};
use crate::decoder::DecoderTrace;
use crate::network::{NetworkTrace, SdpNetwork};
use spikefolio_telemetry::labels::SPAN_PROFILE_SNN_STBP;
use spikefolio_telemetry::{NoopRecorder, Recorder, Stopwatch};
use spikefolio_tensor::optim::{Optimizer, ParamSlot};
use spikefolio_tensor::{gemm, sparse, vector, Matrix};

/// Gradients of one LIF layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGradients {
    /// `∂L/∂W`.
    pub d_weights: Matrix,
    /// `∂L/∂b`.
    pub d_bias: Vec<f64>,
}

/// Gradients of every trainable parameter of an [`SdpNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub struct SdpGradients {
    /// Per-LIF-layer gradients, input-side first.
    pub layers: Vec<LayerGradients>,
    /// Decoder rate-weight gradients (eq. 12).
    pub d_decoder_weights: Vec<f64>,
    /// Decoder bias gradients (eq. 12).
    pub d_decoder_bias: Vec<f64>,
}

impl SdpGradients {
    /// Zero gradients shaped like `net`.
    pub fn zeros_like(net: &SdpNetwork) -> Self {
        Self {
            layers: net
                .layers
                .iter()
                .map(|l| LayerGradients {
                    d_weights: Matrix::zeros(l.out_dim(), l.in_dim()),
                    d_bias: vec![0.0; l.out_dim()],
                })
                .collect(),
            d_decoder_weights: vec![0.0; net.decoder.weights.len()],
            d_decoder_bias: vec![0.0; net.decoder.bias.len()],
        }
    }

    /// Accumulates `other` into `self` (gradient averaging over batches).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn accumulate(&mut self, other: &SdpGradients) {
        assert_eq!(self.layers.len(), other.layers.len(), "layer count mismatch");
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.d_weights.add_scaled(1.0, &b.d_weights);
            vector::axpy(&mut a.d_bias, 1.0, &b.d_bias);
        }
        vector::axpy(&mut self.d_decoder_weights, 1.0, &other.d_decoder_weights);
        vector::axpy(&mut self.d_decoder_bias, 1.0, &other.d_decoder_bias);
    }

    /// Multiplies every gradient by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for l in &mut self.layers {
            l.d_weights.scale(alpha);
            l.d_bias.iter_mut().for_each(|g| *g *= alpha);
        }
        self.d_decoder_weights.iter_mut().for_each(|g| *g *= alpha);
        self.d_decoder_bias.iter_mut().for_each(|g| *g *= alpha);
    }

    /// Global L2 norm across all gradients.
    pub fn global_norm(&self) -> f64 {
        let mut sq = 0.0;
        for l in &self.layers {
            sq += l.d_weights.as_slice().iter().map(|g| g * g).sum::<f64>();
            sq += l.d_bias.iter().map(|g| g * g).sum::<f64>();
        }
        sq += self.d_decoder_weights.iter().map(|g| g * g).sum::<f64>();
        sq += self.d_decoder_bias.iter().map(|g| g * g).sum::<f64>();
        sq.sqrt()
    }

    /// Clips the global norm to `max_norm` (no-op if already below).
    pub fn clip_global_norm(&mut self, max_norm: f64) {
        let n = self.global_norm();
        if n > max_norm && n > 0.0 {
            self.scale(max_norm / n);
        }
    }
}

/// Runs the STBP backward pass.
///
/// `d_action` is `∂L/∂a` — for the eq. (1) reward maximized by gradient
/// *ascent*, pass the negated reward gradient to perform descent on the
/// loss.
///
/// # Panics
///
/// Panics if the trace does not match the network (wrong depth or
/// timestep count) or `d_action.len() != action_dim`.
pub fn backward(net: &SdpNetwork, trace: &NetworkTrace, d_action: &[f64]) -> SdpGradients {
    backward_with_rate_penalty(net, trace, d_action, 0.0)
}

/// STBP backward pass with an additional **spike-rate penalty** on the
/// hidden layers: the loss gains `λ · mean hidden firing rate`, whose
/// gradient adds `λ / (T · N_hidden)` to every hidden spike.
///
/// Spike-rate regularization is the standard lever for trading backtest
/// quality against on-chip energy (fewer spikes → fewer synops → less
/// dynamic energy on Loihi); the rate-penalty ablation bench sweeps `λ`.
///
/// # Panics
///
/// Panics under the same conditions as [`backward`], or if
/// `rate_penalty < 0`.
pub fn backward_with_rate_penalty(
    net: &SdpNetwork,
    trace: &NetworkTrace,
    d_action: &[f64],
    rate_penalty: f64,
) -> SdpGradients {
    assert_eq!(trace.layers.len(), net.depth(), "trace depth mismatch");
    assert!(rate_penalty >= 0.0, "rate penalty must be non-negative");
    let t_max = net.config().timesteps;
    let n_hidden: usize = net.layers[..net.depth() - 1].iter().map(|l| l.out_dim()).sum();
    let rate_grad = if n_hidden > 0 && rate_penalty > 0.0 {
        rate_penalty / (t_max as f64 * n_hidden as f64)
    } else {
        0.0
    };
    let dec_grads = net.decoder.backward(&trace.decoder, d_action);

    let mut grads = SdpGradients::zeros_like(net);
    grads.d_decoder_weights = dec_grads.d_weights;
    grads.d_decoder_bias = dec_grads.d_bias;

    // External gradient on the current layer's output spikes, per timestep.
    // For the last layer this is the (time-constant) decoder gradient.
    let mut d_out_ext: Vec<Vec<f64>> = vec![dec_grads.d_spikes_per_step.clone(); t_max];

    for (k, layer) in net.layers.iter().enumerate().rev() {
        let lt = &trace.layers[k];
        assert_eq!(lt.len(), t_max, "layer {k} trace has wrong timestep count");
        let out_dim = layer.out_dim();
        let in_dim = layer.in_dim();
        let p = &layer.params;

        let mut dv_next = vec![0.0_f64; out_dim];
        let mut dc_next = vec![0.0_f64; out_dim];
        let mut db_next = vec![0.0_f64; out_dim]; // adaptation-trace chain
        let mut d_in: Vec<Vec<f64>> = vec![vec![0.0; in_dim]; t_max];

        for t in (0..t_max).rev() {
            let v_t = &lt.voltages[t];
            let o_t = &lt.outputs[t];
            let th_t = &lt.thresholds[t];
            let in_t = &lt.inputs[t];

            // δo(t): external + reset-path contribution −d_v·v(t)·δv(t+1),
            // plus the rate penalty on hidden layers, plus the adaptation
            // path o(t) → b(t+1) when thresholds adapt.
            let mut d_o = d_out_ext[t].clone();
            if k + 1 < net.layers.len() && rate_grad > 0.0 {
                d_o.iter_mut().for_each(|g| *g += rate_grad);
            }
            for i in 0..out_dim {
                d_o[i] -= p.d_v * v_t[i] * dv_next[i];
            }
            if let Some(ad) = layer.adaptation {
                for i in 0..out_dim {
                    d_o[i] += (1.0 - ad.rho) * db_next[i];
                }
            }
            // δv(t) = δo(t)·z(v, th) + δv(t+1)·d_v·(1 − o(t)), and the
            // threshold path δb(t) = −β·δo(t)·z + ρ·δb(t+1).
            let mut d_v = vec![0.0; out_dim];
            let mut d_b = vec![0.0; out_dim];
            for i in 0..out_dim {
                let z = layer.spike_fn.grad(v_t[i], th_t[i]);
                d_v[i] = d_o[i] * z + dv_next[i] * p.d_v * (1.0 - o_t[i]);
                if let Some(ad) = layer.adaptation {
                    d_b[i] = -ad.beta * d_o[i] * z + ad.rho * db_next[i];
                }
            }
            // δc(t) = δv(t) + d_c·δc(t+1).
            let mut d_c = vec![0.0; out_dim];
            for i in 0..out_dim {
                d_c[i] = d_v[i] + p.d_c * dc_next[i];
            }
            // Parameter gradients (eq. 13).
            grads.layers[k].d_weights.add_outer(1.0, &d_c, in_t);
            vector::axpy(&mut grads.layers[k].d_bias, 1.0, &d_c);
            // Gradient on this layer's inputs → previous layer's outputs.
            d_in[t] = layer.weights.matvec_transposed(&d_c);

            dv_next = d_v;
            dc_next = d_c;
            db_next = d_b;
        }
        d_out_ext = d_in;
    }
    grads
}

/// Batched STBP backward pass: the minibatch counterpart of
/// [`backward_with_rate_penalty`], consuming a
/// [`BatchNetworkTrace`] produced by
/// [`SdpNetwork::forward_batch`](crate::batch) and the per-sample loss
/// gradients `d_actions` (`B × action_dim`, one row per sample).
///
/// Returns the gradients **summed** over the batch — scale by `1/B`
/// afterwards for the batch mean, exactly as when accumulating per-sample
/// [`backward`] results.
///
/// The reverse-time `δo/δv/δc` recurrences are evaluated elementwise in the
/// same order as the per-sample path (bitwise identical); the weight
/// gradient is then formed as a single GEMM per layer,
/// `∇W += Σ_{t,b} δc(t,b)ᵀ · o_in(t,b)`, whose `(t, b)` summation reorder
/// is the only floating-point difference from accumulating per-sample
/// backward passes (≈1e-14 relative).
///
/// # Panics
///
/// Panics if the trace, workspace, and `d_actions` shapes disagree with the
/// network, or if `rate_penalty < 0`.
pub fn backward_batch(
    net: &SdpNetwork,
    trace: &BatchNetworkTrace,
    d_actions: &Matrix,
    rate_penalty: f64,
    ws: &mut BatchWorkspace,
) -> SdpGradients {
    backward_batch_recorded(net, trace, d_actions, rate_penalty, ws, &mut NoopRecorder)
}

/// [`backward_batch`] routed through an explicit
/// [`KernelPath`] instead of the process default — the entry point the
/// equivalence test battery uses to compare the event-driven weight
/// gradient against the dense reference on identical traces.
///
/// # Panics
///
/// As [`backward_batch`].
pub fn backward_batch_with(
    net: &SdpNetwork,
    trace: &BatchNetworkTrace,
    d_actions: &Matrix,
    rate_penalty: f64,
    ws: &mut BatchWorkspace,
    path: KernelPath,
) -> SdpGradients {
    backward_batch_inner(net, trace, d_actions, rate_penalty, ws, path)
}

/// [`backward_batch`] with phase profiling: the whole batched STBP pass is
/// timed as one [`SPAN_PROFILE_SNN_STBP`] span on `rec`.
///
/// Observe-only: the recorder never influences the gradients, and with a
/// disabled recorder the stopwatch never reads the clock.
///
/// # Panics
///
/// As [`backward_batch`].
pub fn backward_batch_recorded(
    net: &SdpNetwork,
    trace: &BatchNetworkTrace,
    d_actions: &Matrix,
    rate_penalty: f64,
    ws: &mut BatchWorkspace,
    rec: &mut dyn Recorder,
) -> SdpGradients {
    let watch = Stopwatch::start(rec);
    let grads = backward_batch_inner(net, trace, d_actions, rate_penalty, ws, kernel_path());
    watch.stop(rec, SPAN_PROFILE_SNN_STBP);
    grads
}

fn backward_batch_inner(
    net: &SdpNetwork,
    trace: &BatchNetworkTrace,
    d_actions: &Matrix,
    rate_penalty: f64,
    ws: &mut BatchWorkspace,
    path: KernelPath,
) -> SdpGradients {
    let bsz = trace.batch();
    let t_max = net.config().timesteps;
    assert_eq!(trace.layers.len(), net.depth(), "trace depth mismatch");
    assert_eq!(trace.timesteps(), t_max, "trace timestep mismatch");
    assert_eq!(ws.batch, bsz, "workspace batch mismatch");
    assert_eq!(
        d_actions.shape(),
        (bsz, net.config().action_dim),
        "d_actions must be batch x action_dim"
    );
    assert!(rate_penalty >= 0.0, "rate penalty must be non-negative");
    let n_hidden: usize = net.layers[..net.depth() - 1].iter().map(|l| l.out_dim()).sum();
    let rate_grad = if n_hidden > 0 && rate_penalty > 0.0 {
        rate_penalty / (t_max as f64 * n_hidden as f64)
    } else {
        0.0
    };

    let mut grads = SdpGradients::zeros_like(net);

    // Decoder backward per sample (b ascending, the per-sample accumulation
    // order); the time-constant spike gradient seeds the last layer's
    // upstream-gradient stack for every timestep.
    let depth = net.depth();
    for b in 0..bsz {
        let dt = DecoderTrace {
            firing_rates: trace.firing_rates.row(b).to_vec(),
            action: trace.actions.row(b).to_vec(),
        };
        let dg = net.decoder.backward(&dt, d_actions.row(b));
        vector::axpy(&mut grads.d_decoder_weights, 1.0, &dg.d_weights);
        vector::axpy(&mut grads.d_decoder_bias, 1.0, &dg.d_bias);
        let last = &mut ws.layers[depth - 1];
        for t in 0..t_max {
            last.d_ext.row_mut(t * bsz + b).copy_from_slice(&dg.d_spikes_per_step);
        }
    }

    for (k, layer) in net.layers.iter().enumerate().rev() {
        let lt = &trace.layers[k];
        let out_dim = layer.out_dim();
        let in_dim = layer.in_dim();
        let p = &layer.params;
        let hidden_rate = k + 1 < net.layers.len() && rate_grad > 0.0;

        let (lower, rest) = ws.layers.split_at_mut(k);
        let lb = &mut rest[0];
        lb.dv_next.fill_zero();
        lb.db_next.fill_zero();

        for t in (0..t_max).rev() {
            // Split the δc stack so row block t (written now) and row block
            // t+1 (the δc(t+1) carry) can be borrowed together.
            let split = (t + 1) * bsz * out_dim;
            let (head, tail) = lb.dc_stack.as_mut_slice().split_at_mut(split);
            let cur_rows = &mut head[t * bsz * out_dim..];
            for b in 0..bsz {
                let r = t * bsz + b;
                let v_t = lt.voltages.row(r);
                let o_t = lt.outputs.row(r);
                let th_t = lt.thresholds.row(r);
                let ext = lb.d_ext.row(r);
                let dv_next = lb.dv_next.row(b);
                let db_next = lb.db_next.row(b);
                let d_o = lb.d_o.row_mut(b);
                let d_v = lb.d_v.row_mut(b);
                let d_b = lb.d_b.row_mut(b);
                let d_c = &mut cur_rows[b * out_dim..(b + 1) * out_dim];
                let dc_next =
                    if t + 1 < t_max { Some(&tail[b * out_dim..(b + 1) * out_dim]) } else { None };
                for i in 0..out_dim {
                    // δo(t): external + reset path (+ rate penalty on
                    // hidden layers, + adaptation chain) — same evaluation
                    // order as the per-sample path.
                    let mut doi = ext[i];
                    if hidden_rate {
                        doi += rate_grad;
                    }
                    doi -= p.d_v * v_t[i] * dv_next[i];
                    if let Some(ad) = layer.adaptation {
                        doi += (1.0 - ad.rho) * db_next[i];
                    }
                    d_o[i] = doi;
                    let z = layer.spike_fn.grad(v_t[i], th_t[i]);
                    d_v[i] = doi * z + dv_next[i] * p.d_v * (1.0 - o_t[i]);
                    if let Some(ad) = layer.adaptation {
                        d_b[i] = -ad.beta * doi * z + ad.rho * db_next[i];
                    }
                    let dcn = dc_next.map_or(0.0, |row| row[i]);
                    d_c[i] = d_v[i] + p.d_c * dcn;
                }
            }
            // Gradient on this timestep's inputs → previous layer's
            // upstream stack (one B×out · out×in GEMM). Layer 0's input
            // gradient has no consumer and is skipped.
            if k > 0 {
                let dc_block = &head[t * bsz * out_dim..];
                let dst = &mut lower[k - 1].d_ext.as_mut_slice()
                    [t * bsz * in_dim..(t + 1) * bsz * in_dim];
                gemm::gemm_nn(dc_block, layer.weights.as_slice(), dst, bsz, out_dim, in_dim);
            }
            std::mem::swap(&mut lb.d_v, &mut lb.dv_next);
            std::mem::swap(&mut lb.d_b, &mut lb.db_next);
        }

        // Parameter gradients (eq. 13) over the whole stack:
        // ∇W += Σ_{t,b} δc ⊗ o_in, ∇b = column sums of the δc stack. The
        // event-driven path restricts each rank-1 update to the active
        // input-spike columns of that row — bitwise identical to the dense
        // reference in both sparse modes (skipped zero addends cannot flip
        // accumulator bits; see `spikefolio_tensor::sparse`).
        let (inputs, input_set): (&[f64], &sparse::SpikeSet) = if k == 0 {
            (trace.encoder.as_slice(), &trace.encoder_set)
        } else {
            (trace.layers[k - 1].outputs.as_slice(), &trace.layers[k - 1].output_set)
        };
        match path {
            KernelPath::Sparse(_) => {
                sparse::spike_outer_acc(
                    1.0,
                    lb.dc_stack.as_slice(),
                    inputs,
                    input_set,
                    grads.layers[k].d_weights.as_mut_slice(),
                    t_max * bsz,
                    out_dim,
                    in_dim,
                );
            }
            KernelPath::Dense => gemm::gemm_tn_acc(
                1.0,
                lb.dc_stack.as_slice(),
                inputs,
                grads.layers[k].d_weights.as_mut_slice(),
                t_max * bsz,
                out_dim,
                in_dim,
            ),
        }
        for r in 0..t_max * bsz {
            vector::axpy(&mut grads.layers[k].d_bias, 1.0, lb.dc_stack.row(r));
        }
    }
    grads
}

/// Trainer: owns the optimizer state for one [`SdpNetwork`].
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use spikefolio_snn::network::{SdpNetwork, SdpNetworkConfig};
/// use spikefolio_snn::stbp::{self, SdpTrainer};
/// use spikefolio_tensor::optim::Adam;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let mut net = SdpNetwork::new(SdpNetworkConfig::small(4, 3), &mut rng);
/// let mut trainer = SdpTrainer::new(&net, Adam::new(1e-3));
/// let (action, trace) = net.forward(&[1.0, 0.9, 1.1, 1.0], &mut rng);
/// // Descend on L = -a[0] (make action 0 more likely).
/// let mut d_action = vec![0.0; 3];
/// d_action[0] = -1.0;
/// let grads = stbp::backward(&net, &trace, &d_action);
/// trainer.apply(&mut net, &grads);
/// # let _ = action;
/// ```
#[derive(Debug, Clone)]
pub struct SdpTrainer<O: Optimizer> {
    optimizer: O,
    layer_weight_slots: Vec<ParamSlot>,
    layer_bias_slots: Vec<ParamSlot>,
    decoder_weight_slot: ParamSlot,
    decoder_bias_slot: ParamSlot,
    /// Optional global-norm gradient clip (None = no clipping).
    pub max_grad_norm: Option<f64>,
}

impl<O: Optimizer> SdpTrainer<O> {
    /// Registers all of `net`'s parameter buffers with `optimizer`.
    pub fn new(net: &SdpNetwork, mut optimizer: O) -> Self {
        let layer_weight_slots =
            net.layers.iter().map(|l| optimizer.register(l.weights.len())).collect();
        let layer_bias_slots =
            net.layers.iter().map(|l| optimizer.register(l.bias.len())).collect();
        let decoder_weight_slot = optimizer.register(net.decoder.weights.len());
        let decoder_bias_slot = optimizer.register(net.decoder.bias.len());
        Self {
            optimizer,
            layer_weight_slots,
            layer_bias_slots,
            decoder_weight_slot,
            decoder_bias_slot,
            max_grad_norm: Some(10.0),
        }
    }

    /// Applies one optimization step with `grads` (descent direction).
    ///
    /// # Panics
    ///
    /// Panics if `grads` was produced for a differently-shaped network.
    pub fn apply(&mut self, net: &mut SdpNetwork, grads: &SdpGradients) {
        let mut grads = grads.clone();
        if let Some(max) = self.max_grad_norm {
            grads.clip_global_norm(max);
        }
        for (k, lg) in grads.layers.iter().enumerate() {
            self.optimizer.step(
                self.layer_weight_slots[k],
                net.layers[k].weights.as_mut_slice(),
                lg.d_weights.as_slice(),
            );
            self.optimizer.step(self.layer_bias_slots[k], &mut net.layers[k].bias, &lg.d_bias);
        }
        self.optimizer.step(
            self.decoder_weight_slot,
            &mut net.decoder.weights,
            &grads.d_decoder_weights,
        );
        self.optimizer.step(self.decoder_bias_slot, &mut net.decoder.bias, &grads.d_decoder_bias);
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.optimizer.learning_rate()
    }

    /// Adjusts the learning rate.
    pub fn set_learning_rate(&mut self, lr: f64) {
        self.optimizer.set_learning_rate(lr);
    }
}

/// Collects all trainable parameters of `net` into one flat vector
/// (test/diagnostic helper; order matches [`set_flat_params`]).
pub fn flat_params(net: &SdpNetwork) -> Vec<f64> {
    let mut v = Vec::new();
    for l in &net.layers {
        v.extend_from_slice(l.weights.as_slice());
        v.extend_from_slice(&l.bias);
    }
    v.extend_from_slice(&net.decoder.weights);
    v.extend_from_slice(&net.decoder.bias);
    v
}

/// Writes a flat parameter vector back into `net`.
///
/// # Panics
///
/// Panics if `flat.len()` does not match the parameter count.
pub fn set_flat_params(net: &mut SdpNetwork, flat: &[f64]) {
    let mut idx = 0;
    for l in &mut net.layers {
        let wlen = l.weights.len();
        l.weights.as_mut_slice().copy_from_slice(&flat[idx..idx + wlen]);
        idx += wlen;
        let blen = l.bias.len();
        l.bias.copy_from_slice(&flat[idx..idx + blen]);
        idx += blen;
    }
    let dwlen = net.decoder.weights.len();
    net.decoder.weights.copy_from_slice(&flat[idx..idx + dwlen]);
    idx += dwlen;
    let dblen = net.decoder.bias.len();
    net.decoder.bias.copy_from_slice(&flat[idx..idx + dblen]);
    idx += dblen;
    assert_eq!(idx, flat.len(), "flat parameter vector has wrong length");
}

/// Flattens gradients in the same order as [`flat_params`].
pub fn flat_grads(grads: &SdpGradients) -> Vec<f64> {
    let mut v = Vec::new();
    for l in &grads.layers {
        v.extend_from_slice(l.d_weights.as_slice());
        v.extend_from_slice(&l.d_bias);
    }
    v.extend_from_slice(&grads.d_decoder_weights);
    v.extend_from_slice(&grads.d_decoder_bias);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{SdpNetwork, SdpNetworkConfig};
    use crate::neuron::SpikeFn;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(123)
    }

    /// A small *soft-spike* network: fully differentiable, so finite
    /// differences must match the backward pass exactly.
    fn soft_net() -> SdpNetwork {
        let mut cfg = SdpNetworkConfig::small(3, 2);
        cfg.hidden = vec![6];
        cfg.pop_out = 2;
        cfg.timesteps = 4;
        cfg.encoder.pop_size = 3;
        cfg.spike_fn = SpikeFn::Soft { temperature: 0.4 };
        SdpNetwork::new(cfg, &mut rng())
    }

    fn loss(net: &SdpNetwork, state: &[f64], c: &[f64]) -> f64 {
        let a = net.act(state, &mut rng());
        a.iter().zip(c).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn soft_network_gradients_match_finite_differences() {
        let net = soft_net();
        let state = [0.9, 1.05, 1.2];
        let c = [1.0, -1.5]; // arbitrary linear loss on the action
        let (_, trace) = net.forward(&state, &mut rng());
        let grads = backward(&net, &trace, &c);
        let analytic = flat_grads(&grads);
        let params = flat_params(&net);
        assert_eq!(analytic.len(), params.len());

        let eps = 1e-5;
        let mut max_err: f64 = 0.0;
        let mut checked = 0;
        // Check a deterministic spread of parameters (every 7th) to keep the
        // test fast while covering all layers and the decoder.
        for i in (0..params.len()).step_by(7).chain(params.len().saturating_sub(4)..params.len()) {
            let mut pp = params.clone();
            pp[i] += eps;
            let mut netp = net.clone();
            set_flat_params(&mut netp, &pp);
            let lp = loss(&netp, &state, &c);

            let mut pm = params.clone();
            pm[i] -= eps;
            let mut netm = net.clone();
            set_flat_params(&mut netm, &pm);
            let lm = loss(&netm, &state, &c);

            let num = (lp - lm) / (2.0 * eps);
            let err = (analytic[i] - num).abs() / (1.0 + num.abs());
            max_err = max_err.max(err);
            checked += 1;
            assert!(err < 1e-4, "param {i}: analytic {} vs numeric {num}", analytic[i]);
        }
        assert!(checked >= 15, "checked too few parameters: {checked}");
        assert!(max_err < 1e-4, "max relative error {max_err}");
    }

    #[test]
    fn hard_network_produces_finite_gradients() {
        let mut cfg = SdpNetworkConfig::small(3, 2);
        cfg.timesteps = 5;
        let net = SdpNetwork::new(cfg, &mut rng());
        let (_, trace) = net.forward(&[1.0, 0.9, 1.1], &mut rng());
        let grads = backward(&net, &trace, &[1.0, -1.0]);
        assert!(flat_grads(&grads).iter().all(|g| g.is_finite()));
    }

    #[test]
    fn gradient_descent_on_action_component_increases_it() {
        // Descend on L = -a[0]; after a few steps a[0] must grow.
        let mut net = soft_net();
        let state = [1.0, 1.0, 1.0];
        let before = net.act(&state, &mut rng())[0];
        let mut trainer = SdpTrainer::new(&net, spikefolio_tensor::optim::Adam::new(5e-3));
        for _ in 0..50 {
            let (_, trace) = net.forward(&state, &mut rng());
            let grads = backward(&net, &trace, &[-1.0, 0.0]);
            trainer.apply(&mut net, &grads);
        }
        let after = net.act(&state, &mut rng())[0];
        assert!(after > before + 0.05, "a[0] went {before} → {after}");
    }

    #[test]
    fn hard_spike_training_also_moves_action() {
        // The surrogate gradient must be able to steer the hard network too.
        let mut cfg = SdpNetworkConfig::small(3, 2);
        cfg.timesteps = 5;
        let mut net = SdpNetwork::new(cfg, &mut rng());
        let state = [1.0, 1.0, 1.0];
        let before = net.act(&state, &mut rng())[1];
        let mut trainer = SdpTrainer::new(&net, spikefolio_tensor::optim::Adam::new(1e-2));
        for _ in 0..100 {
            let (_, trace) = net.forward(&state, &mut rng());
            let grads = backward(&net, &trace, &[0.0, -1.0]);
            trainer.apply(&mut net, &grads);
        }
        let after = net.act(&state, &mut rng())[1];
        assert!(after > before, "a[1] went {before} → {after}");
    }

    #[test]
    fn gradients_accumulate_and_scale() {
        let net = soft_net();
        let (_, trace) = net.forward(&[1.0, 1.0, 1.0], &mut rng());
        let g1 = backward(&net, &trace, &[1.0, 0.0]);
        let mut acc = SdpGradients::zeros_like(&net);
        acc.accumulate(&g1);
        acc.accumulate(&g1);
        acc.scale(0.5);
        let a = flat_grads(&acc);
        let b = flat_grads(&g1);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn clip_global_norm_bounds_gradients() {
        let net = soft_net();
        let (_, trace) = net.forward(&[1.0, 1.0, 1.0], &mut rng());
        let mut g = backward(&net, &trace, &[100.0, -100.0]);
        g.clip_global_norm(1.0);
        assert!(g.global_norm() <= 1.0 + 1e-9);
        // Clipping an already-small gradient is a no-op.
        let mut small = backward(&net, &trace, &[1e-8, -1e-8]);
        let before = small.global_norm();
        small.clip_global_norm(1.0);
        assert!((small.global_norm() - before).abs() < 1e-15);
    }

    #[test]
    fn adaptive_threshold_gradients_match_finite_differences() {
        // ALIF adds the b(t)/th(t) recurrence to the backward pass; with
        // soft spikes the whole thing stays exactly differentiable.
        let mut cfg = SdpNetworkConfig::small(3, 2);
        cfg.hidden = vec![5];
        cfg.pop_out = 2;
        cfg.timesteps = 5;
        cfg.encoder.pop_size = 3;
        cfg.spike_fn = SpikeFn::Soft { temperature: 0.4 };
        cfg.adaptation = Some(crate::neuron::AdaptiveParams { beta: 0.5, rho: 0.8 });
        let net = SdpNetwork::new(cfg, &mut rng());
        assert!(net.layers[0].adaptation.is_some(), "hidden layer adapts");
        assert!(net.layers[1].adaptation.is_none(), "output layer stays plain");

        let state = [0.9, 1.1, 1.0];
        let c = [1.0, -2.0];
        let (_, trace) = net.forward(&state, &mut rng());
        let grads = backward(&net, &trace, &c);
        let analytic = flat_grads(&grads);
        let params = flat_params(&net);
        let eps = 1e-5;
        for i in (0..params.len()).step_by(5) {
            let mut pp = params.clone();
            pp[i] += eps;
            let mut np = net.clone();
            set_flat_params(&mut np, &pp);
            let mut pm = params.clone();
            pm[i] -= eps;
            let mut nm = net.clone();
            set_flat_params(&mut nm, &pm);
            let num = (loss(&np, &state, &c) - loss(&nm, &state, &c)) / (2.0 * eps);
            let err = (analytic[i] - num).abs() / (1.0 + num.abs());
            assert!(err < 1e-4, "ALIF param {i}: analytic {} vs numeric {num}", analytic[i]);
        }
    }

    #[test]
    fn adaptation_suppresses_sustained_firing() {
        // Under constant strong drive, an ALIF layer must fire less than a
        // plain LIF layer with identical weights.
        use crate::layer::LifLayer;
        use crate::neuron::{AdaptiveParams, LifParams};
        use spikefolio_tensor::Matrix;
        let mut plain = LifLayer::new(1, 1, LifParams::paper(), SpikeFn::default(), &mut rng());
        plain.weights = Matrix::filled(1, 1, 1.0);
        let mut alif = plain.clone();
        alif.adaptation = Some(AdaptiveParams { beta: 2.0, rho: 0.9 });
        let inputs = Matrix::filled(30, 1, 1.0);
        let (o_plain, _) = plain.forward(&inputs, false);
        let (o_alif, _) = alif.forward(&inputs, false);
        let count = |m: &Matrix| m.as_slice().iter().sum::<f64>();
        assert!(
            count(&o_alif) < count(&o_plain),
            "ALIF fired {} vs plain {}",
            count(&o_alif),
            count(&o_plain)
        );
    }

    #[test]
    fn rate_penalty_gradient_matches_finite_difference() {
        // With soft spikes the rate penalty is exactly differentiable:
        // L = c·a + λ · mean hidden "spike".
        let net = soft_net();
        let state = [0.95, 1.05, 1.1];
        let c = [0.5, -0.5];
        let lambda = 0.7;
        let (_, trace) = net.forward(&state, &mut rng());
        let grads = backward_with_rate_penalty(&net, &trace, &c, lambda);
        let analytic = flat_grads(&grads);
        let params = flat_params(&net);

        let loss = |n: &SdpNetwork| -> f64 {
            let (a, tr) = n.forward(&state, &mut rng());
            let base: f64 = a.iter().zip(&c).map(|(x, y)| x * y).sum();
            // Hidden layers are all but the last.
            let hidden = &tr.layers[..n.depth() - 1];
            let t = n.config().timesteps as f64;
            let n_hidden: usize = n.layers[..n.depth() - 1].iter().map(|l| l.out_dim()).sum();
            let total: f64 = hidden.iter().flat_map(|lt| lt.outputs.iter()).flatten().sum();
            base + lambda * total / (t * n_hidden as f64)
        };
        let eps = 1e-5;
        for i in (0..params.len()).step_by(9) {
            let mut pp = params.clone();
            pp[i] += eps;
            let mut np = net.clone();
            set_flat_params(&mut np, &pp);
            let mut pm = params.clone();
            pm[i] -= eps;
            let mut nm = net.clone();
            set_flat_params(&mut nm, &pm);
            let num = (loss(&np) - loss(&nm)) / (2.0 * eps);
            let err = (analytic[i] - num).abs() / (1.0 + num.abs());
            assert!(err < 1e-4, "param {i}: analytic {} vs numeric {num}", analytic[i]);
        }
    }

    #[test]
    fn rate_penalty_training_reduces_spiking() {
        // Train two identical nets on the same push; the penalized one must
        // end with fewer hidden spikes.
        let state = [1.0, 1.0, 1.0];
        let d_action = [-1.0, 0.0];
        let spikes_after = |lambda: f64| -> u64 {
            let mut cfg = SdpNetworkConfig::small(3, 2);
            cfg.timesteps = 5;
            let mut net = SdpNetwork::new(cfg, &mut rng());
            let mut trainer = SdpTrainer::new(&net, spikefolio_tensor::optim::Adam::new(5e-3));
            for _ in 0..80 {
                let (_, trace) = net.forward(&state, &mut rng());
                let grads = backward_with_rate_penalty(&net, &trace, &d_action, lambda);
                trainer.apply(&mut net, &grads);
            }
            let (_, stats) = net.act_with_stats(&state, &mut rng());
            stats.neuron_spikes
        };
        let plain = spikes_after(0.0);
        let penalized = spikes_after(5.0);
        assert!(
            penalized <= plain,
            "rate penalty should not increase spiking: {penalized} vs {plain}"
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_penalty_rejected() {
        let net = soft_net();
        let (_, trace) = net.forward(&[1.0, 1.0, 1.0], &mut rng());
        let _ = backward_with_rate_penalty(&net, &trace, &[0.0, 0.0], -1.0);
    }

    #[test]
    fn batched_backward_sparse_matches_dense_bitwise() {
        use crate::batch::{BatchNetworkTrace, BatchWorkspace, KernelPath};
        use spikefolio_tensor::sparse::SparseMode;
        let mut cfg = SdpNetworkConfig::small(4, 3);
        cfg.timesteps = 5;
        let net = SdpNetwork::new(cfg, &mut rng());
        let bsz = 4;
        let states = Matrix::from_fn(bsz, 4, |b, d| 0.85 + 0.04 * ((b * 4 + d) % 7) as f64);
        let mut ws = BatchWorkspace::new(&net, bsz);
        let mut trace = BatchNetworkTrace::new(&net, bsz);
        let mut rngs: Vec<rand::rngs::StdRng> =
            (0..bsz).map(|b| rand::rngs::StdRng::seed_from_u64(40 + b as u64)).collect();
        net.forward_batch(&states, &mut rngs, &mut ws, &mut trace);
        let d_actions = Matrix::from_fn(bsz, 3, |b, a| if a == b % 3 { -1.0 } else { 0.5 });
        let dense = backward_batch_with(&net, &trace, &d_actions, 0.3, &mut ws, KernelPath::Dense);
        for mode in [SparseMode::Bitwise, SparseMode::FastMath] {
            let sparse = backward_batch_with(
                &net,
                &trace,
                &d_actions,
                0.3,
                &mut ws,
                KernelPath::Sparse(mode),
            );
            // The event-driven weight gradient is bitwise identical in
            // BOTH modes: per output element there is one contribution per
            // stack row, so there is no reduction to reorder.
            assert_eq!(flat_grads(&sparse), flat_grads(&dense), "{mode:?}");
        }
    }

    #[test]
    fn flat_round_trip_preserves_network() {
        let net = soft_net();
        let flat = flat_params(&net);
        let mut net2 = soft_net();
        set_flat_params(&mut net2, &flat);
        assert_eq!(flat_params(&net2), flat);
        let a1 = net.act(&[1.0, 1.0, 1.0], &mut rng());
        let a2 = net2.act(&[1.0, 1.0, 1.0], &mut rng());
        assert_eq!(a1, a2);
    }
}
