//! Post-backtest analysis: allocation statistics, rolling metrics, and
//! CSV export for plotting value curves (the workspace's "figure" data).

use crate::backtest::BacktestResult;
use serde::{Deserialize, Serialize};
use spikefolio_tensor::vector;

/// Allocation statistics over a backtest's weight history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationStats {
    /// Mean weight per slot (cash first).
    pub mean_weights: Vec<f64>,
    /// Mean Herfindahl–Hirschman concentration `Σ w_i²` per decision
    /// (1/n = perfectly diversified, 1 = single asset).
    pub mean_hhi: f64,
    /// Mean cash allocation.
    pub mean_cash: f64,
    /// Largest single-asset weight ever taken.
    pub max_weight: f64,
    /// Mean one-way turnover per decision.
    pub mean_turnover: f64,
}

/// Computes allocation statistics from a backtest result.
///
/// # Panics
///
/// Panics if the result contains no decisions.
pub fn allocation_stats(result: &BacktestResult) -> AllocationStats {
    assert!(!result.weights.is_empty(), "backtest has no decisions");
    let n = result.weights[0].len();
    let mut mean_weights = vec![0.0; n];
    let mut mean_hhi = 0.0;
    let mut max_weight = 0.0_f64;
    for w in &result.weights {
        vector::axpy(&mut mean_weights, 1.0, w);
        mean_hhi += w.iter().map(|x| x * x).sum::<f64>();
        max_weight = max_weight.max(w[1..].iter().fold(0.0_f64, |m, &x| m.max(x)));
    }
    let count = result.weights.len() as f64;
    mean_weights.iter_mut().for_each(|x| *x /= count);
    AllocationStats {
        mean_cash: mean_weights[0],
        mean_hhi: mean_hhi / count,
        max_weight,
        mean_turnover: result.turnover / count,
        mean_weights,
    }
}

/// Rolling Sharpe ratio over windows of `window` periods (per-period
/// units, risk-free 0). Returns one value per full window, stepping one
/// period at a time; empty if the curve is shorter than `window + 1`.
///
/// # Panics
///
/// Panics if `window < 2`.
pub fn rolling_sharpe(values: &[f64], window: usize) -> Vec<f64> {
    assert!(window >= 2, "rolling window must be at least 2");
    if values.len() < window + 1 {
        return Vec::new();
    }
    let returns: Vec<f64> = values.windows(2).map(|w| w[1] / w[0] - 1.0).collect();
    returns
        .windows(window)
        .map(|w| {
            let sd = vector::std_dev(w);
            if sd > 0.0 {
                vector::mean(w) / sd
            } else {
                0.0
            }
        })
        .collect()
}

/// Serializes one or more value curves as CSV (`period,name1,name2,…`),
/// truncating to the shortest curve. This is the input format of the
/// reproduction "figures" (portfolio value over the backtest).
///
/// # Panics
///
/// Panics if `curves` is empty or a curve is empty.
pub fn value_curves_csv(curves: &[(&str, &[f64])]) -> String {
    assert!(!curves.is_empty(), "no curves to export");
    let len = curves.iter().map(|(_, c)| c.len()).min().expect("non-empty");
    assert!(len > 0, "empty curve");
    let mut s = String::from("period");
    for (name, _) in curves {
        s.push(',');
        s.push_str(name);
    }
    s.push('\n');
    for t in 0..len {
        s.push_str(&t.to_string());
        for (_, c) in curves {
            s.push_str(&format!(",{:.10}", c[t]));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtest::{BacktestConfig, Backtester, DecisionContext, Policy};
    use spikefolio_market::experiments::ExperimentPreset;

    struct Concentrated;
    impl Policy for Concentrated {
        fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
            let mut w = vec![0.0; ctx.num_assets + 1];
            w[1] = 1.0;
            w
        }
    }

    struct Uniform;
    impl Policy for Uniform {
        fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
            spikefolio_tensor::uniform_simplex(ctx.num_assets + 1)
        }
    }

    fn result_of(p: &mut dyn Policy) -> BacktestResult {
        let market = ExperimentPreset::experiment1().shrunk(20, 5).generate(3);
        Backtester::new(BacktestConfig::default()).run(p, &market)
    }

    #[test]
    fn concentrated_policy_has_hhi_one() {
        let stats = allocation_stats(&result_of(&mut Concentrated));
        assert!((stats.mean_hhi - 1.0).abs() < 1e-12);
        assert!((stats.max_weight - 1.0).abs() < 1e-12);
        assert_eq!(stats.mean_cash, 0.0);
    }

    #[test]
    fn uniform_policy_has_hhi_one_over_n() {
        let stats = allocation_stats(&result_of(&mut Uniform));
        assert!((stats.mean_hhi - 1.0 / 12.0).abs() < 1e-12);
        assert!((stats.mean_cash - 1.0 / 12.0).abs() < 1e-12);
        assert!((stats.mean_weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rolling_sharpe_shapes() {
        let values: Vec<f64> = (0..30).map(|i| 1.0 + 0.01 * i as f64).collect();
        let rs = rolling_sharpe(&values, 10);
        assert_eq!(rs.len(), 29 - 10 + 1);
        assert!(rs.iter().all(|&v| v > 0.0), "steadily rising curve → positive sharpe");
        assert!(rolling_sharpe(&values[..5], 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "rolling window")]
    fn rolling_sharpe_rejects_tiny_window() {
        let _ = rolling_sharpe(&[1.0, 1.1, 1.2], 1);
    }

    #[test]
    fn csv_export_is_well_formed() {
        let a = [1.0, 1.1, 1.2];
        let b = [1.0, 0.9, 0.8, 0.7];
        let csv = value_curves_csv(&[("sdp", &a), ("ucrp", &b)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "period,sdp,ucrp");
        assert_eq!(lines.len(), 1 + 3, "truncated to the shortest curve");
        assert!(lines[1].starts_with("0,1.0"));
    }
}
