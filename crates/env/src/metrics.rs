//! Performance metrics of §III.A: fAPV, Sharpe ratio, maximum drawdown —
//! plus Sortino, Calmar, annualized volatility, and turnover.

use serde::{Deserialize, Serialize};
use spikefolio_tensor::vector;

/// Metric bundle computed from a backtest's portfolio value curve.
///
/// # Example
///
/// ```
/// use spikefolio_env::Metrics;
///
/// // Value doubles smoothly over 4 periods.
/// let values = [1.0, 1.19, 1.41, 1.68, 2.0];
/// let m = Metrics::from_values(&values, 365.0, 0.0);
/// assert!((m.fapv - 2.0).abs() < 1e-12);
/// assert!(m.mdd < 1e-12);
/// assert!(m.sharpe > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Final accumulated portfolio value `p_f / p_0` (eq. 15).
    pub fapv: f64,
    /// Per-period Sharpe ratio (eq. 16): mean excess periodic return over
    /// its standard deviation. Zero if the return series is constant.
    pub sharpe: f64,
    /// Maximum drawdown (eq. 17), in `[0, 1]`.
    pub mdd: f64,
    /// Sortino ratio: mean excess return over downside deviation.
    pub sortino: f64,
    /// Calmar-style ratio: annualized log return over MDD.
    pub calmar: f64,
    /// Annualized volatility of periodic log returns.
    pub annual_volatility: f64,
    /// Mean log return per period.
    pub mean_log_return: f64,
    /// Number of periods in the curve.
    pub periods: usize,
}

impl Metrics {
    /// Computes the bundle from a portfolio value curve (`values[0]` is the
    /// starting value). `periods_per_year` annualizes volatility/Calmar;
    /// `risk_free_per_period` is the per-period risk-free return `p_f` of
    /// eq. (16) (crypto convention: 0).
    ///
    /// # Panics
    ///
    /// Panics if `values` has fewer than 2 points or contains non-positive
    /// entries.
    pub fn from_values(values: &[f64], periods_per_year: f64, risk_free_per_period: f64) -> Self {
        assert!(values.len() >= 2, "need at least two portfolio values");
        assert!(
            values.iter().all(|&v| v > 0.0 && v.is_finite()),
            "portfolio values must be positive and finite"
        );
        let returns: Vec<f64> = values.windows(2).map(|w| w[1] / w[0] - 1.0).collect();
        let log_returns: Vec<f64> = values.windows(2).map(|w| (w[1] / w[0]).ln()).collect();
        let excess: Vec<f64> = returns.iter().map(|r| r - risk_free_per_period).collect();

        let mean_excess = vector::mean(&excess);
        let std_excess = vector::std_dev(&excess);
        let sharpe = if std_excess > 0.0 { mean_excess / std_excess } else { 0.0 };

        let downside: Vec<f64> = excess.iter().map(|&r| r.min(0.0)).collect();
        let downside_dev =
            (downside.iter().map(|d| d * d).sum::<f64>() / downside.len() as f64).sqrt();
        let sortino = if downside_dev > 0.0 { mean_excess / downside_dev } else { 0.0 };

        let mdd = max_drawdown(values);
        let mean_log = vector::mean(&log_returns);
        let annual_log = mean_log * periods_per_year;
        let calmar = if mdd > 0.0 { annual_log / mdd } else { 0.0 };
        let annual_volatility = vector::std_dev(&log_returns) * periods_per_year.sqrt();

        Self {
            fapv: values[values.len() - 1] / values[0],
            sharpe,
            mdd,
            sortino,
            calmar,
            annual_volatility,
            mean_log_return: mean_log,
            periods: returns.len(),
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fAPV {:.4e}  Sharpe {:+.3}  MDD {:.3}  Sortino {:+.3}  vol(ann) {:.2}",
            self.fapv, self.sharpe, self.mdd, self.sortino, self.annual_volatility
        )
    }
}

/// Maximum drawdown of a value curve: `max_{τ>t} (p_t − p_τ) / p_t`
/// (eq. 17), clamped into `[0, 1)` for positive curves.
///
/// Returns 0.0 for monotonically non-decreasing curves.
pub fn max_drawdown(values: &[f64]) -> f64 {
    let mut peak = f64::NEG_INFINITY;
    let mut mdd = 0.0_f64;
    for &v in values {
        peak = peak.max(v);
        if peak > 0.0 {
            mdd = mdd.max((peak - v) / peak);
        }
    }
    mdd
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fapv_is_final_over_initial() {
        let m = Metrics::from_values(&[2.0, 3.0, 5.0], 365.0, 0.0);
        assert!((m.fapv - 2.5).abs() < 1e-12);
        assert_eq!(m.periods, 2);
    }

    #[test]
    fn mdd_of_monotone_curve_is_zero() {
        assert_eq!(max_drawdown(&[1.0, 1.1, 1.2, 1.3]), 0.0);
    }

    #[test]
    fn mdd_known_case() {
        // Peak 2.0, trough 1.0 → 50% drawdown, later recovery irrelevant.
        let mdd = max_drawdown(&[1.0, 2.0, 1.0, 1.8, 2.5]);
        assert!((mdd - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mdd_uses_running_peak() {
        // Second, deeper drawdown from a later peak: 3.0 → 1.2 is 60%.
        let mdd = max_drawdown(&[1.0, 2.0, 1.5, 3.0, 1.2]);
        assert!((mdd - 0.6).abs() < 1e-12);
    }

    #[test]
    fn sharpe_sign_follows_drift() {
        let up: Vec<f64> = (0..50).map(|i| 1.0 * 1.01f64.powi(i)).collect();
        let down: Vec<f64> = (0..50).map(|i| 1.0 * 0.99f64.powi(i)).collect();
        // A perfectly steady series has zero variance → sharpe 0; perturb.
        let mut up_noisy = up.clone();
        up_noisy[10] *= 0.995;
        let mut down_noisy = down.clone();
        down_noisy[10] *= 1.005;
        assert!(Metrics::from_values(&up_noisy, 365.0, 0.0).sharpe > 0.0);
        assert!(Metrics::from_values(&down_noisy, 365.0, 0.0).sharpe < 0.0);
    }

    #[test]
    fn constant_series_has_zero_ratios() {
        let m = Metrics::from_values(&[1.0; 10], 365.0, 0.0);
        assert_eq!(m.sharpe, 0.0);
        assert_eq!(m.sortino, 0.0);
        assert_eq!(m.mdd, 0.0);
        assert_eq!(m.annual_volatility, 0.0);
        assert_eq!(m.fapv, 1.0);
    }

    #[test]
    fn risk_free_rate_lowers_sharpe() {
        let values: Vec<f64> = (0..30).map(|i| (1.0 + 0.001 * (i % 3) as f64).powi(i)).collect();
        let m0 = Metrics::from_values(&values, 365.0, 0.0);
        let m1 = Metrics::from_values(&values, 365.0, 0.01);
        assert!(m1.sharpe < m0.sharpe);
    }

    #[test]
    fn sortino_ignores_upside_volatility() {
        // Big gains, tiny losses → sortino should dwarf sharpe.
        let values = [1.0, 1.5, 1.49, 2.2, 2.19, 3.2];
        let m = Metrics::from_values(&values, 365.0, 0.0);
        assert!(m.sortino > m.sharpe);
    }

    #[test]
    #[should_panic(expected = "two portfolio values")]
    fn rejects_short_series() {
        let _ = Metrics::from_values(&[1.0], 365.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_values() {
        let _ = Metrics::from_values(&[1.0, -0.5], 365.0, 0.0);
    }

    #[test]
    fn display_contains_all_headline_metrics() {
        let m = Metrics::from_values(&[1.0, 1.1, 1.05], 365.0, 0.0);
        let s = m.to_string();
        assert!(s.contains("fAPV") && s.contains("Sharpe") && s.contains("MDD"));
    }

    proptest! {
        #[test]
        fn mdd_always_in_unit_interval(
            values in proptest::collection::vec(0.01f64..100.0, 2..100)
        ) {
            let mdd = max_drawdown(&values);
            prop_assert!((0.0..1.0).contains(&mdd));
        }

        #[test]
        fn fapv_positive_for_positive_curves(
            values in proptest::collection::vec(0.01f64..100.0, 2..50)
        ) {
            let m = Metrics::from_values(&values, 365.0, 0.0);
            prop_assert!(m.fapv > 0.0);
            prop_assert!(m.fapv.is_finite());
        }

        #[test]
        fn scaling_curve_leaves_metrics_invariant(
            values in proptest::collection::vec(0.5f64..2.0, 5..30),
            scale in 0.1f64..10.0,
        ) {
            // Metrics are ratios; multiplying the whole curve by a constant
            // must not change them.
            let m1 = Metrics::from_values(&values, 365.0, 0.0);
            let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
            let m2 = Metrics::from_values(&scaled, 365.0, 0.0);
            prop_assert!((m1.fapv - m2.fapv).abs() < 1e-9);
            prop_assert!((m1.mdd - m2.mdd).abs() < 1e-9);
            prop_assert!((m1.sharpe - m2.sharpe).abs() < 1e-9);
        }
    }
}
