//! Portfolio value and weight dynamics.

use crate::costs::CostModel;
use spikefolio_tensor::vector::dot;

/// Evolving portfolio state: accumulated value `p_t` and current (drifted)
/// weights.
///
/// The update order per period follows Jiang et al. (and eq. (1) of the
/// paper): at the start of period `t` the agent rebalances from the drifted
/// weights `w'_{t-1}` to its chosen `w_{t-1}`, paying the shrink factor
/// `μ_t`; prices then move by the relative vector `y_t`, multiplying value
/// by `y_t · w_{t-1}` and drifting the weights to
/// `w'_t = (y_t ⊙ w_{t-1}) / (y_t · w_{t-1})`.
///
/// Weight vectors are `N = M + 1` long, cash first; the cash relative is 1.
///
/// # Example
///
/// ```
/// use spikefolio_env::{CostModel, PortfolioState};
///
/// let mut p = PortfolioState::new(3); // cash + 2 assets
/// let r = p.step(&[0.0, 1.0, 0.0], &[1.0, 1.1, 0.9], &CostModel::Free);
/// assert!((p.value() - 1.1).abs() < 1e-12);
/// assert!((r - 1.1f64.ln()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioState {
    value: f64,
    weights: Vec<f64>,
    last_mu: f64,
}

impl PortfolioState {
    /// A fresh all-cash portfolio of unit value with `n` weight slots
    /// (cash + `n − 1` assets).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "portfolio needs at least the cash slot");
        let mut weights = vec![0.0; n];
        weights[0] = 1.0;
        Self { value: 1.0, weights, last_mu: 1.0 }
    }

    /// Current accumulated portfolio value `p_t / p_0`.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Current *drifted* weights `w'_t`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Shrink factor `μ` paid at the most recent rebalance.
    pub fn last_shrink_factor(&self) -> f64 {
        self.last_mu
    }

    /// Executes one period: rebalance to `target` (paying costs under
    /// `costs`), then apply the price-relative vector `relatives`.
    ///
    /// Returns the period's log return `ln(μ_t · (y_t · w_{t-1}))` — the
    /// summand of eq. (1).
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths disagree with the portfolio size, or if
    /// any relative is non-positive.
    pub fn step(&mut self, target: &[f64], relatives: &[f64], costs: &CostModel) -> f64 {
        self.step_with_liquidity(target, relatives, costs, &[])
    }

    /// [`step`](Self::step) with per-leg relative liquidity for
    /// volume-dependent cost models (see
    /// [`CostModel::shrink_factor_with_liquidity`]). An empty slice means
    /// typical liquidity everywhere.
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`step`](Self::step), or if
    /// `liquidity` is malformed (wrong length, non-positive entries).
    pub fn step_with_liquidity(
        &mut self,
        target: &[f64],
        relatives: &[f64],
        costs: &CostModel,
        liquidity: &[f64],
    ) -> f64 {
        assert_eq!(target.len(), self.weights.len(), "target weight length mismatch");
        assert_eq!(relatives.len(), self.weights.len(), "relative vector length mismatch");
        assert!(
            relatives.iter().all(|&y| y > 0.0 && y.is_finite()),
            "price relatives must be positive and finite"
        );
        let mu = costs.shrink_factor_with_liquidity(target, &self.weights, liquidity);
        let growth = dot(relatives, target);
        assert!(growth > 0.0, "portfolio growth factor must stay positive");
        self.value *= mu * growth;
        self.last_mu = mu;
        for (w, (&t, &y)) in self.weights.iter_mut().zip(target.iter().zip(relatives)) {
            *w = t * y / growth;
        }
        (mu * growth).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_cash_at_unit_value() {
        let p = PortfolioState::new(4);
        assert_eq!(p.value(), 1.0);
        assert_eq!(p.weights(), &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn all_cash_portfolio_is_inert() {
        let mut p = PortfolioState::new(3);
        let r = p.step(&[1.0, 0.0, 0.0], &[1.0, 2.0, 0.5], &CostModel::Free);
        assert_eq!(p.value(), 1.0);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn weights_drift_with_prices() {
        let mut p = PortfolioState::new(3);
        p.step(&[0.0, 0.5, 0.5], &[1.0, 2.0, 1.0], &CostModel::Free);
        // Growth = 1.5; asset 1 drifted to 1.0/1.5, asset 2 to 0.5/1.5.
        assert!((p.value() - 1.5).abs() < 1e-12);
        let w = p.weights();
        assert!((w[1] - 2.0 / 3.0).abs() < 1e-12);
        assert!((w[2] - 1.0 / 3.0).abs() < 1e-12);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn costs_shrink_value() {
        let mut free = PortfolioState::new(2);
        let mut paid = PortfolioState::new(2);
        let y = [1.0, 1.0];
        free.step(&[0.0, 1.0], &y, &CostModel::Free);
        paid.step(&[0.0, 1.0], &y, &CostModel::Proportional { rate: 0.01 });
        assert_eq!(free.value(), 1.0);
        assert!((paid.value() - 0.99).abs() < 1e-12);
        assert!((paid.last_shrink_factor() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn log_returns_accumulate_to_value() {
        let mut p = PortfolioState::new(3);
        let costs = CostModel::Proportional { rate: 0.0025 };
        let mut sum_log = 0.0;
        let steps: [(&[f64], &[f64]); 3] = [
            (&[0.0, 0.7, 0.3], &[1.0, 1.05, 0.98]),
            (&[0.0, 0.2, 0.8], &[1.0, 0.94, 1.07]),
            (&[1.0, 0.0, 0.0], &[1.0, 1.2, 0.8]),
        ];
        for (w, y) in steps {
            sum_log += p.step(w, y, &costs);
        }
        assert!((p.value().ln() - sum_log).abs() < 1e-12);
    }

    #[test]
    fn drought_liquidity_shrinks_value_more() {
        let costs = CostModel::realistic_frictions();
        let target = [0.0, 0.5, 0.5];
        let y = [1.0, 1.0, 1.0];
        let mut typical = PortfolioState::new(3);
        typical.step_with_liquidity(&target, &y, &costs, &[1.0, 1.0]);
        let mut drought = PortfolioState::new(3);
        drought.step_with_liquidity(&target, &y, &costs, &[0.1, 0.1]);
        assert!(drought.value() < typical.value());
        // And the liquidity-free entry point matches typical liquidity.
        let mut plain = PortfolioState::new(3);
        plain.step(&target, &y, &costs);
        assert_eq!(plain.value(), typical.value());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_relatives() {
        let mut p = PortfolioState::new(2);
        p.step(&[0.5, 0.5], &[1.0, 0.0], &CostModel::Free);
    }
}
