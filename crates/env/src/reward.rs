//! The reward of eq. (1): average log portfolio return.

use spikefolio_tensor::vector::dot;

/// Log return of one period: `ln(μ_t · (y_t · w_{t-1}))` — the summand of
/// eq. (1).
///
/// `mu` is the transaction shrink factor, `relatives` the price-relative
/// vector `y_t` (cash first), `weights` the portfolio vector `w_{t-1}`
/// chosen at the previous step.
///
/// # Panics
///
/// Panics if the vectors have different lengths or the growth factor is
/// non-positive.
///
/// # Example
///
/// ```
/// let r = spikefolio_env::reward::log_return(1.0, &[1.0, 1.1], &[0.0, 1.0]);
/// assert!((r - 1.1f64.ln()).abs() < 1e-12);
/// ```
pub fn log_return(mu: f64, relatives: &[f64], weights: &[f64]) -> f64 {
    let growth = dot(relatives, weights);
    assert!(growth > 0.0 && mu > 0.0, "growth and mu must be positive");
    (mu * growth).ln()
}

/// Average reward `R = (1/t_f) Σ_t r_t` of eq. (1) over a batch of periods.
///
/// Returns 0.0 for an empty batch.
pub fn average_reward(log_returns: &[f64]) -> f64 {
    if log_returns.is_empty() {
        0.0
    } else {
        log_returns.iter().sum::<f64>() / log_returns.len() as f64
    }
}

/// Gradient of the period log return with respect to the weight vector:
/// `∂/∂w ln(μ · (y·w)) = y / (y·w)` (treating `μ` as locally constant,
/// the standard approximation in Jiang-style training).
///
/// # Panics
///
/// Panics if lengths differ or `y·w ≤ 0`.
pub fn log_return_grad(relatives: &[f64], weights: &[f64]) -> Vec<f64> {
    let growth = dot(relatives, weights);
    assert!(growth > 0.0, "growth must be positive");
    relatives.iter().map(|&y| y / growth).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reward_of_flat_market_is_zero() {
        assert_eq!(log_return(1.0, &[1.0, 1.0, 1.0], &[0.2, 0.3, 0.5]), 0.0);
    }

    #[test]
    fn costs_reduce_reward() {
        let free = log_return(1.0, &[1.0, 1.1], &[0.0, 1.0]);
        let paid = log_return(0.9975, &[1.0, 1.1], &[0.0, 1.0]);
        assert!(paid < free);
        assert!((free - paid - (1.0f64 / 0.9975).ln()).abs() < 1e-12);
    }

    #[test]
    fn average_reward_matches_eq1() {
        let rs = [0.1, -0.05, 0.02];
        assert!((average_reward(&rs) - 0.07 / 3.0).abs() < 1e-12);
        assert_eq!(average_reward(&[]), 0.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let y = [1.0, 1.08, 0.93, 1.2];
        let w = [0.1, 0.4, 0.3, 0.2];
        let g = log_return_grad(&y, &w);
        let eps = 1e-7;
        for i in 0..w.len() {
            let mut wp = w;
            wp[i] += eps;
            let mut wm = w;
            wm[i] -= eps;
            let num = (log_return(1.0, &y, &wp) - log_return(1.0, &y, &wm)) / (2.0 * eps);
            assert!((g[i] - num).abs() < 1e-6, "component {i}: {} vs {num}", g[i]);
        }
    }
}
