//! Transaction-cost models: the `μ_t` shrink factor of eq. (1).
//!
//! Rebalancing from the drifted weights `w'` to the target weights `w`
//! shrinks portfolio value by a factor `μ_t ∈ (0, 1]`. Three models are
//! provided:
//!
//! * [`CostModel::Proportional`] — the common first-order approximation
//!   `μ = 1 − c · Σ_{i≥1} |w_i − w'_i|` over the risky assets.
//! * [`CostModel::Iterative`] — Jiang et al.'s exact fixed-point equation
//!   with separate buy/sell commission rates, solved by iteration.
//! * [`CostModel::Frictional`] — microstructure frictions: commission plus
//!   quoted half-spread plus a volume-dependent impact term, quadratic in
//!   trade size and inversely proportional to available liquidity (see
//!   [`CostModel::shrink_factor_with_liquidity`]).
//!
//! Weight vectors are `N = M + 1` long with the **cash entry first**.

use serde::{Deserialize, Serialize};

/// Transaction-cost model choices. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CostModel {
    /// Zero-cost idealization (useful for ablations).
    Free,
    /// First-order proportional cost with a single commission `rate`.
    Proportional {
        /// Commission per unit of one-way turnover (e.g. `0.0025` = 25 bp,
        /// Poloniex's taker fee of the paper's era).
        rate: f64,
    },
    /// Jiang et al. (2017) eq. (14): exact shrink factor with separate
    /// purchase and sale commissions, solved as a fixed point.
    Iterative {
        /// Purchase commission rate `c_p`.
        buy: f64,
        /// Sale commission rate `c_s`.
        sell: f64,
    },
    /// Microstructure frictions. Per risky leg trading a value fraction
    /// `q_i = |w_i − w'_i|` the cost is
    ///
    /// ```text
    /// q_i · (commission + half_spread + impact · q_i / (depth · ℓ_i))
    /// ```
    ///
    /// where `ℓ_i` is the leg's relative liquidity (1 = typical volume;
    /// see [`CostModel::shrink_factor_with_liquidity`]). The impact term
    /// is quadratic in trade size — slippage per traded unit grows
    /// linearly with participation — and blows up as liquidity dries up.
    Frictional {
        /// Commission per unit of one-way turnover.
        commission: f64,
        /// Half the quoted bid/ask spread, paid on every traded unit.
        half_spread: f64,
        /// Impact coefficient: extra cost per traded unit at a trade size
        /// of `depth` under typical liquidity.
        impact: f64,
        /// Trade-size scale (fraction of portfolio value) at which impact
        /// reaches `impact` per traded unit. Must be positive.
        depth: f64,
    },
}

impl Default for CostModel {
    /// 25 bp proportional — Poloniex's fee during the paper's data window.
    fn default() -> Self {
        CostModel::Proportional { rate: 0.0025 }
    }
}

impl CostModel {
    /// Computes the shrink factor `μ_t` for rebalancing from drifted
    /// weights `w_drifted` to target weights `w_target`.
    ///
    /// Both vectors must be on the simplex with the cash entry at index 0.
    /// The result is clamped into `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different or zero lengths.
    pub fn shrink_factor(&self, w_target: &[f64], w_drifted: &[f64]) -> f64 {
        self.shrink_factor_with_liquidity(w_target, w_drifted, &[])
    }

    /// [`shrink_factor`](Self::shrink_factor) with per-leg liquidity.
    ///
    /// `liquidity[i]` is the relative depth of risky asset `i + 1` (so the
    /// slice is `N − 1` long, cash excluded): 1 = typical traded volume,
    /// 0.1 = a drought where impact is 10× dearer. An empty slice means
    /// typical liquidity everywhere. Only [`CostModel::Frictional`] reads
    /// it; the other models price turnover irrespective of volume.
    ///
    /// # Panics
    ///
    /// Panics if the weight vectors have different or zero lengths, or if
    /// `liquidity` is non-empty with a length other than
    /// `w_target.len() − 1`, or contains a non-positive entry.
    pub fn shrink_factor_with_liquidity(
        &self,
        w_target: &[f64],
        w_drifted: &[f64],
        liquidity: &[f64],
    ) -> f64 {
        assert_eq!(w_target.len(), w_drifted.len(), "weight length mismatch");
        assert!(!w_target.is_empty(), "empty weight vectors");
        match *self {
            CostModel::Free => 1.0,
            CostModel::Proportional { rate } => {
                let turnover: f64 =
                    w_target[1..].iter().zip(&w_drifted[1..]).map(|(a, b)| (a - b).abs()).sum();
                (1.0 - rate * turnover).clamp(1e-6, 1.0)
            }
            CostModel::Iterative { buy, sell } => iterative_mu(w_target, w_drifted, buy, sell),
            CostModel::Frictional { commission, half_spread, impact, depth } => {
                assert!(depth > 0.0, "frictional depth must be positive");
                if !liquidity.is_empty() {
                    assert_eq!(
                        liquidity.len(),
                        w_target.len() - 1,
                        "liquidity length mismatch (one entry per risky asset)"
                    );
                    assert!(
                        liquidity.iter().all(|&l| l > 0.0 && l.is_finite()),
                        "liquidity entries must be positive and finite"
                    );
                }
                let cost: f64 = w_target[1..]
                    .iter()
                    .zip(&w_drifted[1..])
                    .enumerate()
                    .map(|(i, (a, b))| {
                        let q = (a - b).abs();
                        let liq = liquidity.get(i).copied().unwrap_or(1.0);
                        q * (commission + half_spread + impact * q / (depth * liq))
                    })
                    .sum();
                (1.0 - cost).clamp(1e-6, 1.0)
            }
        }
    }

    /// The first-order cost per unit of one-way turnover: the linear term
    /// the training loops differentiate through. The quadratic impact of
    /// [`CostModel::Frictional`] is second-order in trade size and enters
    /// only the reward, not this rate.
    pub fn linear_rate(&self) -> f64 {
        match *self {
            CostModel::Free => 0.0,
            CostModel::Proportional { rate } => rate,
            CostModel::Iterative { buy, sell } => buy + sell - buy * sell,
            CostModel::Frictional { commission, half_spread, .. } => commission + half_spread,
        }
    }

    /// Convenience: the cost (value fraction lost) of the rebalance,
    /// `1 − μ_t`.
    pub fn cost(&self, w_target: &[f64], w_drifted: &[f64]) -> f64 {
        1.0 - self.shrink_factor(w_target, w_drifted)
    }

    /// The scenario engine's realistic friction preset: 25 bp commission
    /// (Poloniex taker), 10 bp half-spread, and an impact term costing an
    /// extra 50 bp per traded unit when a single leg turns over half the
    /// portfolio at typical liquidity.
    pub fn realistic_frictions() -> Self {
        CostModel::Frictional { commission: 0.0025, half_spread: 0.001, impact: 0.005, depth: 0.5 }
    }
}

/// Fixed-point solution of Jiang et al. (2017) eq. (14):
///
/// ```text
/// μ = 1/(1 − c_p·w_0) · [ 1 − c_p·w'_0 − (c_s + c_p − c_s·c_p) · Σ_{i≥1} (w'_i − μ·w_i)⁺ ]
/// ```
///
/// where `w'` is the drifted vector, `w` the target, index 0 cash. The map
/// is a contraction for commission rates < 1; we iterate from the
/// proportional approximation until `|Δμ| < 1e-12` (at most 64 rounds).
fn iterative_mu(w_target: &[f64], w_drifted: &[f64], c_p: f64, c_s: f64) -> f64 {
    let combined = c_s + c_p - c_s * c_p;
    let turnover: f64 = w_target[1..].iter().zip(&w_drifted[1..]).map(|(a, b)| (a - b).abs()).sum();
    let mut mu = (1.0 - combined * 0.5 * turnover).clamp(1e-6, 1.0);
    for _ in 0..64 {
        let sell_sum: f64 = w_drifted[1..]
            .iter()
            .zip(&w_target[1..])
            .map(|(&wd, &wt)| (wd - mu * wt).max(0.0))
            .sum();
        let next =
            (1.0 / (1.0 - c_p * w_target[0])) * (1.0 - c_p * w_drifted[0] - combined * sell_sum);
        let next = next.clamp(1e-6, 1.0);
        if (next - mu).abs() < 1e-12 {
            return next;
        }
        mu = next;
    }
    mu
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn simplex(v: Vec<f64>) -> Vec<f64> {
        let s: f64 = v.iter().sum();
        if s <= 0.0 {
            vec![1.0 / v.len() as f64; v.len()]
        } else {
            v.into_iter().map(|x| x / s).collect()
        }
    }

    #[test]
    fn no_rebalance_costs_nothing() {
        let w = [0.2, 0.5, 0.3];
        for model in [
            CostModel::Free,
            CostModel::Proportional { rate: 0.0025 },
            CostModel::Iterative { buy: 0.0025, sell: 0.0025 },
        ] {
            let mu = model.shrink_factor(&w, &w);
            assert!((mu - 1.0).abs() < 1e-9, "{model:?} gave {mu}");
        }
    }

    #[test]
    fn proportional_matches_hand_computation() {
        let model = CostModel::Proportional { rate: 0.01 };
        // Turnover over risky assets: |0.6-0.2| + |0.2-0.6| = 0.8.
        let mu = model.shrink_factor(&[0.2, 0.6, 0.2], &[0.2, 0.2, 0.6]);
        assert!((mu - (1.0 - 0.008)).abs() < 1e-12);
    }

    #[test]
    fn full_swap_iterative_close_to_double_commission() {
        // Move everything from asset 1 to asset 2: sell all, buy all.
        let model = CostModel::Iterative { buy: 0.0025, sell: 0.0025 };
        let mu = model.shrink_factor(&[0.0, 0.0, 1.0], &[0.0, 1.0, 0.0]);
        // Selling 1.0 then buying ~1.0: cost ≈ c_s + c_p ≈ 0.005.
        assert!((mu - 0.995).abs() < 5e-4, "mu = {mu}");
    }

    #[test]
    fn cash_to_assets_pays_only_buy_commission() {
        let model = CostModel::Iterative { buy: 0.0025, sell: 0.0 };
        let mu = model.shrink_factor(&[0.0, 1.0], &[1.0, 0.0]);
        assert!((mu - (1.0 - 0.0025)).abs() < 1e-6, "mu = {mu}");
    }

    #[test]
    fn assets_to_cash_pays_only_sell_commission() {
        let model = CostModel::Iterative { buy: 0.0, sell: 0.0025 };
        let mu = model.shrink_factor(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((mu - (1.0 - 0.0025)).abs() < 1e-6, "mu = {mu}");
    }

    #[test]
    fn iterative_below_or_equal_proportional_bound() {
        // The exact μ accounts for commission-on-commission, so it should
        // not exceed 1 and should be close to the simple approximation.
        let exact = CostModel::Iterative { buy: 0.0025, sell: 0.0025 };
        let approx = CostModel::Proportional { rate: 0.0025 };
        let wt = [0.1, 0.4, 0.3, 0.2];
        let wd = [0.3, 0.1, 0.1, 0.5];
        let me = exact.shrink_factor(&wt, &wd);
        let ma = approx.shrink_factor(&wt, &wd);
        assert!(me <= 1.0 && me > 0.9);
        assert!((me - ma).abs() < 0.01);
    }

    #[test]
    fn cost_is_one_minus_mu() {
        let m = CostModel::Proportional { rate: 0.01 };
        let wt = [0.0, 1.0, 0.0];
        let wd = [0.0, 0.0, 1.0];
        assert!((m.cost(&wt, &wd) + m.shrink_factor(&wt, &wd) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_models_are_no_ops() {
        // Satellite: a zero-rate model must leave rewards untouched — the
        // shrink factor is exactly 1 for any rebalance.
        let zeroes = [
            CostModel::Proportional { rate: 0.0 },
            CostModel::Iterative { buy: 0.0, sell: 0.0 },
            CostModel::Frictional { commission: 0.0, half_spread: 0.0, impact: 0.0, depth: 0.5 },
        ];
        let wt = [0.0, 0.9, 0.1];
        let wd = [0.5, 0.0, 0.5];
        for model in zeroes {
            assert_eq!(model.shrink_factor(&wt, &wd), 1.0, "{model:?}");
            assert_eq!(model.cost(&wt, &wd), 0.0, "{model:?}");
            assert_eq!(model.linear_rate(), 0.0, "{model:?}");
        }
    }

    #[test]
    fn proportional_cost_is_rate_times_turnover_identity() {
        // Satellite: cost == rate × turnover for a grid of rebalances.
        let rate = 0.0025;
        let model = CostModel::Proportional { rate };
        let cases: [(&[f64], &[f64]); 3] = [
            (&[0.2, 0.6, 0.2], &[0.2, 0.2, 0.6]),
            (&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0]),
            (&[0.1, 0.3, 0.6], &[0.1, 0.6, 0.3]),
        ];
        for (wt, wd) in cases {
            let turnover: f64 = wt[1..].iter().zip(&wd[1..]).map(|(a, b)| (a - b).abs()).sum();
            assert!(
                (model.cost(wt, wd) - rate * turnover).abs() < 1e-15,
                "cost {} != rate×turnover {}",
                model.cost(wt, wd),
                rate * turnover
            );
        }
    }

    #[test]
    fn frictional_slippage_is_monotone_in_trade_size() {
        // Satellite: growing one leg's trade size must strictly raise the
        // cost, and superlinearly (the impact term is quadratic).
        let model = CostModel::realistic_frictions();
        let wd = [1.0, 0.0, 0.0];
        let mut last_cost = 0.0;
        let mut last_per_unit = 0.0;
        for k in 1..=10 {
            let q = 0.1 * k as f64;
            let wt = [1.0 - q, q, 0.0];
            let cost = model.cost(&wt, &wd);
            assert!(cost > last_cost, "cost not monotone at q={q}: {cost} <= {last_cost}");
            let per_unit = cost / q;
            assert!(
                per_unit > last_per_unit,
                "impact not superlinear at q={q}: {per_unit} <= {last_per_unit}"
            );
            last_cost = cost;
            last_per_unit = per_unit;
        }
    }

    #[test]
    fn frictional_cost_rises_as_liquidity_dries_up() {
        let model = CostModel::realistic_frictions();
        let wt = [0.5, 0.5, 0.0];
        let wd = [1.0, 0.0, 0.0];
        let typical = 1.0 - model.shrink_factor_with_liquidity(&wt, &wd, &[1.0, 1.0]);
        let drought = 1.0 - model.shrink_factor_with_liquidity(&wt, &wd, &[0.1, 0.1]);
        let flush = 1.0 - model.shrink_factor_with_liquidity(&wt, &wd, &[10.0, 10.0]);
        assert!(drought > typical, "drought {drought} not dearer than typical {typical}");
        assert!(flush < typical, "flush {flush} not cheaper than typical {typical}");
        // Empty slice means typical liquidity.
        let implicit = 1.0 - model.shrink_factor_with_liquidity(&wt, &wd, &[]);
        assert_eq!(implicit, typical);
        // Only the impact term is liquidity-sensitive: the linear part of
        // the drought cost matches the typical linear part.
        let q = 0.5;
        let linear = q * model.linear_rate();
        assert!((drought - linear) > (typical - linear) * 9.0);
    }

    #[test]
    fn frictional_exceeds_bare_commission_for_any_trade() {
        let frict = CostModel::realistic_frictions();
        let comm = CostModel::Proportional { rate: 0.0025 };
        let wt = [0.2, 0.5, 0.3];
        let wd = [0.6, 0.1, 0.3];
        assert!(frict.cost(&wt, &wd) > comm.cost(&wt, &wd));
    }

    #[test]
    #[should_panic(expected = "liquidity length mismatch")]
    fn wrong_liquidity_length_panics() {
        let model = CostModel::realistic_frictions();
        let _ = model.shrink_factor_with_liquidity(&[0.5, 0.5], &[1.0, 0.0], &[1.0, 1.0]);
    }

    proptest! {
        #[test]
        fn mu_always_in_unit_interval(
            a in proptest::collection::vec(0.0f64..1.0, 4),
            b in proptest::collection::vec(0.0f64..1.0, 4),
        ) {
            let wt = simplex(a);
            let wd = simplex(b);
            for model in [
                CostModel::Free,
                CostModel::Proportional { rate: 0.0025 },
                CostModel::Iterative { buy: 0.0025, sell: 0.0025 },
                CostModel::realistic_frictions(),
            ] {
                let mu = model.shrink_factor(&wt, &wd);
                prop_assert!((0.0..=1.0).contains(&mu), "{:?} gave {}", model, mu);
            }
        }

        #[test]
        fn more_turnover_never_cheaper(scale in 0.0f64..1.0) {
            // Interpolating the target toward the drifted weights reduces
            // turnover, which must not increase cost.
            let wd = vec![0.25, 0.25, 0.25, 0.25];
            let far = vec![0.0, 1.0, 0.0, 0.0];
            let near: Vec<f64> = far.iter().zip(&wd)
                .map(|(f, d)| d + scale * (f - d)).collect();
            let model = CostModel::Proportional { rate: 0.0025 };
            let mu_near = model.shrink_factor(&near, &wd);
            let mu_far = model.shrink_factor(&far, &wd);
            prop_assert!(mu_near >= mu_far - 1e-12);
        }
    }
}
