//! Transaction-cost models: the `μ_t` shrink factor of eq. (1).
//!
//! Rebalancing from the drifted weights `w'` to the target weights `w`
//! shrinks portfolio value by a factor `μ_t ∈ (0, 1]`. Two models are
//! provided:
//!
//! * [`CostModel::Proportional`] — the common first-order approximation
//!   `μ = 1 − c · Σ_{i≥1} |w_i − w'_i|` over the risky assets.
//! * [`CostModel::Iterative`] — Jiang et al.'s exact fixed-point equation
//!   with separate buy/sell commission rates, solved by iteration.
//!
//! Weight vectors are `N = M + 1` long with the **cash entry first**.

use serde::{Deserialize, Serialize};

/// Transaction-cost model choices. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CostModel {
    /// Zero-cost idealization (useful for ablations).
    Free,
    /// First-order proportional cost with a single commission `rate`.
    Proportional {
        /// Commission per unit of one-way turnover (e.g. `0.0025` = 25 bp,
        /// Poloniex's taker fee of the paper's era).
        rate: f64,
    },
    /// Jiang et al. (2017) eq. (14): exact shrink factor with separate
    /// purchase and sale commissions, solved as a fixed point.
    Iterative {
        /// Purchase commission rate `c_p`.
        buy: f64,
        /// Sale commission rate `c_s`.
        sell: f64,
    },
}

impl Default for CostModel {
    /// 25 bp proportional — Poloniex's fee during the paper's data window.
    fn default() -> Self {
        CostModel::Proportional { rate: 0.0025 }
    }
}

impl CostModel {
    /// Computes the shrink factor `μ_t` for rebalancing from drifted
    /// weights `w_drifted` to target weights `w_target`.
    ///
    /// Both vectors must be on the simplex with the cash entry at index 0.
    /// The result is clamped into `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different or zero lengths.
    pub fn shrink_factor(&self, w_target: &[f64], w_drifted: &[f64]) -> f64 {
        assert_eq!(w_target.len(), w_drifted.len(), "weight length mismatch");
        assert!(!w_target.is_empty(), "empty weight vectors");
        match *self {
            CostModel::Free => 1.0,
            CostModel::Proportional { rate } => {
                let turnover: f64 =
                    w_target[1..].iter().zip(&w_drifted[1..]).map(|(a, b)| (a - b).abs()).sum();
                (1.0 - rate * turnover).clamp(1e-6, 1.0)
            }
            CostModel::Iterative { buy, sell } => iterative_mu(w_target, w_drifted, buy, sell),
        }
    }

    /// Convenience: the cost (value fraction lost) of the rebalance,
    /// `1 − μ_t`.
    pub fn cost(&self, w_target: &[f64], w_drifted: &[f64]) -> f64 {
        1.0 - self.shrink_factor(w_target, w_drifted)
    }
}

/// Fixed-point solution of Jiang et al. (2017) eq. (14):
///
/// ```text
/// μ = 1/(1 − c_p·w_0) · [ 1 − c_p·w'_0 − (c_s + c_p − c_s·c_p) · Σ_{i≥1} (w'_i − μ·w_i)⁺ ]
/// ```
///
/// where `w'` is the drifted vector, `w` the target, index 0 cash. The map
/// is a contraction for commission rates < 1; we iterate from the
/// proportional approximation until `|Δμ| < 1e-12` (at most 64 rounds).
fn iterative_mu(w_target: &[f64], w_drifted: &[f64], c_p: f64, c_s: f64) -> f64 {
    let combined = c_s + c_p - c_s * c_p;
    let turnover: f64 = w_target[1..].iter().zip(&w_drifted[1..]).map(|(a, b)| (a - b).abs()).sum();
    let mut mu = (1.0 - combined * 0.5 * turnover).clamp(1e-6, 1.0);
    for _ in 0..64 {
        let sell_sum: f64 = w_drifted[1..]
            .iter()
            .zip(&w_target[1..])
            .map(|(&wd, &wt)| (wd - mu * wt).max(0.0))
            .sum();
        let next =
            (1.0 / (1.0 - c_p * w_target[0])) * (1.0 - c_p * w_drifted[0] - combined * sell_sum);
        let next = next.clamp(1e-6, 1.0);
        if (next - mu).abs() < 1e-12 {
            return next;
        }
        mu = next;
    }
    mu
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn simplex(v: Vec<f64>) -> Vec<f64> {
        let s: f64 = v.iter().sum();
        if s <= 0.0 {
            vec![1.0 / v.len() as f64; v.len()]
        } else {
            v.into_iter().map(|x| x / s).collect()
        }
    }

    #[test]
    fn no_rebalance_costs_nothing() {
        let w = [0.2, 0.5, 0.3];
        for model in [
            CostModel::Free,
            CostModel::Proportional { rate: 0.0025 },
            CostModel::Iterative { buy: 0.0025, sell: 0.0025 },
        ] {
            let mu = model.shrink_factor(&w, &w);
            assert!((mu - 1.0).abs() < 1e-9, "{model:?} gave {mu}");
        }
    }

    #[test]
    fn proportional_matches_hand_computation() {
        let model = CostModel::Proportional { rate: 0.01 };
        // Turnover over risky assets: |0.6-0.2| + |0.2-0.6| = 0.8.
        let mu = model.shrink_factor(&[0.2, 0.6, 0.2], &[0.2, 0.2, 0.6]);
        assert!((mu - (1.0 - 0.008)).abs() < 1e-12);
    }

    #[test]
    fn full_swap_iterative_close_to_double_commission() {
        // Move everything from asset 1 to asset 2: sell all, buy all.
        let model = CostModel::Iterative { buy: 0.0025, sell: 0.0025 };
        let mu = model.shrink_factor(&[0.0, 0.0, 1.0], &[0.0, 1.0, 0.0]);
        // Selling 1.0 then buying ~1.0: cost ≈ c_s + c_p ≈ 0.005.
        assert!((mu - 0.995).abs() < 5e-4, "mu = {mu}");
    }

    #[test]
    fn cash_to_assets_pays_only_buy_commission() {
        let model = CostModel::Iterative { buy: 0.0025, sell: 0.0 };
        let mu = model.shrink_factor(&[0.0, 1.0], &[1.0, 0.0]);
        assert!((mu - (1.0 - 0.0025)).abs() < 1e-6, "mu = {mu}");
    }

    #[test]
    fn assets_to_cash_pays_only_sell_commission() {
        let model = CostModel::Iterative { buy: 0.0, sell: 0.0025 };
        let mu = model.shrink_factor(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((mu - (1.0 - 0.0025)).abs() < 1e-6, "mu = {mu}");
    }

    #[test]
    fn iterative_below_or_equal_proportional_bound() {
        // The exact μ accounts for commission-on-commission, so it should
        // not exceed 1 and should be close to the simple approximation.
        let exact = CostModel::Iterative { buy: 0.0025, sell: 0.0025 };
        let approx = CostModel::Proportional { rate: 0.0025 };
        let wt = [0.1, 0.4, 0.3, 0.2];
        let wd = [0.3, 0.1, 0.1, 0.5];
        let me = exact.shrink_factor(&wt, &wd);
        let ma = approx.shrink_factor(&wt, &wd);
        assert!(me <= 1.0 && me > 0.9);
        assert!((me - ma).abs() < 0.01);
    }

    #[test]
    fn cost_is_one_minus_mu() {
        let m = CostModel::Proportional { rate: 0.01 };
        let wt = [0.0, 1.0, 0.0];
        let wd = [0.0, 0.0, 1.0];
        assert!((m.cost(&wt, &wd) + m.shrink_factor(&wt, &wd) - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn mu_always_in_unit_interval(
            a in proptest::collection::vec(0.0f64..1.0, 4),
            b in proptest::collection::vec(0.0f64..1.0, 4),
        ) {
            let wt = simplex(a);
            let wd = simplex(b);
            for model in [
                CostModel::Free,
                CostModel::Proportional { rate: 0.0025 },
                CostModel::Iterative { buy: 0.0025, sell: 0.0025 },
            ] {
                let mu = model.shrink_factor(&wt, &wd);
                prop_assert!((0.0..=1.0).contains(&mu), "{:?} gave {}", model, mu);
            }
        }

        #[test]
        fn more_turnover_never_cheaper(scale in 0.0f64..1.0) {
            // Interpolating the target toward the drifted weights reduces
            // turnover, which must not increase cost.
            let wd = vec![0.25, 0.25, 0.25, 0.25];
            let far = vec![0.0, 1.0, 0.0, 0.0];
            let near: Vec<f64> = far.iter().zip(&wd)
                .map(|(f, d)| d + scale * (f - d)).collect();
            let model = CostModel::Proportional { rate: 0.0025 };
            let mu_near = model.shrink_factor(&near, &wd);
            let mu_far = model.shrink_factor(&far, &wd);
            prop_assert!(mu_near >= mu_far - 1e-12);
        }
    }
}
