//! Tail-risk and trade-quality measures beyond the paper's three headline
//! metrics.

use serde::{Deserialize, Serialize};
use spikefolio_tensor::vector;

/// Historical Value-at-Risk at confidence `alpha` (e.g. 0.95): the loss
/// threshold exceeded in only `1 − alpha` of periods, reported as a
/// positive number. Returns 0.0 for empty inputs.
///
/// # Panics
///
/// Panics if `alpha` is outside `(0, 1)`.
pub fn value_at_risk(returns: &[f64], alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    if returns.is_empty() {
        return 0.0;
    }
    let mut sorted = returns.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((1.0 - alpha) * sorted.len() as f64).floor() as usize;
    let idx = idx.min(sorted.len() - 1);
    (-sorted[idx]).max(0.0)
}

/// Conditional Value-at-Risk (expected shortfall): the mean loss over the
/// worst `1 − alpha` fraction of periods, as a positive number.
///
/// # Panics
///
/// Panics if `alpha` is outside `(0, 1)`.
pub fn conditional_value_at_risk(returns: &[f64], alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    if returns.is_empty() {
        return 0.0;
    }
    let mut sorted = returns.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let k = (((1.0 - alpha) * sorted.len() as f64).ceil() as usize).max(1);
    let tail = &sorted[..k];
    (-vector::mean(tail)).max(0.0)
}

/// Fraction of periods with a strictly positive return.
pub fn win_rate(returns: &[f64]) -> f64 {
    if returns.is_empty() {
        return 0.0;
    }
    returns.iter().filter(|&&r| r > 0.0).count() as f64 / returns.len() as f64
}

/// Gross profits over gross losses (∞-free: returns `f64::INFINITY` only
/// when there are profits and zero losses; 0.0 when there are no profits).
pub fn profit_factor(returns: &[f64]) -> f64 {
    let gains: f64 = returns.iter().filter(|&&r| r > 0.0).sum();
    let losses: f64 = -returns.iter().filter(|&&r| r < 0.0).sum::<f64>();
    if losses > 0.0 {
        gains / losses
    } else if gains > 0.0 {
        f64::INFINITY
    } else {
        0.0
    }
}

/// Risk report bundle over a series of periodic returns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RiskReport {
    /// 95% historical VaR (per period).
    pub var_95: f64,
    /// 95% expected shortfall (per period).
    pub cvar_95: f64,
    /// Fraction of winning periods.
    pub win_rate: f64,
    /// Gross profit / gross loss.
    pub profit_factor: f64,
    /// Worst single-period return.
    pub worst_period: f64,
    /// Best single-period return.
    pub best_period: f64,
}

/// Computes the bundle from periodic simple returns.
pub fn risk_report(returns: &[f64]) -> RiskReport {
    RiskReport {
        var_95: value_at_risk(returns, 0.95),
        cvar_95: conditional_value_at_risk(returns, 0.95),
        win_rate: win_rate(returns),
        profit_factor: profit_factor(returns),
        worst_period: vector::min(returns).min(0.0),
        best_period: vector::max(returns).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn var_of_known_sample() {
        // 100 returns: one -10%, rest +1%. At 95%, the 5th percentile of
        // the distribution is +1% (only 1 bad value) → VaR clamps to 0.
        let mut r = vec![0.01; 99];
        r.push(-0.10);
        assert_eq!(value_at_risk(&r, 0.95), 0.0);
        // At 99.5% the worst value defines VaR.
        assert!((value_at_risk(&r, 0.995) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn cvar_dominates_var() {
        let returns: Vec<f64> = (0..200).map(|i| ((i * 37) % 41) as f64 / 100.0 - 0.2).collect();
        let var = value_at_risk(&returns, 0.9);
        let cvar = conditional_value_at_risk(&returns, 0.9);
        assert!(cvar >= var, "CVaR {cvar} < VaR {var}");
    }

    #[test]
    fn win_rate_and_profit_factor() {
        let r = [0.1, -0.05, 0.1, -0.05];
        assert_eq!(win_rate(&r), 0.5);
        assert!((profit_factor(&r) - 2.0).abs() < 1e-12);
        assert_eq!(profit_factor(&[0.1, 0.2]), f64::INFINITY);
        assert_eq!(profit_factor(&[-0.1]), 0.0);
        assert_eq!(profit_factor(&[]), 0.0);
        assert_eq!(win_rate(&[]), 0.0);
    }

    #[test]
    fn report_bundles_consistently() {
        let r = [0.02, -0.03, 0.05, -0.01, 0.0];
        let rep = risk_report(&r);
        assert_eq!(rep.worst_period, -0.03);
        assert_eq!(rep.best_period, 0.05);
        assert!((rep.win_rate - 0.4).abs() < 1e-12);
        assert!(rep.cvar_95 >= rep.var_95);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        let _ = value_at_risk(&[0.1], 1.0);
    }

    proptest! {
        #[test]
        fn var_cvar_nonnegative_and_ordered(
            returns in proptest::collection::vec(-0.5f64..0.5, 1..200),
            alpha in 0.5f64..0.99,
        ) {
            let var = value_at_risk(&returns, alpha);
            let cvar = conditional_value_at_risk(&returns, alpha);
            prop_assert!(var >= 0.0);
            prop_assert!(cvar + 1e-12 >= var);
        }

        #[test]
        fn win_rate_in_unit_interval(
            returns in proptest::collection::vec(-0.5f64..0.5, 0..100)
        ) {
            let w = win_rate(&returns);
            prop_assert!((0.0..=1.0).contains(&w));
        }
    }
}
