//! Portfolio-management environment for `spikefolio`.
//!
//! This crate implements the decision process of §II.A of the paper:
//! portfolio weight dynamics, the transaction-cost shrink factor `μ_t`, the
//! average-log-return reward of eq. (1), the backtesting engine, and the
//! three performance metrics of §III.A (fAPV, Sharpe ratio, maximum
//! drawdown) plus a few extras.
//!
//! The central abstraction is the [`Policy`] trait: anything that maps
//! market history to a weight vector on the simplex — the SDP agent, the
//! DRL baseline, or the classical strategies — can be driven by
//! [`Backtester`].
//!
//! # Example
//!
//! ```
//! use spikefolio_env::{Backtester, BacktestConfig, Policy, DecisionContext};
//! use spikefolio_market::experiments::ExperimentPreset;
//!
//! struct Uniform;
//! impl Policy for Uniform {
//!     fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
//!         spikefolio_tensor::uniform_simplex(ctx.num_assets + 1)
//!     }
//! }
//!
//! let market = ExperimentPreset::experiment1().shrunk(30, 10).generate(1);
//! let result = Backtester::new(BacktestConfig::default()).run(&mut Uniform, &market);
//! assert!(result.metrics.fapv > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod backtest;
pub mod costs;
pub mod episode;
pub mod metrics;
pub mod portfolio;
pub mod reward;
pub mod risk;
pub mod state;

pub use backtest::{BacktestConfig, BacktestResult, Backtester, DecisionContext, Policy};
pub use costs::CostModel;
pub use metrics::Metrics;
pub use portfolio::PortfolioState;
pub use state::{StateBuilder, StateConfig};
