//! State construction: the paper's
//! `state = {w_{t−1}, close, high, low, open}` as a flat feature vector.
//!
//! For each asset and each lag `k < window`, the builder emits the prices of
//! period `t − k` normalized by the asset's latest close — Jiang et al.'s
//! price-tensor normalization, extended with the open price as the paper's
//! state definition requires. Optionally the previous weight vector
//! `w_{t−1}` is appended, giving the policy awareness of transaction costs.

use serde::{Deserialize, Serialize};
use spikefolio_market::MarketData;

/// Configuration of the state feature layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateConfig {
    /// Number of trailing periods included (the paper's observation
    /// window).
    pub window: usize,
    /// Include the open price channel (the paper's state lists it; Jiang's
    /// original uses only close/high/low).
    pub include_open: bool,
    /// Append the previous weight vector `w_{t−1}` (length assets + 1).
    pub include_weights: bool,
}

impl Default for StateConfig {
    /// Window of 8 periods with all four OHLC channels and `w_{t−1}`.
    fn default() -> Self {
        Self { window: 8, include_open: true, include_weights: true }
    }
}

impl StateConfig {
    /// Number of price channels per asset-lag (3 or 4).
    pub fn channels(&self) -> usize {
        if self.include_open {
            4
        } else {
            3
        }
    }
}

/// Builds flat state vectors from market data. See the [module docs](self).
///
/// # Example
///
/// ```
/// use spikefolio_env::{StateBuilder, StateConfig};
/// use spikefolio_market::experiments::ExperimentPreset;
///
/// let market = ExperimentPreset::experiment1().shrunk(20, 5).generate(3);
/// let sb = StateBuilder::new(StateConfig::default());
/// let w_prev = vec![1.0 / 12.0; 12];
/// let s = sb.build(&market, sb.min_period(), &w_prev);
/// assert_eq!(s.len(), sb.state_dim(market.num_assets()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateBuilder {
    config: StateConfig,
}

impl StateBuilder {
    /// Creates a builder.
    ///
    /// # Panics
    ///
    /// Panics if `config.window == 0`.
    pub fn new(config: StateConfig) -> Self {
        assert!(config.window > 0, "state window must be positive");
        Self { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &StateConfig {
        &self.config
    }

    /// Dimension of the produced state vector for `num_assets` risky
    /// assets.
    pub fn state_dim(&self, num_assets: usize) -> usize {
        let price_part = num_assets * self.config.window * self.config.channels();
        let weight_part = if self.config.include_weights { num_assets + 1 } else { 0 };
        price_part + weight_part
    }

    /// Earliest period index `t` for which a full window exists.
    pub fn min_period(&self) -> usize {
        self.config.window - 1
    }

    /// Builds the state vector at period `t` (using candles up to and
    /// including `t`) with previous weights `prev_weights`.
    ///
    /// # Panics
    ///
    /// Panics if `t < min_period()`, if `t` is out of range, or if
    /// `prev_weights.len() != num_assets + 1` when weights are included.
    pub fn build(&self, data: &MarketData, t: usize, prev_weights: &[f64]) -> Vec<f64> {
        assert!(t >= self.min_period(), "period {t} has no full window");
        assert!(t < data.num_periods(), "period {t} out of range");
        let n = data.num_assets();
        let mut state = Vec::with_capacity(self.state_dim(n));
        for a in 0..n {
            let latest_close = data.close(t, a);
            for k in 0..self.config.window {
                let c = data.candle(t - k, a);
                state.push(c.close / latest_close);
                state.push(c.high / latest_close);
                state.push(c.low / latest_close);
                if self.config.include_open {
                    state.push(c.open / latest_close);
                }
            }
        }
        if self.config.include_weights {
            assert_eq!(prev_weights.len(), n + 1, "prev_weights must have length num_assets + 1");
            state.extend_from_slice(prev_weights);
        }
        state
    }

    /// Builds the state vector from a raw OHLC window instead of a full
    /// [`MarketData`] — the serving path, where a caller ships exactly the
    /// candles the policy needs. `candles` holds `window × num_assets`
    /// entries in row-major period order, oldest period first, so
    /// `candles[p * num_assets + a]` is asset `a` at the `p`-th oldest
    /// period; the last row is "now". Produces bitwise the same vector as
    /// [`build`](Self::build) over the matching slice of market data.
    ///
    /// # Errors
    ///
    /// Returns a message if the candle count does not equal
    /// `window * num_assets`, if `num_assets == 0`, or if
    /// `prev_weights.len() != num_assets + 1` when weights are included.
    pub fn build_from_window(
        &self,
        candles: &[spikefolio_market::Candle],
        num_assets: usize,
        prev_weights: &[f64],
    ) -> Result<Vec<f64>, String> {
        if num_assets == 0 {
            return Err("window must cover at least one asset".to_string());
        }
        let expected = self.config.window * num_assets;
        if candles.len() != expected {
            return Err(format!(
                "window carries {} candles, expected {} ({} periods x {} assets)",
                candles.len(),
                expected,
                self.config.window,
                num_assets
            ));
        }
        if self.config.include_weights && prev_weights.len() != num_assets + 1 {
            return Err(format!(
                "prev_weights has length {}, expected num_assets + 1 = {}",
                prev_weights.len(),
                num_assets + 1
            ));
        }
        let last = self.config.window - 1;
        let mut state = Vec::with_capacity(self.state_dim(num_assets));
        for a in 0..num_assets {
            let latest_close = candles[last * num_assets + a].close;
            for k in 0..self.config.window {
                let c = &candles[(last - k) * num_assets + a];
                state.push(c.close / latest_close);
                state.push(c.high / latest_close);
                state.push(c.low / latest_close);
                if self.config.include_open {
                    state.push(c.open / latest_close);
                }
            }
        }
        if self.config.include_weights {
            state.extend_from_slice(prev_weights);
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikefolio_market::experiments::ExperimentPreset;

    fn market() -> MarketData {
        ExperimentPreset::experiment1().shrunk(20, 5).generate(9)
    }

    #[test]
    fn state_dim_formula() {
        let sb =
            StateBuilder::new(StateConfig { window: 5, include_open: true, include_weights: true });
        assert_eq!(sb.state_dim(11), 11 * 5 * 4 + 12);
        let sb2 = StateBuilder::new(StateConfig {
            window: 3,
            include_open: false,
            include_weights: false,
        });
        assert_eq!(sb2.state_dim(11), 11 * 3 * 3);
    }

    #[test]
    fn built_state_has_declared_dim() {
        let m = market();
        for cfg in [
            StateConfig::default(),
            StateConfig { window: 3, include_open: false, include_weights: false },
            StateConfig { window: 1, include_open: true, include_weights: true },
        ] {
            let sb = StateBuilder::new(cfg);
            let w = vec![1.0 / 12.0; 12];
            let s = sb.build(&m, sb.min_period(), &w);
            assert_eq!(s.len(), sb.state_dim(m.num_assets()));
        }
    }

    #[test]
    fn latest_close_normalizes_to_one() {
        let m = market();
        let sb = StateBuilder::new(StateConfig {
            window: 4,
            include_open: true,
            include_weights: false,
        });
        let s = sb.build(&m, 10, &[]);
        let channels = 4;
        // The first entry of each asset block is close(t)/close(t) = 1.
        for a in 0..m.num_assets() {
            let base = a * sb.config().window * channels;
            assert!((s[base] - 1.0).abs() < 1e-12, "asset {a}");
        }
    }

    #[test]
    fn weights_are_appended_verbatim() {
        let m = market();
        let sb = StateBuilder::new(StateConfig {
            window: 2,
            include_open: false,
            include_weights: true,
        });
        let mut w = vec![0.0; 12];
        w[0] = 0.25;
        w[5] = 0.75;
        let s = sb.build(&m, 5, &w);
        assert_eq!(&s[s.len() - 12..], w.as_slice());
    }

    #[test]
    fn features_are_positive_and_finite() {
        let m = market();
        let sb = StateBuilder::new(StateConfig::default());
        let w = vec![1.0 / 12.0; 12];
        for t in sb.min_period()..m.num_periods() {
            let s = sb.build(&m, t, &w);
            assert!(s.iter().all(|&v| v.is_finite() && v >= 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "no full window")]
    fn rejects_early_periods() {
        let m = market();
        let sb = StateBuilder::new(StateConfig::default());
        let w = vec![1.0 / 12.0; 12];
        let _ = sb.build(&m, sb.min_period() - 1, &w);
    }

    #[test]
    fn window_build_matches_market_build_bitwise() {
        let m = market();
        for cfg in [
            StateConfig::default(),
            StateConfig { window: 3, include_open: false, include_weights: false },
            StateConfig { window: 1, include_open: true, include_weights: true },
        ] {
            let sb = StateBuilder::new(cfg);
            let n = m.num_assets();
            let w: Vec<f64> =
                (0..=n).map(|i| (i + 1) as f64 / ((n + 2) * (n + 1) / 2) as f64).collect();
            for t in [sb.min_period(), m.num_periods() - 1] {
                // Flatten the trailing window, oldest period first.
                let mut candles = Vec::new();
                for p in (t + 1 - cfg.window)..=t {
                    for a in 0..n {
                        candles.push(m.candle(p, a));
                    }
                }
                let from_window = sb.build_from_window(&candles, n, &w).expect("valid window");
                let from_market = sb.build(&m, t, &w);
                assert_eq!(from_window.len(), from_market.len());
                for (x, y) in from_window.iter().zip(&from_market) {
                    assert_eq!(x.to_bits(), y.to_bits(), "cfg {cfg:?} t {t}");
                }
            }
        }
    }

    #[test]
    fn window_build_rejects_bad_shapes() {
        let m = market();
        let sb = StateBuilder::new(StateConfig::default());
        let n = m.num_assets();
        let w = vec![1.0 / (n + 1) as f64; n + 1];
        let mut candles = Vec::new();
        for p in 0..sb.config().window {
            for a in 0..n {
                candles.push(m.candle(p, a));
            }
        }
        // Wrong candle count.
        assert!(sb.build_from_window(&candles[1..], n, &w).is_err());
        // Zero assets.
        assert!(sb.build_from_window(&[], 0, &[]).is_err());
        // Wrong weight length.
        assert!(sb.build_from_window(&candles, n, &w[1..]).is_err());
    }

    #[test]
    fn high_channel_dominates_low_channel() {
        let m = market();
        let sb = StateBuilder::new(StateConfig {
            window: 6,
            include_open: true,
            include_weights: false,
        });
        let s = sb.build(&m, 12, &[]);
        // Layout per lag: [close, high, low, open].
        for chunk in s.chunks_exact(4) {
            assert!(chunk[1] >= chunk[2], "high {} < low {}", chunk[1], chunk[2]);
        }
    }
}
