//! Backtesting engine: drives any [`Policy`] over a market and reports
//! metrics, value curves, and weight histories.

use crate::costs::CostModel;
use crate::metrics::Metrics;
use crate::portfolio::PortfolioState;
use serde::{Deserialize, Serialize};
use spikefolio_market::MarketData;
use spikefolio_telemetry::{labels, NoopRecorder, Record, Recorder, Stopwatch};
use spikefolio_tensor::simplex;

/// Everything a policy may inspect when deciding the next weight vector.
#[derive(Debug)]
pub struct DecisionContext<'a> {
    /// The full market dataset being traded.
    pub market: &'a MarketData,
    /// Current period index; candles up to and including `t` are known.
    pub t: usize,
    /// Number of risky assets (`M`); weight vectors are `M + 1` long.
    pub num_assets: usize,
    /// Current *drifted* portfolio weights `w'_t` (cash first).
    pub prev_weights: &'a [f64],
}

/// A portfolio policy: given history up to `t`, produce the target weight
/// vector for the next period.
///
/// Implementors must return a vector of length `num_assets + 1` (cash
/// first). The backtester defensively renormalizes the result onto the
/// simplex, but policies should aim to return valid weights themselves.
pub trait Policy {
    /// Decide target weights from the decision context.
    fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64>;

    /// Optional warm-up: periods at the start of the data the policy needs
    /// before its first real decision (e.g. an observation window). During
    /// warm-up the backtester holds cash.
    fn warmup_periods(&self) -> usize {
        0
    }

    /// Display name used in reports.
    fn name(&self) -> &str {
        "policy"
    }
}

/// Backtest configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BacktestConfig {
    /// Transaction-cost model applied at every rebalance.
    pub costs: CostModel,
    /// Per-period risk-free return used in the Sharpe ratio (eq. 16).
    pub risk_free_per_period: f64,
}

impl Default for BacktestConfig {
    fn default() -> Self {
        Self { costs: CostModel::default(), risk_free_per_period: 0.0 }
    }
}

/// Outcome of a backtest run.
#[derive(Debug, Clone, PartialEq)]
pub struct BacktestResult {
    /// Policy display name.
    pub policy_name: String,
    /// Portfolio value curve; `values[0] = 1.0`, one entry per traded
    /// period plus the start.
    pub values: Vec<f64>,
    /// Weight vector chosen at each decision step.
    pub weights: Vec<Vec<f64>>,
    /// Per-period log returns (the summands of eq. 1).
    pub log_returns: Vec<f64>,
    /// Total one-way turnover `Σ_t Σ_i |w_t,i − w'_t,i|`.
    pub turnover: f64,
    /// Value fraction `1 − μ_t` paid to transaction costs at each step.
    pub costs_paid: Vec<f64>,
    /// Metric bundle over the value curve.
    pub metrics: Metrics,
}

impl BacktestResult {
    /// Final accumulated portfolio value (eq. 15).
    pub fn fapv(&self) -> f64 {
        self.metrics.fapv
    }

    /// Total cost drag: the fraction of final value lost to transaction
    /// costs over the whole run, `1 − Π_t μ_t`. Zero when every rebalance
    /// was free.
    pub fn cost_drag(&self) -> f64 {
        1.0 - self.costs_paid.iter().map(|c| 1.0 - c).product::<f64>()
    }

    /// Per-period simple returns of the run.
    pub fn simple_returns(&self) -> Vec<f64> {
        self.values.windows(2).map(|w| w[1] / w[0] - 1.0).collect()
    }

    /// Tail-risk bundle (VaR/CVaR/win-rate/profit-factor) over the run.
    pub fn risk_report(&self) -> crate::risk::RiskReport {
        crate::risk::risk_report(&self.simple_returns())
    }
}

/// Drives policies over market data. See the [crate docs](crate) for an
/// end-to-end example.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Backtester {
    config: BacktestConfig,
}

impl Backtester {
    /// Creates a backtester with the given configuration.
    pub fn new(config: BacktestConfig) -> Self {
        Self { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &BacktestConfig {
        &self.config
    }

    /// Runs `policy` over every period of `market`.
    ///
    /// At each period `t` from `policy.warmup_periods()` to the
    /// second-to-last period, the policy sees candles up to `t` and chooses
    /// weights that are then exposed to the price move of period `t + 1`.
    ///
    /// # Panics
    ///
    /// Panics if the market has fewer than `warmup + 2` periods.
    pub fn run(&self, policy: &mut dyn Policy, market: &MarketData) -> BacktestResult {
        self.run_recorded(policy, market, &mut NoopRecorder)
    }

    /// [`run`](Self::run) with telemetry: when `rec` is enabled, each
    /// decision step emits a `"backtest_step"` record (period, portfolio
    /// value, one-way turnover of the step, cost fraction paid) under a
    /// `backtest/step` span, and the run closes with one `"backtest_end"`
    /// record. Recording is observe-only — the returned
    /// [`BacktestResult`] is identical with any recorder.
    ///
    /// # Panics
    ///
    /// Panics if the market has fewer than `warmup + 2` periods.
    pub fn run_recorded(
        &self,
        policy: &mut dyn Policy,
        market: &MarketData,
        rec: &mut dyn Recorder,
    ) -> BacktestResult {
        let warmup = policy.warmup_periods();
        let n_periods = market.num_periods();
        assert!(
            n_periods >= warmup + 2,
            "market has {n_periods} periods; need at least {} for warmup + one trade",
            warmup + 2
        );
        let n = market.num_assets();
        let mut portfolio = PortfolioState::new(n + 1);
        let mut values = vec![1.0];
        let mut weights_hist = Vec::new();
        let mut log_returns = Vec::new();
        let mut turnover = 0.0;
        let mut costs_paid = Vec::new();
        // Volume-dependent models read per-leg liquidity; the others get
        // an empty slice (typical liquidity) and skip the volume scan.
        let volume_sensitive = matches!(self.config.costs, CostModel::Frictional { .. });
        let mut liquidity: Vec<f64> = Vec::new();

        for t in warmup..n_periods - 1 {
            let step_watch = Stopwatch::start(rec);
            let mut target = {
                let ctx =
                    DecisionContext { market, t, num_assets: n, prev_weights: portfolio.weights() };
                policy.rebalance(&ctx)
            };
            assert_eq!(
                target.len(),
                n + 1,
                "policy {} returned {} weights, expected {}",
                policy.name(),
                target.len(),
                n + 1
            );
            simplex::renormalize(&mut target);
            let step_turnover =
                spikefolio_tensor::vector::l1_distance(&target, portfolio.weights());
            turnover += step_turnover;
            if volume_sensitive {
                liquidity = relative_liquidity(market, t);
            }
            let y = market.price_relatives_with_cash(t + 1);
            let r = portfolio.step_with_liquidity(&target, &y, &self.config.costs, &liquidity);
            values.push(portfolio.value());
            log_returns.push(r);
            costs_paid.push(1.0 - portfolio.last_shrink_factor());
            weights_hist.push(target);
            step_watch.stop(rec, labels::SPAN_BACKTEST_STEP);
            if rec.enabled() {
                rec.emit(
                    Record::new("backtest_step")
                        .field("t", t as u64)
                        .field("value", portfolio.value())
                        .field("log_return", r)
                        .field("turnover", step_turnover)
                        .field("cost", 1.0 - portfolio.last_shrink_factor()),
                );
            }
        }

        let metrics = Metrics::from_values(
            &values,
            market.periods_per_year(),
            self.config.risk_free_per_period,
        );
        let result = BacktestResult {
            policy_name: policy.name().to_owned(),
            values,
            weights: weights_hist,
            log_returns,
            turnover,
            costs_paid,
            metrics,
        };
        if rec.enabled() {
            rec.emit(
                Record::new("backtest_end")
                    .field("policy", result.policy_name.as_str())
                    .field("steps", result.log_returns.len() as u64)
                    .field("final_value", result.fapv())
                    .field("turnover", result.turnover)
                    .field("cost_drag", result.cost_drag()),
            );
        }
        result
    }
}

/// Per-leg relative liquidity at period `t`: the period's traded volume
/// over its trailing-window average (window `LIQUIDITY_WINDOW`), clamped
/// to `[0.05, 20]` so a single torn print can't zero out the book.
fn relative_liquidity(market: &MarketData, t: usize) -> Vec<f64> {
    const LIQUIDITY_WINDOW: usize = 20;
    let window = LIQUIDITY_WINDOW.min(t + 1);
    (0..market.num_assets())
        .map(|a| {
            let avg = market.trailing_volume(t, a, window) / window as f64;
            if avg <= 0.0 {
                1.0
            } else {
                (market.candle(t, a).volume / avg).clamp(0.05, 20.0)
            }
        })
        .collect()
}

/// Always-cash policy (useful as a control and for warm-up accounting).
#[derive(Debug, Clone, Copy, Default)]
pub struct HoldCash;

impl Policy for HoldCash {
    fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
        let mut w = vec![0.0; ctx.num_assets + 1];
        w[0] = 1.0;
        w
    }

    fn name(&self) -> &str {
        "HoldCash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikefolio_market::experiments::ExperimentPreset;
    use spikefolio_tensor::uniform_simplex;

    struct Uniform;
    impl Policy for Uniform {
        fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
            uniform_simplex(ctx.num_assets + 1)
        }
        fn name(&self) -> &str {
            "Uniform"
        }
    }

    struct BadWeights;
    impl Policy for BadWeights {
        fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
            vec![-3.0; ctx.num_assets + 1] // invalid on purpose
        }
    }

    fn market() -> MarketData {
        ExperimentPreset::experiment1().shrunk(30, 0).generate(21)
    }

    #[test]
    fn hold_cash_preserves_value_exactly() {
        let m = market();
        let r = Backtester::default().run(&mut HoldCash, &m);
        assert!(r.values.iter().all(|&v| (v - 1.0).abs() < 1e-12));
        assert_eq!(r.metrics.fapv, 1.0);
        assert_eq!(r.turnover, 0.0);
    }

    #[test]
    fn value_curve_length_matches_trades() {
        let m = market();
        let r = Backtester::default().run(&mut Uniform, &m);
        assert_eq!(r.values.len(), m.num_periods()); // warmup 0: periods-1 trades + start
        assert_eq!(r.log_returns.len(), r.values.len() - 1);
        assert_eq!(r.weights.len(), r.log_returns.len());
    }

    #[test]
    fn log_returns_reconstruct_value_curve() {
        let m = market();
        let r = Backtester::default().run(&mut Uniform, &m);
        let total: f64 = r.log_returns.iter().sum();
        assert!((total.exp() - r.fapv()).abs() / r.fapv() < 1e-9);
    }

    #[test]
    fn invalid_policy_weights_are_renormalized() {
        let m = market();
        let r = Backtester::default().run(&mut BadWeights, &m);
        for w in &r.weights {
            assert!(spikefolio_tensor::simplex::is_on_simplex(w, 1e-9));
        }
    }

    #[test]
    fn warmup_holds_cash() {
        struct LateUniform;
        impl Policy for LateUniform {
            fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
                assert!(ctx.t >= 10, "called during warmup at t={}", ctx.t);
                uniform_simplex(ctx.num_assets + 1)
            }
            fn warmup_periods(&self) -> usize {
                10
            }
        }
        let m = market();
        let r = Backtester::default().run(&mut LateUniform, &m);
        assert_eq!(r.values.len(), m.num_periods() - 10);
    }

    #[test]
    fn costs_reduce_fapv_for_high_turnover_policy() {
        struct Flipper(bool);
        impl Policy for Flipper {
            fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
                self.0 = !self.0;
                let mut w = vec![0.0; ctx.num_assets + 1];
                if self.0 {
                    w[1] = 1.0
                } else {
                    w[2] = 1.0
                }
                w
            }
        }
        let m = market();
        let free =
            Backtester::new(BacktestConfig { costs: CostModel::Free, risk_free_per_period: 0.0 })
                .run(&mut Flipper(false), &m);
        let paid = Backtester::new(BacktestConfig {
            costs: CostModel::Proportional { rate: 0.0025 },
            risk_free_per_period: 0.0,
        })
        .run(&mut Flipper(false), &m);
        assert!(paid.fapv() < free.fapv());
        assert!(paid.turnover > 1.0);
    }

    #[test]
    fn cost_drag_is_positive_for_rebalancers_and_zero_when_free() {
        let m = market();
        let paid = Backtester::default().run(&mut Uniform, &m);
        assert!(paid.cost_drag() > 0.0, "uniform rebalancing paid no costs");
        assert_eq!(paid.costs_paid.len(), paid.log_returns.len());
        let free =
            Backtester::new(BacktestConfig { costs: CostModel::Free, risk_free_per_period: 0.0 })
                .run(&mut Uniform, &m);
        assert_eq!(free.cost_drag(), 0.0);
        let idle = Backtester::default().run(&mut HoldCash, &m);
        assert_eq!(idle.cost_drag(), 0.0, "holding cash paid costs");
    }

    #[test]
    fn frictional_costs_exceed_bare_commission_costs() {
        let m = market();
        let comm = Backtester::new(BacktestConfig {
            costs: CostModel::Proportional { rate: 0.0025 },
            risk_free_per_period: 0.0,
        })
        .run(&mut Uniform, &m);
        let frict = Backtester::new(BacktestConfig {
            costs: CostModel::realistic_frictions(),
            risk_free_per_period: 0.0,
        })
        .run(&mut Uniform, &m);
        assert!(
            frict.cost_drag() > comm.cost_drag(),
            "frictions {} not dearer than commission {}",
            frict.cost_drag(),
            comm.cost_drag()
        );
        assert!(frict.fapv() < comm.fapv());
    }

    #[test]
    fn risk_report_bridges_from_result() {
        let m = market();
        let r = Backtester::default().run(&mut Uniform, &m);
        let returns = r.simple_returns();
        assert_eq!(returns.len(), r.log_returns.len());
        let risk = r.risk_report();
        assert!((0.0..=1.0).contains(&risk.win_rate));
        assert!(risk.cvar_95 >= risk.var_95);
    }

    #[test]
    fn recorded_run_is_identical_and_logs_every_step() {
        let m = market();
        let plain = Backtester::default().run(&mut Uniform, &m);
        let mut rec = spikefolio_telemetry::MemoryRecorder::new();
        let recorded = Backtester::default().run_recorded(&mut Uniform, &m, &mut rec);
        // Observe-only contract: the result is bitwise identical.
        assert_eq!(plain, recorded);
        // One backtest_step record per trade, plus the backtest_end.
        assert_eq!(rec.records().len(), plain.log_returns.len() + 1);
        let end = rec.records().last().unwrap();
        assert_eq!(
            end.get("steps").and_then(spikefolio_telemetry::Value::as_u64),
            Some(plain.log_returns.len() as u64)
        );
        let (_, n) = rec.span_total(labels::SPAN_BACKTEST_STEP);
        assert_eq!(n as usize, plain.log_returns.len());
    }

    #[test]
    #[should_panic(expected = "periods")]
    fn rejects_too_short_market() {
        let m = market().slice(0, 1);
        let _ = Backtester::default().run(&mut HoldCash, &m);
    }
}
