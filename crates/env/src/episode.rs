//! Gym-style episodic interface to the portfolio environment.
//!
//! [`Backtester`](crate::Backtester) drives a [`Policy`](crate::Policy)
//! callback; this module inverts control: the caller owns the loop and
//! feeds actions step by step — the natural shape for RL training code and
//! for users porting agents from gym-like ecosystems.
//!
//! ```text
//! let mut env = PortfolioEnv::new(&market, state_cfg, costs);
//! let mut state = env.reset();
//! while let Some(s) = state {
//!     let action = agent.act(&s);
//!     let outcome = env.step(&action);
//!     state = outcome.next_state;
//! }
//! ```

use crate::costs::CostModel;
use crate::portfolio::PortfolioState;
use crate::state::{StateBuilder, StateConfig};
use spikefolio_market::MarketData;
use spikefolio_tensor::simplex;

/// Result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// The step's log return `ln(μ_t · (y_t · w))` — the eq. (1) summand.
    pub reward: f64,
    /// The next observation, or `None` when the episode ended.
    pub next_state: Option<Vec<f64>>,
    /// Portfolio value after the step (`p_t / p_0`).
    pub portfolio_value: f64,
    /// Shrink factor `μ` paid at this step's rebalance.
    pub shrink_factor: f64,
}

/// Episodic portfolio environment over one market dataset.
#[derive(Debug, Clone)]
pub struct PortfolioEnv<'m> {
    market: &'m MarketData,
    state_builder: StateBuilder,
    costs: CostModel,
    portfolio: PortfolioState,
    t: usize,
    started: bool,
}

impl<'m> PortfolioEnv<'m> {
    /// Creates an environment.
    ///
    /// # Panics
    ///
    /// Panics if the market is shorter than the observation window + 2
    /// periods.
    pub fn new(market: &'m MarketData, state: StateConfig, costs: CostModel) -> Self {
        let state_builder = StateBuilder::new(state);
        assert!(
            market.num_periods() >= state_builder.min_period() + 2,
            "market has {} periods; window {} needs at least {}",
            market.num_periods(),
            state.window,
            state_builder.min_period() + 2
        );
        let n = market.num_assets();
        Self {
            market,
            state_builder,
            costs,
            portfolio: PortfolioState::new(n + 1),
            t: state_builder.min_period(),
            started: false,
        }
    }

    /// Resets to the start of the episode and returns the first
    /// observation.
    pub fn reset(&mut self) -> Vec<f64> {
        self.portfolio = PortfolioState::new(self.market.num_assets() + 1);
        self.t = self.state_builder.min_period();
        self.started = true;
        self.observation()
    }

    /// Current period index.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Current portfolio value.
    pub fn value(&self) -> f64 {
        self.portfolio.value()
    }

    /// Current drifted weights.
    pub fn weights(&self) -> &[f64] {
        self.portfolio.weights()
    }

    /// Total steps an episode contains.
    pub fn episode_length(&self) -> usize {
        self.market.num_periods() - 1 - self.state_builder.min_period()
    }

    /// Whether the episode has ended (no more price moves to apply).
    pub fn done(&self) -> bool {
        self.t + 1 >= self.market.num_periods()
    }

    fn observation(&self) -> Vec<f64> {
        self.state_builder.build(self.market, self.t, self.portfolio.weights())
    }

    /// Applies `action` (target weights, cash first), advances one period,
    /// and returns the outcome.
    ///
    /// The action is defensively renormalized onto the simplex, matching
    /// the backtester's behaviour.
    ///
    /// # Panics
    ///
    /// Panics if called before [`reset`](Self::reset), after the episode
    /// ended, or with the wrong action length.
    pub fn step(&mut self, action: &[f64]) -> StepOutcome {
        assert!(self.started, "call reset() before step()");
        assert!(!self.done(), "episode already ended at t = {}", self.t);
        assert_eq!(
            action.len(),
            self.market.num_assets() + 1,
            "action must have num_assets + 1 entries"
        );
        let mut target = action.to_vec();
        simplex::renormalize(&mut target);
        let y = self.market.price_relatives_with_cash(self.t + 1);
        let reward = self.portfolio.step(&target, &y, &self.costs);
        let shrink_factor = self.portfolio.last_shrink_factor();
        self.t += 1;
        let next_state = if self.done() { None } else { Some(self.observation()) };
        StepOutcome { reward, next_state, portfolio_value: self.portfolio.value(), shrink_factor }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtest::{BacktestConfig, Backtester, DecisionContext, Policy};
    use spikefolio_market::experiments::ExperimentPreset;
    use spikefolio_tensor::uniform_simplex;

    fn market() -> MarketData {
        ExperimentPreset::experiment1().shrunk(20, 5).generate(13)
    }

    fn cfg() -> StateConfig {
        StateConfig { window: 4, include_open: false, include_weights: true }
    }

    #[test]
    fn episode_walks_to_the_end() {
        let m = market();
        let mut env = PortfolioEnv::new(&m, cfg(), CostModel::default());
        let mut state = Some(env.reset());
        let mut steps = 0;
        let n = m.num_assets() + 1;
        while state.is_some() {
            let out = env.step(&uniform_simplex(n));
            state = out.next_state;
            steps += 1;
            assert!(out.portfolio_value > 0.0);
            assert!((0.0..=1.0).contains(&out.shrink_factor));
        }
        assert_eq!(steps, env.episode_length());
        assert!(env.done());
    }

    #[test]
    fn episode_matches_backtester_exactly() {
        struct Uniform;
        impl Policy for Uniform {
            fn rebalance(&mut self, ctx: &DecisionContext<'_>) -> Vec<f64> {
                uniform_simplex(ctx.num_assets + 1)
            }
            fn warmup_periods(&self) -> usize {
                3 // = min_period of window 4
            }
        }
        let m = market();
        let costs = CostModel::Proportional { rate: 0.0025 };
        let bt = Backtester::new(BacktestConfig { costs, risk_free_per_period: 0.0 })
            .run(&mut Uniform, &m);

        let mut env = PortfolioEnv::new(&m, cfg(), costs);
        let mut state = Some(env.reset());
        let mut rewards = Vec::new();
        while state.is_some() {
            let out = env.step(&uniform_simplex(m.num_assets() + 1));
            rewards.push(out.reward);
            state = out.next_state;
        }
        assert_eq!(rewards.len(), bt.log_returns.len());
        for (a, b) in rewards.iter().zip(&bt.log_returns) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        assert!((env.value() - bt.fapv()).abs() < 1e-12);
    }

    #[test]
    fn reset_restores_initial_state() {
        let m = market();
        let mut env = PortfolioEnv::new(&m, cfg(), CostModel::Free);
        let s0 = env.reset();
        let _ = env.step(&uniform_simplex(m.num_assets() + 1));
        let _ = env.step(&uniform_simplex(m.num_assets() + 1));
        let s1 = env.reset();
        assert_eq!(s0, s1);
        assert_eq!(env.value(), 1.0);
    }

    #[test]
    #[should_panic(expected = "reset")]
    fn step_before_reset_panics() {
        let m = market();
        let mut env = PortfolioEnv::new(&m, cfg(), CostModel::Free);
        let _ = env.step(&uniform_simplex(m.num_assets() + 1));
    }

    #[test]
    #[should_panic(expected = "already ended")]
    fn step_after_done_panics() {
        let m = market();
        let mut env = PortfolioEnv::new(&m, cfg(), CostModel::Free);
        let _ = env.reset();
        for _ in 0..env.episode_length() {
            let _ = env.step(&uniform_simplex(m.num_assets() + 1));
        }
        let _ = env.step(&uniform_simplex(m.num_assets() + 1));
    }

    #[test]
    fn bad_actions_are_renormalized() {
        let m = market();
        let mut env = PortfolioEnv::new(&m, cfg(), CostModel::Free);
        let _ = env.reset();
        let out = env.step(&vec![-5.0; m.num_assets() + 1]);
        assert!(out.portfolio_value > 0.0, "renormalization must keep the episode alive");
    }
}
