//! Polling tail reader for CSV market feeds.
//!
//! A live desk consumes a market CSV that another process *appends to*
//! while we read it, which breaks two assumptions the batch loader makes:
//! the final line may be torn mid-write (no trailing newline yet), and
//! the final period may be torn mid-cross-section (only some assets
//! written). [`CsvTailReader`] handles the byte level — it only ever
//! consumes up to the last complete line, leaving a partial tail on disk
//! to be re-read whole on the next poll instead of surfacing a
//! malformed-row error. [`CsvTail`] layers the market semantics on top:
//! it accumulates complete rows, validates the header once, and rebuilds
//! a [`MarketData`] snapshot per poll, dropping a trailing incomplete
//! period the same way (re-parsed once the rest of its rows land).
//!
//! Both are pull-based and stateless on disk: polling never writes, so a
//! reader can never corrupt the feed it is tailing.

use std::fmt;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use crate::data::MarketData;
use crate::io::{from_csv, ParseMarketError};
use crate::time::Date;

/// The header every spikefolio market CSV starts with.
pub const CSV_HEADER: &str = "period,asset,open,high,low,close,volume";

/// Byte-level tail follower yielding only complete lines.
///
/// Keeps a byte offset into the file and advances it strictly past the
/// last newline seen, so a partially written final line is left in place
/// and re-read (in full) on a later poll. A file that shrinks below the
/// offset is treated as rotated and re-read from the start; a file that
/// does not exist yet simply yields nothing.
#[derive(Debug, Clone)]
pub struct CsvTailReader {
    path: PathBuf,
    offset: u64,
    /// The previous poll left a partial (torn) line on disk.
    torn_pending: bool,
    /// The line that completed a previously torn tail on the most
    /// recent poll — the one row whose bytes were written in (at least)
    /// two installments and deserve extra scrutiny.
    torn_completed: Option<String>,
}

impl CsvTailReader {
    /// A reader positioned at the start of `path` (which need not exist
    /// yet).
    pub fn new(path: impl AsRef<Path>) -> Self {
        Self {
            path: path.as_ref().to_path_buf(),
            offset: 0,
            torn_pending: false,
            torn_completed: None,
        }
    }

    /// Bytes consumed so far (always a complete-line boundary).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Takes the line (if any) that the most recent [`poll`](Self::poll)
    /// assembled from a previously held-back torn tail. Callers that
    /// validate rows use this to tell "this row was torn across writes"
    /// from "this row arrived whole".
    pub fn take_torn_completed(&mut self) -> Option<String> {
        self.torn_completed.take()
    }

    /// Reads every complete line appended since the last poll.
    ///
    /// Blank lines are dropped and `\r\n` endings normalized. A trailing
    /// partial line (no newline yet) is *not* consumed: the offset stays
    /// before it, and the whole line is returned once its newline lands.
    ///
    /// # Errors
    ///
    /// IO failures other than the file not existing yet (which yields an
    /// empty batch).
    pub fn poll(&mut self) -> io::Result<Vec<String>> {
        self.torn_completed = None;
        let mut file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.torn_pending = false;
                return Ok(Vec::new());
            }
            Err(e) => return Err(e),
        };
        if file.metadata()?.len() < self.offset {
            // The feed was rotated or truncated under us; start over.
            // Whatever torn tail we were tracking is gone with the bytes.
            self.offset = 0;
            self.torn_pending = false;
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let Some(last_nl) = buf.iter().rposition(|&b| b == b'\n') else {
            // Nothing but a torn line so far: leave it for the next poll.
            self.torn_pending = !buf.is_empty();
            return Ok(Vec::new());
        };
        let was_torn = self.torn_pending;
        let complete = &buf[..=last_nl];
        self.offset += complete.len() as u64;
        self.torn_pending = last_nl + 1 < buf.len();
        let text = String::from_utf8_lossy(complete);
        let lines: Vec<String> = text
            .lines()
            .map(|l| l.trim_end_matches('\r').to_owned())
            .filter(|l| !l.trim().is_empty())
            .collect();
        if was_torn {
            // The first complete line is the re-read of the tail held
            // back last poll (plus whatever bytes finished it).
            self.torn_completed = lines.first().cloned();
        }
        Ok(lines)
    }
}

/// Why a [`CsvTail`] poll failed.
#[derive(Debug)]
pub enum TailError {
    /// Reading the feed file failed (beyond it merely not existing yet).
    Io(io::Error),
    /// The accumulated rows do not parse even after dropping a trailing
    /// incomplete period — the feed itself is malformed.
    Parse(ParseMarketError),
    /// The first complete line is not the expected CSV header.
    Header(String),
}

impl fmt::Display for TailError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "feed io: {e}"),
            Self::Parse(e) => write!(f, "feed parse: {e}"),
            Self::Header(line) => {
                write!(f, "feed header {line:?} != expected {CSV_HEADER:?}")
            }
        }
    }
}

impl std::error::Error for TailError {}

/// A non-fatal feed anomaly surfaced by [`CsvTail::take_warnings`].
///
/// Warnings cover conditions the tail can recover from on its own —
/// unlike [`TailError`], which stops the poll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailWarning {
    /// A line held back as torn (no trailing newline yet) finally
    /// completed on a later poll, but the re-read of the full line still
    /// failed field-level validation. The row was dropped: a torn write
    /// that never becomes a valid row is a writer fault on that one
    /// line, not a malformed feed.
    TornLineStillMalformed {
        /// The completed-but-invalid line, verbatim.
        line: String,
    },
}

impl TailWarning {
    /// Short machine-friendly tag for counters and structured records.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::TornLineStillMalformed { .. } => "torn_line_still_malformed",
        }
    }

    /// The offending feed line, verbatim.
    pub fn line(&self) -> &str {
        match self {
            Self::TornLineStillMalformed { line } => line,
        }
    }
}

impl fmt::Display for TailWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TornLineStillMalformed { line } => {
                write!(f, "torn feed line completed but is still malformed, dropped: {line:?}")
            }
        }
    }
}

/// Whether `line` has the shape of a valid market CSV data row:
/// seven comma-separated fields, an unsigned period index, a non-empty
/// asset name, and five parseable prices/volumes.
fn row_is_well_formed(line: &str) -> bool {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 7 {
        return false;
    }
    if fields[0].trim().parse::<usize>().is_err() {
        return false;
    }
    if fields[1].trim().is_empty() {
        return false;
    }
    fields[2..].iter().all(|f| f.trim().parse::<f64>().is_ok())
}

/// Market-level CSV tail: accumulates complete rows from a growing feed
/// file and rebuilds a [`MarketData`] snapshot when new data arrives.
///
/// A trailing period whose cross-section is still incomplete (some assets
/// not yet written) is held back — the snapshot ends at the last *fully
/// delivered* period and extends once the rest of the rows land.
#[derive(Debug)]
pub struct CsvTail {
    reader: CsvTailReader,
    start: Date,
    periods_per_day: u32,
    header_seen: bool,
    lines: Vec<String>,
    warnings: Vec<TailWarning>,
}

impl CsvTail {
    /// Tails `path` as a market CSV anchored at `start` with
    /// `periods_per_day` candles per day.
    pub fn new(path: impl AsRef<Path>, start: Date, periods_per_day: u32) -> Self {
        Self {
            reader: CsvTailReader::new(path),
            start,
            periods_per_day,
            header_seen: false,
            lines: Vec::new(),
            warnings: Vec::new(),
        }
    }

    /// Complete data rows accumulated so far (header excluded).
    pub fn rows_seen(&self) -> usize {
        self.lines.len()
    }

    /// Drains every [`TailWarning`] accumulated since the last drain.
    pub fn take_warnings(&mut self) -> Vec<TailWarning> {
        std::mem::take(&mut self.warnings)
    }

    /// Polls the feed. `Ok(Some(data))` carries a fresh snapshot over
    /// every complete period delivered so far; `Ok(None)` means nothing
    /// new (or not yet one complete period).
    ///
    /// # Errors
    ///
    /// [`TailError`] on IO failures, a bad header, or rows that stay
    /// malformed even after dropping the trailing incomplete period.
    pub fn poll(&mut self) -> Result<Option<MarketData>, TailError> {
        let fresh = self.reader.poll().map_err(TailError::Io)?;
        let torn = self.reader.take_torn_completed();
        let mut grew = false;
        for line in fresh {
            if !self.header_seen {
                if line.trim() != CSV_HEADER {
                    return Err(TailError::Header(line));
                }
                self.header_seen = true;
            } else if torn.as_deref() == Some(line.as_str()) && !row_is_well_formed(&line) {
                // The held-back torn tail re-read whole and *still* does
                // not parse: drop the one poisoned row with a warning so
                // later rows (and a re-emitted fix) keep the feed alive.
                self.warnings.push(TailWarning::TornLineStillMalformed { line });
            } else {
                self.lines.push(line);
                grew = true;
            }
        }
        if !grew {
            return Ok(None);
        }
        self.rebuild()
    }

    fn rebuild(&self) -> Result<Option<MarketData>, TailError> {
        match from_csv(&self.text(&self.lines), self.start, self.periods_per_day) {
            Ok(data) => Ok(Some(data)),
            Err(err) => {
                // The feed may simply end mid-period; retry without the
                // trailing period's rows before declaring it malformed.
                let head = self.complete_prefix();
                if head.len() == self.lines.len() {
                    // Nothing to drop, so the error is real.
                    return Err(TailError::Parse(err));
                }
                if head.is_empty() {
                    // Only (part of) one period so far: not servable yet.
                    return Ok(None);
                }
                match from_csv(&self.text(head), self.start, self.periods_per_day) {
                    Ok(data) => Ok(Some(data)),
                    Err(_) => Err(TailError::Parse(err)),
                }
            }
        }
    }

    /// The accumulated rows minus the trailing run sharing the last row's
    /// period index (the cross-section that may still be incomplete).
    fn complete_prefix(&self) -> &[String] {
        let Some(last_period) = self.lines.last().map(|l| row_period(l)) else {
            return &self.lines;
        };
        let cut =
            self.lines.iter().rposition(|l| row_period(l) != last_period).map_or(0, |i| i + 1);
        &self.lines[..cut]
    }

    fn text(&self, lines: &[String]) -> String {
        let mut s = String::with_capacity(
            CSV_HEADER.len() + 1 + lines.iter().map(|l| l.len() + 1).sum::<usize>(),
        );
        s.push_str(CSV_HEADER);
        s.push('\n');
        for l in lines {
            s.push_str(l);
            s.push('\n');
        }
        s
    }
}

fn row_period(line: &str) -> &str {
    line.split(',').next().unwrap_or("").trim()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use std::fs;
    use std::io::Write;

    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("spikefolio-tail-{}-{name}.csv", std::process::id()))
    }

    fn append(path: &Path, text: &str) {
        let mut f = fs::OpenOptions::new().create(true).append(true).open(path).unwrap();
        f.write_all(text.as_bytes()).unwrap();
    }

    fn start() -> Date {
        Date::new(2016, 1, 1)
    }

    #[test]
    fn reader_holds_back_partial_final_line() {
        let path = tmp("partial-line");
        let _ = fs::remove_file(&path);
        append(&path, "alpha\nbeta\ngam");
        let mut reader = CsvTailReader::new(&path);
        assert_eq!(reader.poll().unwrap(), vec!["alpha".to_owned(), "beta".to_owned()]);
        // The torn line stays on disk; nothing new yet.
        assert!(reader.poll().unwrap().is_empty());
        append(&path, "ma\n");
        assert_eq!(reader.poll().unwrap(), vec!["gamma".to_owned()]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn reader_tolerates_missing_file_and_rotation() {
        let path = tmp("rotation");
        let _ = fs::remove_file(&path);
        let mut reader = CsvTailReader::new(&path);
        assert!(reader.poll().unwrap().is_empty(), "missing file yields nothing");
        append(&path, "one\r\ntwo\n");
        assert_eq!(reader.poll().unwrap(), vec!["one".to_owned(), "two".to_owned()]);
        fs::write(&path, "fresh\n").unwrap();
        assert_eq!(reader.poll().unwrap(), vec!["fresh".to_owned()], "shrunk file re-read");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn tail_rereads_partial_row_instead_of_erroring() {
        let path = tmp("partial-row");
        let _ = fs::remove_file(&path);
        append(&path, "period,asset,open,high,low,close,volume\n");
        append(&path, "0,BTC,1,2,0.5,1.5,10\n");
        // A torn row: the writer got halfway through period 1's line.
        append(&path, "1,BTC,1.5,2.5");
        let mut tail = CsvTail::new(&path, start(), 48);
        let snap = tail.poll().unwrap().expect("period 0 is complete");
        assert_eq!(snap.num_periods(), 1);
        assert_eq!(snap.num_assets(), 1);
        assert!(tail.poll().unwrap().is_none(), "torn row is not consumed");
        append(&path, ",1,2,12\n");
        let snap = tail.poll().unwrap().expect("row completed");
        assert_eq!(snap.num_periods(), 2);
        assert_eq!(snap.close(1, 0), 2.0);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn tail_holds_back_incomplete_final_period() {
        let path = tmp("partial-period");
        let _ = fs::remove_file(&path);
        append(&path, "period,asset,open,high,low,close,volume\n");
        append(&path, "0,BTC,1,2,0.5,1.5,10\n0,ETH,1,2,0.5,1.2,10\n");
        append(&path, "1,BTC,1.5,2.5,1,2,12\n");
        let mut tail = CsvTail::new(&path, start(), 48);
        let snap = tail.poll().unwrap().expect("period 0 is complete");
        assert_eq!((snap.num_periods(), snap.num_assets()), (1, 2));
        append(&path, "1,ETH,1.2,2.2,1,1.8,12\n");
        let snap = tail.poll().unwrap().expect("period 1 completed");
        assert_eq!(snap.num_periods(), 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn tail_rejects_bad_header() {
        let path = tmp("bad-header");
        let _ = fs::remove_file(&path);
        append(&path, "not,a,market,header\n");
        let mut tail = CsvTail::new(&path, start(), 48);
        assert!(matches!(tail.poll(), Err(TailError::Header(_))));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_line_that_completes_malformed_warns_and_is_dropped() {
        let path = tmp("torn-malformed");
        let _ = fs::remove_file(&path);
        append(&path, "period,asset,open,high,low,close,volume\n");
        append(&path, "0,BTC,1,2,0.5,1.5,10\n");
        // Writer tears period 1's row mid-field...
        append(&path, "1,BTC,1.5,ga");
        let mut tail = CsvTail::new(&path, start(), 48);
        let snap = tail.poll().unwrap().expect("period 0 is complete");
        assert_eq!(snap.num_periods(), 1);
        assert!(tail.take_warnings().is_empty(), "held-back tail is not yet a warning");
        // ...and finishes it with garbage: the completed line is junk.
        append(&path, "rbage,oops\n");
        assert!(tail.poll().unwrap().is_none(), "poisoned row adds no data");
        let warnings = tail.take_warnings();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].kind(), "torn_line_still_malformed");
        assert_eq!(warnings[0].line(), "1,BTC,1.5,garbage,oops");
        assert!(tail.take_warnings().is_empty(), "drain is one-shot");
        // The writer re-emits the row correctly; the feed recovers.
        append(&path, "1,BTC,1.5,2.5,1,2,12\n");
        let snap = tail.poll().unwrap().expect("re-emitted row lands");
        assert_eq!(snap.num_periods(), 2);
        assert_eq!(snap.close(1, 0), 2.0);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_line_that_completes_valid_carries_no_warning() {
        let path = tmp("torn-valid");
        let _ = fs::remove_file(&path);
        append(&path, "period,asset,open,high,low,close,volume\n");
        append(&path, "0,BTC,1,2,0.5,1.5,10\n1,BTC,1.5,2.5");
        let mut tail = CsvTail::new(&path, start(), 48);
        tail.poll().unwrap();
        append(&path, ",1,2,12\n");
        let snap = tail.poll().unwrap().expect("row completed");
        assert_eq!(snap.num_periods(), 2);
        assert!(tail.take_warnings().is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn tail_surfaces_genuinely_malformed_rows() {
        let path = tmp("malformed");
        let _ = fs::remove_file(&path);
        append(&path, "period,asset,open,high,low,close,volume\n");
        append(&path, "0,BTC,1,2,0.5,1.5,10\n");
        append(&path, "0,BTC,oops\n");
        append(&path, "1,BTC,1,2,0.5,1.5,10\n");
        let mut tail = CsvTail::new(&path, start(), 48);
        assert!(matches!(tail.poll(), Err(TailError::Parse(_))));
        let _ = fs::remove_file(&path);
    }
}
