//! In-memory OHLCV dataset and the price-relative views the algorithms use.

use crate::candle::Candle;
use crate::time::Date;

/// A complete market dataset: `num_periods × num_assets` candles on a
/// uniform time grid.
///
/// Storage is row-major by period, so reading the cross-section of all
/// assets at one time step is contiguous — the access pattern of every
/// strategy in the workspace.
///
/// # Example
///
/// ```
/// use spikefolio_market::{Candle, Date, MarketData};
///
/// let candles = vec![Candle::flat(10.0), Candle::flat(20.0), Candle::new(10.0, 12.0, 10.0, 12.0, 1.0), Candle::flat(20.0)];
/// let data = MarketData::new(vec!["A".into(), "B".into()], Date::new(2020, 1, 1), 1, 2, candles);
/// let y = data.price_relatives(1); // close_1 / close_0 per asset
/// assert!((y[0] - 1.2).abs() < 1e-12);
/// assert!((y[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MarketData {
    asset_names: Vec<String>,
    start: Date,
    periods_per_day: u32,
    num_assets: usize,
    /// Row-major `[period][asset]`.
    candles: Vec<Candle>,
}

impl MarketData {
    /// Assembles a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `candles.len()` is not a multiple of `num_assets`, or if
    /// `asset_names.len() != num_assets`, or `num_assets == 0`.
    pub fn new(
        asset_names: Vec<String>,
        start: Date,
        periods_per_day: u32,
        num_assets: usize,
        candles: Vec<Candle>,
    ) -> Self {
        assert!(num_assets > 0, "num_assets must be positive");
        assert_eq!(asset_names.len(), num_assets, "asset_names length mismatch");
        assert_eq!(
            candles.len() % num_assets,
            0,
            "candles length {} not a multiple of num_assets {num_assets}",
            candles.len()
        );
        assert!(periods_per_day > 0, "periods_per_day must be positive");
        Self { asset_names, start, periods_per_day, num_assets, candles }
    }

    /// Number of assets.
    pub fn num_assets(&self) -> usize {
        self.num_assets
    }

    /// Number of time periods.
    pub fn num_periods(&self) -> usize {
        self.candles.len() / self.num_assets
    }

    /// Asset display names.
    pub fn asset_names(&self) -> &[String] {
        &self.asset_names
    }

    /// First calendar day covered.
    pub fn start_date(&self) -> Date {
        self.start
    }

    /// Candles per calendar day.
    pub fn periods_per_day(&self) -> u32 {
        self.periods_per_day
    }

    /// Periods per year implied by the grid (crypto trades every day).
    pub fn periods_per_year(&self) -> f64 {
        365.0 * self.periods_per_day as f64
    }

    /// Calendar date containing period `t`.
    pub fn period_date(&self, t: usize) -> Date {
        self.start + (t / self.periods_per_day as usize) as i64
    }

    /// First period index on or after `date` (saturating at the end).
    pub fn period_at_date(&self, date: Date) -> usize {
        let days = self.start.days_until(date).max(0) as usize;
        (days * self.periods_per_day as usize).min(self.num_periods())
    }

    /// The candle for asset `a` at period `t`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn candle(&self, t: usize, a: usize) -> Candle {
        assert!(t < self.num_periods(), "period {t} out of bounds");
        assert!(a < self.num_assets, "asset {a} out of bounds");
        self.candles[t * self.num_assets + a]
    }

    /// Replaces the candle at `(t, a)` without validating OHLC invariants.
    ///
    /// This is the seam used by fault injection (to plant deliberately
    /// broken candles for resilience tests) and by the sanitizer (to write
    /// repaired ones). Ordinary construction goes through [`Candle::new`],
    /// which enforces the invariants.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set_candle_unchecked(&mut self, t: usize, a: usize, candle: Candle) {
        assert!(t < self.num_periods(), "period {t} out of bounds");
        assert!(a < self.num_assets, "asset {a} out of bounds");
        self.candles[t * self.num_assets + a] = candle;
    }

    /// Cross-section of all assets' candles at period `t`.
    pub fn cross_section(&self, t: usize) -> &[Candle] {
        assert!(t < self.num_periods(), "period {t} out of bounds");
        &self.candles[t * self.num_assets..(t + 1) * self.num_assets]
    }

    /// Closing price of asset `a` at period `t`.
    pub fn close(&self, t: usize, a: usize) -> f64 {
        self.candle(t, a).close
    }

    /// Price-relative vector `y_t = close_t / close_{t-1}` for each asset
    /// (no cash entry). For `t == 0` the open of period 0 is used as the
    /// previous close.
    pub fn price_relatives(&self, t: usize) -> Vec<f64> {
        (0..self.num_assets)
            .map(|a| {
                let c = self.candle(t, a);
                let prev = if t == 0 { c.open } else { self.close(t - 1, a) };
                c.close / prev
            })
            .collect()
    }

    /// Price-relative vector with a leading cash entry fixed at 1.0, i.e.
    /// the `y_t` of eq. (1) in the paper for an `M`-asset, `N = M + 1`
    /// portfolio.
    pub fn price_relatives_with_cash(&self, t: usize) -> Vec<f64> {
        let mut y = Vec::with_capacity(self.num_assets + 1);
        y.push(1.0);
        y.extend(self.price_relatives(t));
        y
    }

    /// Sum of traded volume for asset `a` over the trailing `periods`
    /// periods ending at `t` (inclusive). Used to select "highest volume in
    /// the last 30 days" universes like the paper's.
    pub fn trailing_volume(&self, t: usize, a: usize, periods: usize) -> f64 {
        let from = t.saturating_sub(periods.saturating_sub(1));
        (from..=t).map(|s| self.candle(s, a).volume).sum()
    }

    /// Returns a copy restricted to periods `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if `from > to` or `to > num_periods()`.
    pub fn slice(&self, from: usize, to: usize) -> MarketData {
        assert!(from <= to && to <= self.num_periods(), "bad slice [{from}, {to})");
        let day_offset = (from / self.periods_per_day as usize) as i64;
        MarketData {
            asset_names: self.asset_names.clone(),
            start: self.start + day_offset,
            periods_per_day: self.periods_per_day,
            num_assets: self.num_assets,
            candles: self.candles[from * self.num_assets..to * self.num_assets].to_vec(),
        }
    }

    /// Splits into `(before, from)` at the first period on/after `date` —
    /// the Table 1 train/backtest split.
    pub fn split_at_date(&self, date: Date) -> (MarketData, MarketData) {
        let t = self.period_at_date(date);
        (self.slice(0, t), self.slice(t, self.num_periods()))
    }

    /// Log return of asset `a` over `[t-1, t]` (uses open at `t == 0`).
    pub fn log_return(&self, t: usize, a: usize) -> f64 {
        self.price_relatives(t)[a].ln()
    }

    /// Total gross return (final close / initial open) per asset.
    pub fn total_relatives(&self) -> Vec<f64> {
        let last = self.num_periods() - 1;
        (0..self.num_assets).map(|a| self.close(last, a) / self.candle(0, a).open).collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn toy() -> MarketData {
        // 2 assets, 3 periods; asset 0 rises 10% each period, asset 1 flat.
        let mut candles = Vec::new();
        let mut p = 100.0;
        for _ in 0..3 {
            let next = p * 1.1;
            candles.push(Candle::new(p, next, p, next, 1.0));
            candles.push(Candle::flat(50.0));
            p = next;
        }
        MarketData::new(vec!["UP".into(), "FLAT".into()], Date::new(2020, 1, 1), 2, 2, candles)
    }

    #[test]
    fn shape_accessors() {
        let d = toy();
        assert_eq!(d.num_assets(), 2);
        assert_eq!(d.num_periods(), 3);
        assert_eq!(d.asset_names(), &["UP".to_string(), "FLAT".to_string()]);
        assert_eq!(d.periods_per_year(), 730.0);
    }

    #[test]
    fn price_relatives_match_construction() {
        let d = toy();
        let y1 = d.price_relatives(1);
        assert!((y1[0] - 1.1).abs() < 1e-12);
        assert!((y1[1] - 1.0).abs() < 1e-12);
        let y0 = d.price_relatives(0);
        assert!((y0[0] - 1.1).abs() < 1e-12, "t=0 uses open as previous close");
    }

    #[test]
    fn cash_entry_is_prepended() {
        let d = toy();
        let y = d.price_relatives_with_cash(1);
        assert_eq!(y.len(), 3);
        assert_eq!(y[0], 1.0);
    }

    #[test]
    fn period_dates_follow_grid() {
        let d = toy(); // 2 periods per day
        assert_eq!(d.period_date(0), Date::new(2020, 1, 1));
        assert_eq!(d.period_date(1), Date::new(2020, 1, 1));
        assert_eq!(d.period_date(2), Date::new(2020, 1, 2));
        assert_eq!(d.period_at_date(Date::new(2020, 1, 2)), 2);
        // Dates beyond the data saturate.
        assert_eq!(d.period_at_date(Date::new(2021, 1, 1)), 3);
    }

    #[test]
    fn slice_and_split() {
        let d = toy();
        let s = d.slice(1, 3);
        assert_eq!(s.num_periods(), 2);
        assert_eq!(s.candle(0, 0), d.candle(1, 0));
        let (a, b) = d.split_at_date(Date::new(2020, 1, 2));
        assert_eq!(a.num_periods(), 2);
        assert_eq!(b.num_periods(), 1);
        assert_eq!(b.start_date(), Date::new(2020, 1, 2));
    }

    #[test]
    fn total_relatives_compound() {
        let d = toy();
        let tot = d.total_relatives();
        assert!((tot[0] - 1.1f64.powi(3)).abs() < 1e-9);
        assert!((tot[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trailing_volume_window() {
        let d = toy();
        assert_eq!(d.trailing_volume(2, 0, 2), 2.0);
        assert_eq!(d.trailing_volume(2, 0, 10), 3.0);
        assert_eq!(d.trailing_volume(0, 1, 5), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn candle_bounds_checked() {
        let d = toy();
        let _ = d.candle(3, 0);
    }

    #[test]
    fn log_return_consistency() {
        let d = toy();
        assert!((d.log_return(1, 0) - 1.1f64.ln()).abs() < 1e-12);
    }
}
