//! Market regimes and their stochastic parameters.
//!
//! Crypto markets over 2016–2021 alternated between sharply distinct
//! regimes. We model each as a parameter set for the return process
//! (annualized drift/volatility of the common market factor, jump intensity
//! and size). The [era calendar](crate::experiments) maps calendar dates
//! onto regimes so that the three Table 1 experiments see qualitatively
//! different training and backtest climates.

use serde::{Deserialize, Serialize};

/// Qualitative market regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regime {
    /// Slow, steady appreciation (early 2016, 2019 recovery).
    MildBull,
    /// Mania-style exponential run-up (2017, early 2021).
    StrongBull,
    /// Prolonged drawdown (2018).
    Bear,
    /// Low-drift chop (2019H2, early 2020).
    Sideways,
    /// Acute liquidity crash (March 2020, May 2021).
    Crash,
}

impl Regime {
    /// All regimes, for exhaustive sweeps in tests and benches.
    pub const ALL: [Regime; 5] =
        [Regime::MildBull, Regime::StrongBull, Regime::Bear, Regime::Sideways, Regime::Crash];

    /// Default parameter set for the regime.
    ///
    /// Drifts/volatilities are annualized log-return terms for the *common
    /// market factor*; individual assets lever them by their beta and add
    /// idiosyncratic noise. Magnitudes are chosen to be crypto-like: ~80–120%
    /// annualized vol, manias that multiply prices several-fold in months,
    /// crashes that halve them in weeks.
    pub fn params(self) -> RegimeParams {
        match self {
            Regime::MildBull => RegimeParams {
                regime: self,
                annual_drift: 0.9,
                annual_vol: 0.75,
                jump_intensity_per_year: 4.0,
                jump_mean: -0.03,
                jump_vol: 0.05,
            },
            Regime::StrongBull => RegimeParams {
                regime: self,
                annual_drift: 2.8,
                annual_vol: 1.05,
                jump_intensity_per_year: 8.0,
                jump_mean: 0.01,
                jump_vol: 0.08,
            },
            Regime::Bear => RegimeParams {
                regime: self,
                annual_drift: -1.1,
                annual_vol: 0.95,
                jump_intensity_per_year: 10.0,
                jump_mean: -0.05,
                jump_vol: 0.07,
            },
            Regime::Sideways => RegimeParams {
                regime: self,
                annual_drift: 0.05,
                annual_vol: 0.6,
                jump_intensity_per_year: 5.0,
                jump_mean: -0.01,
                jump_vol: 0.04,
            },
            Regime::Crash => RegimeParams {
                regime: self,
                annual_drift: -8.0,
                annual_vol: 2.2,
                jump_intensity_per_year: 60.0,
                jump_mean: -0.08,
                jump_vol: 0.10,
            },
        }
    }
}

impl std::fmt::Display for Regime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Regime::MildBull => "mild-bull",
            Regime::StrongBull => "strong-bull",
            Regime::Bear => "bear",
            Regime::Sideways => "sideways",
            Regime::Crash => "crash",
        };
        f.write_str(s)
    }
}

/// Stochastic parameters of one regime (all rates annualized).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegimeParams {
    /// The regime these parameters describe.
    pub regime: Regime,
    /// Annualized drift of the common factor's log return.
    pub annual_drift: f64,
    /// Annualized volatility of the common factor's log return.
    pub annual_vol: f64,
    /// Expected number of jump events per year.
    pub jump_intensity_per_year: f64,
    /// Mean log-jump size.
    pub jump_mean: f64,
    /// Standard deviation of the log-jump size.
    pub jump_vol: f64,
}

impl RegimeParams {
    /// Per-period drift for a period of `dt_years` years.
    pub fn drift(&self, dt_years: f64) -> f64 {
        self.annual_drift * dt_years
    }

    /// Per-period volatility for a period of `dt_years` years.
    pub fn vol(&self, dt_years: f64) -> f64 {
        self.annual_vol * dt_years.sqrt()
    }

    /// Expected jumps in a period of `dt_years` years.
    pub fn jump_rate(&self, dt_years: f64) -> f64 {
        self.jump_intensity_per_year * dt_years
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn bull_regimes_have_positive_drift() {
        assert!(Regime::MildBull.params().annual_drift > 0.0);
        assert!(Regime::StrongBull.params().annual_drift > Regime::MildBull.params().annual_drift);
    }

    #[test]
    fn bear_and_crash_have_negative_drift() {
        assert!(Regime::Bear.params().annual_drift < 0.0);
        assert!(Regime::Crash.params().annual_drift < Regime::Bear.params().annual_drift);
    }

    #[test]
    fn crash_is_most_volatile() {
        let crash_vol = Regime::Crash.params().annual_vol;
        for r in Regime::ALL {
            assert!(r.params().annual_vol <= crash_vol);
        }
    }

    #[test]
    fn per_period_scaling_follows_sqrt_time() {
        let p = Regime::Sideways.params();
        let dt = 1.0 / 365.0;
        assert!((p.vol(4.0 * dt) - 2.0 * p.vol(dt)).abs() < 1e-12);
        assert!((p.drift(2.0 * dt) - 2.0 * p.drift(dt)).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty_for_all() {
        for r in Regime::ALL {
            assert!(!r.to_string().is_empty());
        }
    }
}
