//! Statistical diagnostics of market data.
//!
//! DESIGN.md argues the synthetic generator preserves the *statistical
//! character* of the paper's crypto data — trending regimes, fat tails,
//! strong cross-correlation, volatility clustering. This module measures
//! those properties, and the test suite asserts the generator actually
//! exhibits them (the validation of the data substitution).

use crate::data::MarketData;
use spikefolio_tensor::vector::{correlation, mean, std_dev};

/// Log returns of one asset over the whole dataset.
pub fn log_returns(data: &MarketData, asset: usize) -> Vec<f64> {
    (1..data.num_periods()).map(|t| data.log_return(t, asset)).collect()
}

/// Excess kurtosis of a sample (0 for a Gaussian; positive = fat tails).
/// Returns 0.0 for samples shorter than 4 or with zero variance.
pub fn excess_kurtosis(sample: &[f64]) -> f64 {
    if sample.len() < 4 {
        return 0.0;
    }
    let m = mean(sample);
    let n = sample.len() as f64;
    let m2 = sample.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n;
    if m2 <= 0.0 {
        return 0.0;
    }
    let m4 = sample.iter().map(|x| (x - m).powi(4)).sum::<f64>() / n;
    m4 / (m2 * m2) - 3.0
}

/// Annualized realized volatility of an asset's log returns.
pub fn realized_volatility(data: &MarketData, asset: usize) -> f64 {
    std_dev(&log_returns(data, asset)) * data.periods_per_year().sqrt()
}

/// Mean pairwise correlation of log returns across all asset pairs.
pub fn mean_cross_correlation(data: &MarketData) -> f64 {
    let n = data.num_assets();
    if n < 2 {
        return 1.0;
    }
    let returns: Vec<Vec<f64>> = (0..n).map(|a| log_returns(data, a)).collect();
    let mut sum = 0.0;
    let mut count = 0;
    for i in 0..n {
        for j in i + 1..n {
            sum += correlation(&returns[i], &returns[j]);
            count += 1;
        }
    }
    sum / count as f64
}

/// Lag-`k` autocorrelation of *absolute* log returns — the standard
/// volatility-clustering diagnostic (positive for clustered volatility).
pub fn abs_return_autocorrelation(data: &MarketData, asset: usize, lag: usize) -> f64 {
    let abs: Vec<f64> = log_returns(data, asset).iter().map(|r| r.abs()).collect();
    if abs.len() <= lag + 2 {
        return 0.0;
    }
    correlation(&abs[..abs.len() - lag], &abs[lag..])
}

/// Summary bundle for quick inspection.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketStats {
    /// Per-asset annualized volatility.
    pub annual_volatility: Vec<f64>,
    /// Per-asset excess kurtosis of log returns.
    pub excess_kurtosis: Vec<f64>,
    /// Mean pairwise return correlation.
    pub mean_correlation: f64,
    /// Mean per-asset lag-1 |return| autocorrelation.
    pub mean_vol_clustering: f64,
}

/// Computes the summary bundle.
pub fn market_stats(data: &MarketData) -> MarketStats {
    let n = data.num_assets();
    let annual_volatility = (0..n).map(|a| realized_volatility(data, a)).collect();
    let excess_kurtosis_v = (0..n).map(|a| excess_kurtosis(&log_returns(data, a))).collect();
    let clustering = (0..n).map(|a| abs_return_autocorrelation(data, a, 1)).sum::<f64>() / n as f64;
    MarketStats {
        annual_volatility,
        excess_kurtosis: excess_kurtosis_v,
        mean_correlation: mean_cross_correlation(data),
        mean_vol_clustering: clustering,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::experiments::ExperimentPreset;

    fn market() -> MarketData {
        // A long window spanning several regimes.
        ExperimentPreset::experiment2().shrunk(400, 100).generate(77)
    }

    #[test]
    fn kurtosis_of_gaussianish_vs_fat_sample() {
        // Uniform sample: negative excess kurtosis (−1.2 exactly in the limit).
        let uniform: Vec<f64> = (0..10_000).map(|i| (i % 100) as f64 / 100.0).collect();
        assert!(excess_kurtosis(&uniform) < -0.5);
        // Two-point heavy-tail mixture: strongly positive.
        let mut fat = vec![0.0; 1000];
        fat[0] = 50.0;
        fat[1] = -50.0;
        assert!(excess_kurtosis(&fat) > 10.0);
        // Degenerate cases.
        assert_eq!(excess_kurtosis(&[1.0, 1.0, 1.0, 1.0]), 0.0);
        assert_eq!(excess_kurtosis(&[1.0]), 0.0);
    }

    #[test]
    fn generated_returns_are_fat_tailed() {
        let d = market();
        let stats = market_stats(&d);
        let fat = stats.excess_kurtosis.iter().filter(|&&k| k > 0.5).count();
        assert!(
            fat >= d.num_assets() / 2,
            "only {fat}/{} assets show fat tails: {:?}",
            d.num_assets(),
            stats.excess_kurtosis
        );
    }

    #[test]
    fn generated_assets_are_positively_correlated() {
        // The common market factor must induce clear positive comovement —
        // the defining feature of the crypto cross-section.
        let stats = market_stats(&market());
        assert!(
            stats.mean_correlation > 0.2,
            "mean pairwise correlation only {}",
            stats.mean_correlation
        );
        assert!(stats.mean_correlation < 0.98, "assets must not be identical");
    }

    #[test]
    fn generated_volatility_is_crypto_scale() {
        // Crypto-like: tens of percent to a few hundred percent annualized.
        let stats = market_stats(&market());
        for (i, &v) in stats.annual_volatility.iter().enumerate() {
            assert!((0.2..5.0).contains(&v), "asset {i} annual vol {v}");
        }
    }

    #[test]
    fn regime_switching_induces_volatility_clustering() {
        let stats = market_stats(&market());
        assert!(
            stats.mean_vol_clustering > 0.0,
            "no volatility clustering: {}",
            stats.mean_vol_clustering
        );
    }

    #[test]
    fn autocorrelation_degenerate_cases() {
        let d = ExperimentPreset::experiment1().shrunk(3, 0).generate(1);
        // Short series → 0 by definition.
        assert_eq!(abs_return_autocorrelation(&d, 0, 50), 0.0);
    }
}
