//! The three Table 1 experiment presets and the 2016–2021 crypto era
//! calendar they draw from.

use crate::data::MarketData;
use crate::generator::{AssetSpec, FactorScale, GarchParams, GeneratorConfig, MarketGenerator};
use crate::regime::Regime;
use crate::time::Date;

/// Era calendar mimicking the 2016–2021 cryptocurrency cycles.
///
/// | era | regime |
/// |---|---|
/// | 2016-08 → 2017-03 | mild bull (early accumulation) |
/// | 2017-03 → 2018-01 | strong bull (the 2017 mania) |
/// | 2018-01 → 2019-01 | bear (the 2018 unwind) |
/// | 2019-01 → 2019-08 | mild bull (2019 recovery) |
/// | 2019-08 → 2020-03 | sideways |
/// | 2020-03 → 2020-04 | crash (COVID liquidity event) |
/// | 2020-04 → 2021-01 | mild bull (recovery + early run) |
/// | 2021-01 → 2021-05 | strong bull (2021 mania) |
/// | 2021-05 → 2021-06 | crash (May 2021 correction) |
/// | 2021-06 → …      | sideways |
pub fn crypto_era_calendar() -> Vec<(Date, Regime)> {
    vec![
        (Date::new(2016, 8, 1), Regime::MildBull),
        (Date::new(2017, 3, 1), Regime::StrongBull),
        (Date::new(2018, 1, 7), Regime::Bear),
        (Date::new(2019, 1, 1), Regime::MildBull),
        (Date::new(2019, 8, 1), Regime::Sideways),
        (Date::new(2020, 3, 8), Regime::Crash),
        (Date::new(2020, 4, 1), Regime::MildBull),
        (Date::new(2021, 1, 1), Regime::StrongBull),
        (Date::new(2021, 5, 10), Regime::Crash),
        (Date::new(2021, 6, 1), Regime::Sideways),
    ]
}

/// One row of the paper's Table 1: a named experiment with its total time
/// range and backtest split, plus generation parameters.
///
/// # Example
///
/// ```
/// use spikefolio_market::experiments::ExperimentPreset;
///
/// let e2 = ExperimentPreset::experiment2();
/// assert_eq!(e2.name, "Experiment 2");
/// assert_eq!(e2.train_start.to_string(), "2017/08/01");
/// assert_eq!(e2.backtest_start.to_string(), "2020/04/14");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentPreset {
    /// Display name ("Experiment 1" …).
    pub name: &'static str,
    /// First day of the training range.
    pub train_start: Date,
    /// First day of the backtest range (end of training).
    pub backtest_start: Date,
    /// One-past-last day of the backtest range.
    pub end: Date,
    /// Candles per day of the synthetic grid.
    pub periods_per_day: u32,
    /// Intra-candle sub-steps.
    pub substeps: u32,
}

impl ExperimentPreset {
    /// Table 1, experiment 1: train 2016/08/01–2019/04/14, backtest
    /// 2019/04/14–2019/08/01.
    pub fn experiment1() -> Self {
        Self {
            name: "Experiment 1",
            train_start: Date::new(2016, 8, 1),
            backtest_start: Date::new(2019, 4, 14),
            end: Date::new(2019, 8, 1),
            periods_per_day: 4,
            substeps: 6,
        }
    }

    /// Table 1, experiment 2: train 2017/08/01–2020/04/14, backtest
    /// 2020/04/14–2020/08/01.
    pub fn experiment2() -> Self {
        Self {
            name: "Experiment 2",
            train_start: Date::new(2017, 8, 1),
            backtest_start: Date::new(2020, 4, 14),
            end: Date::new(2020, 8, 1),
            periods_per_day: 4,
            substeps: 6,
        }
    }

    /// Table 1, experiment 3: train 2018/08/01–2021/04/14, backtest
    /// 2021/04/14–2021/08/01.
    pub fn experiment3() -> Self {
        Self {
            name: "Experiment 3",
            train_start: Date::new(2018, 8, 1),
            backtest_start: Date::new(2021, 4, 14),
            end: Date::new(2021, 8, 1),
            periods_per_day: 4,
            substeps: 6,
        }
    }

    /// All three presets in order.
    pub fn all() -> [ExperimentPreset; 3] {
        [Self::experiment1(), Self::experiment2(), Self::experiment3()]
    }

    /// A shrunken variant for fast tests: same regime structure, but only
    /// `train_days + test_days` days at 2 candles/day starting at
    /// `train_start`.
    pub fn shrunk(mut self, train_days: i64, test_days: i64) -> Self {
        self.backtest_start = self.train_start + train_days;
        self.end = self.backtest_start + test_days;
        self.periods_per_day = 2;
        self.substeps = 4;
        self
    }

    /// The generator configuration for this preset (11 assets, crypto era
    /// calendar).
    pub fn generator_config(&self) -> GeneratorConfig {
        GeneratorConfig {
            assets: AssetSpec::top11(),
            start: self.train_start,
            end: self.end,
            periods_per_day: self.periods_per_day,
            substeps: self.substeps,
            calendar: crypto_era_calendar(),
            garch: Some(GarchParams::typical()),
            factor_scale: FactorScale::unit(),
            blocks: Vec::new(),
        }
    }

    /// Generates the full market (train + backtest) for this preset.
    ///
    /// # Panics
    ///
    /// Panics only if the preset was manually mutated into an invalid
    /// configuration; the built-in presets always validate.
    pub fn generate(&self, seed: u64) -> MarketData {
        // Built-in presets always pass validation (covered by tests); the
        // documented panic only fires on manual mutation.
        #[allow(clippy::expect_used)]
        MarketGenerator::new(self.generator_config())
            .expect("preset configs are valid")
            .generate(seed)
    }

    /// Generates and splits into `(train, backtest)` at
    /// [`backtest_start`](Self::backtest_start).
    pub fn generate_split(&self, seed: u64) -> (MarketData, MarketData) {
        self.generate(seed).split_at_date(self.backtest_start)
    }

    /// Fraction of periods assigned to training (the paper uses 80%).
    pub fn train_fraction(&self) -> f64 {
        let total = self.train_start.days_until(self.end) as f64;
        self.train_start.days_until(self.backtest_start) as f64 / total
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn presets_match_table1_dates() {
        let e1 = ExperimentPreset::experiment1();
        assert_eq!(e1.train_start.to_string(), "2016/08/01");
        assert_eq!(e1.backtest_start.to_string(), "2019/04/14");
        assert_eq!(e1.end.to_string(), "2019/08/01");
        let e3 = ExperimentPreset::experiment3();
        assert_eq!(e3.train_start.to_string(), "2018/08/01");
        assert_eq!(e3.end.to_string(), "2021/08/01");
    }

    #[test]
    fn split_is_roughly_80_20() {
        for preset in ExperimentPreset::all() {
            let f = preset.train_fraction();
            assert!((0.85..0.93).contains(&f) || (0.78..0.93).contains(&f), "fraction {f}");
        }
    }

    #[test]
    fn generated_split_respects_dates() {
        let preset = ExperimentPreset::experiment1().shrunk(40, 10);
        let (train, test) = preset.generate_split(5);
        assert_eq!(train.num_periods(), 40 * 2);
        assert_eq!(test.num_periods(), 10 * 2);
        assert_eq!(test.start_date(), preset.backtest_start);
    }

    #[test]
    fn era_calendar_is_sorted() {
        let cal = crypto_era_calendar();
        assert!(cal.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn experiment2_backtest_is_post_covid_recovery() {
        let cfg = ExperimentPreset::experiment2().generator_config();
        assert_eq!(cfg.regime_at(Date::new(2020, 3, 15)), Regime::Crash);
        assert_eq!(cfg.regime_at(Date::new(2020, 5, 1)), Regime::MildBull);
    }

    #[test]
    fn experiment3_backtest_contains_may_crash() {
        let cfg = ExperimentPreset::experiment3().generator_config();
        assert_eq!(cfg.regime_at(Date::new(2021, 5, 15)), Regime::Crash);
        assert_eq!(cfg.regime_at(Date::new(2021, 7, 1)), Regime::Sideways);
    }

    #[test]
    fn full_generation_smoke() {
        // Shrunk but spanning a regime change.
        let preset = ExperimentPreset::experiment1().shrunk(200, 40);
        let data = preset.generate(1);
        assert_eq!(data.num_assets(), 11);
        assert_eq!(data.num_periods(), 240 * 2);
        // Prices stay positive and finite throughout.
        for t in 0..data.num_periods() {
            for a in 0..11 {
                let c = data.candle(t, a);
                assert!(c.close > 0.0 && c.close.is_finite());
            }
        }
    }
}
