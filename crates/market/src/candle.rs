//! OHLCV price candles.

use serde::{Deserialize, Serialize};

/// One OHLCV candle for a single asset over a single trading period.
///
/// Invariants (enforced by [`Candle::new`]):
/// `low ≤ min(open, close)`, `high ≥ max(open, close)`, all prices positive,
/// `volume ≥ 0`.
///
/// # Example
///
/// ```
/// use spikefolio_market::Candle;
///
/// let c = Candle::new(100.0, 110.0, 95.0, 105.0, 1_000.0);
/// assert!(c.is_bullish());
/// assert!((c.range() - 15.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candle {
    /// Opening price of the period.
    pub open: f64,
    /// Highest traded price of the period.
    pub high: f64,
    /// Lowest traded price of the period.
    pub low: f64,
    /// Closing price of the period.
    pub close: f64,
    /// Traded volume (base-currency units).
    pub volume: f64,
}

impl Candle {
    /// Creates a candle, validating the OHLC invariants.
    ///
    /// # Panics
    ///
    /// Panics if any price is non-positive or non-finite, if
    /// `low > min(open, close)`, if `high < max(open, close)`, or if
    /// `volume` is negative.
    pub fn new(open: f64, high: f64, low: f64, close: f64, volume: f64) -> Self {
        assert!(
            open > 0.0 && high > 0.0 && low > 0.0 && close > 0.0,
            "candle prices must be positive: O={open} H={high} L={low} C={close}"
        );
        assert!(
            open.is_finite() && high.is_finite() && low.is_finite() && close.is_finite(),
            "candle prices must be finite"
        );
        assert!(low <= open.min(close), "low {low} above body (O={open}, C={close})");
        assert!(high >= open.max(close), "high {high} below body (O={open}, C={close})");
        assert!(volume >= 0.0 && volume.is_finite(), "volume must be non-negative");
        Self { open, high, low, close, volume }
    }

    /// A flat candle at price `p` with zero volume (used for cash-like
    /// assets and padding).
    pub fn flat(p: f64) -> Self {
        Self::new(p, p, p, p, 0.0)
    }

    /// Close ≥ open.
    pub fn is_bullish(&self) -> bool {
        self.close >= self.open
    }

    /// High minus low.
    pub fn range(&self) -> f64 {
        self.high - self.low
    }

    /// Simple return of the period: `close / open - 1`.
    pub fn period_return(&self) -> f64 {
        self.close / self.open - 1.0
    }

    /// Typical price `(high + low + close) / 3`.
    pub fn typical_price(&self) -> f64 {
        (self.high + self.low + self.close) / 3.0
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn valid_candle_constructs() {
        let c = Candle::new(10.0, 12.0, 9.0, 11.0, 5.0);
        assert_eq!(c.range(), 3.0);
        assert!(c.is_bullish());
        assert!((c.period_return() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn flat_candle_is_degenerate_but_valid() {
        let c = Candle::flat(42.0);
        assert_eq!(c.range(), 0.0);
        assert_eq!(c.period_return(), 0.0);
    }

    #[test]
    #[should_panic(expected = "low")]
    fn rejects_low_above_body() {
        let _ = Candle::new(10.0, 12.0, 10.5, 11.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "high")]
    fn rejects_high_below_body() {
        let _ = Candle::new(10.0, 10.5, 9.0, 11.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_price() {
        let _ = Candle::new(0.0, 1.0, 0.5, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "volume")]
    fn rejects_negative_volume() {
        let _ = Candle::new(10.0, 12.0, 9.0, 11.0, -1.0);
    }

    #[test]
    fn typical_price_is_between_low_and_high() {
        let c = Candle::new(10.0, 14.0, 8.0, 9.0, 1.0);
        assert!(c.typical_price() >= c.low && c.typical_price() <= c.high);
    }

    proptest! {
        #[test]
        fn constructed_candles_keep_invariants(
            open in 0.01f64..1e6,
            up in 0.0f64..2.0,
            down in 0.0f64..0.99,
            close_frac in 0.0f64..1.0,
            volume in 0.0f64..1e9,
        ) {
            let high = open * (1.0 + up);
            let low = open * (1.0 - down);
            let close = low + close_frac * (high - low);
            let c = Candle::new(open, high, low.max(1e-9), close.max(1e-9), volume);
            prop_assert!(c.low <= c.open.min(c.close) + 1e-12);
            prop_assert!(c.high >= c.open.max(c.close) - 1e-12);
            prop_assert!(c.typical_price() > 0.0);
        }
    }
}
