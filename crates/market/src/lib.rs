//! Synthetic cryptocurrency market substrate for `spikefolio`.
//!
//! The paper evaluates on Poloniex OHLC data for the 11 highest-volume
//! cryptocurrencies over 2016–2021 (Table 1). That dataset is proprietary to
//! the exchange and not available offline, so this crate generates a
//! *statistically faithful* substitute: a seeded, deterministic
//! regime-switching market with
//!
//! * a common market factor plus per-asset idiosyncratic noise (crypto
//!   assets are strongly but not perfectly correlated),
//! * heavy-tailed (Student-t) shocks and Poisson jumps,
//! * regime eras calibrated to the 2016–2021 crypto cycles (2017 mania,
//!   2018 bear, COVID crash of March 2020, 2020–21 bull, May 2021
//!   correction), and
//! * OHLC candles synthesized from intra-period sub-steps so that
//!   `low ≤ open, close ≤ high` holds by construction.
//!
//! The entry point is [`experiments::ExperimentPreset`], which reproduces the
//! three train/backtest splits of Table 1, or [`generator::MarketGenerator`]
//! for custom scenarios.
//!
//! # Example
//!
//! ```
//! use spikefolio_market::experiments::ExperimentPreset;
//!
//! let preset = ExperimentPreset::experiment1();
//! let market = preset.generate(42);
//! assert_eq!(market.num_assets(), 11);
//! let (train, test) = market.split_at_date(preset.backtest_start);
//! assert!(train.num_periods() > test.num_periods());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod calibration;
pub mod candle;
pub mod data;
pub mod experiments;
pub mod generator;
pub mod io;
pub mod regime;
pub mod sanitize;
pub mod stats;
pub mod tail;
pub mod time;
pub mod universe;

pub use calibration::{MarketClass, UniverseGrid, UniverseSpec};
pub use candle::Candle;
pub use data::MarketData;
pub use generator::{AssetSpec, FactorBlock, FactorScale, GeneratorConfig, MarketGenerator};
pub use regime::{Regime, RegimeParams};
pub use sanitize::{sanitize_market, RepairPolicy, SanitizeConfig, SanitizeReport};
pub use tail::{CsvTail, CsvTailReader, TailError, TailWarning};
pub use time::Date;
