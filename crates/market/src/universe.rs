//! Universe selection: the paper trades "the 11 cryptocurrencies with the
//! highest trading volume in the last 30 days before the test data".

use crate::data::MarketData;

/// Indices of the `k` assets with the highest total volume over the
/// `trailing` periods ending at `at` (inclusive), in descending volume
/// order.
///
/// # Panics
///
/// Panics if `k == 0`, `k > num_assets`, or `at >= num_periods`.
pub fn top_by_volume(data: &MarketData, at: usize, trailing: usize, k: usize) -> Vec<usize> {
    assert!(k > 0 && k <= data.num_assets(), "k = {k} out of range");
    assert!(at < data.num_periods(), "period {at} out of range");
    let mut scored: Vec<(usize, f64)> =
        (0..data.num_assets()).map(|a| (a, data.trailing_volume(at, a, trailing))).collect();
    // Ties (and incomparable NaNs) break on the asset index so the
    // selection is a deterministic function of the data alone.
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored.into_iter().map(|(a, _)| a).collect()
}

/// Returns a copy of `data` restricted to the given asset indices (in the
/// given order).
///
/// # Panics
///
/// Panics if `assets` is empty or contains an out-of-range or duplicate
/// index.
pub fn select_assets(data: &MarketData, assets: &[usize]) -> MarketData {
    assert!(!assets.is_empty(), "empty asset selection");
    let mut seen = vec![false; data.num_assets()];
    for &a in assets {
        assert!(a < data.num_assets(), "asset index {a} out of range");
        assert!(!seen[a], "duplicate asset index {a}");
        seen[a] = true;
    }
    let names: Vec<String> = assets.iter().map(|&a| data.asset_names()[a].clone()).collect();
    let mut candles = Vec::with_capacity(data.num_periods() * assets.len());
    for t in 0..data.num_periods() {
        let row = data.cross_section(t);
        for &a in assets {
            candles.push(row[a]);
        }
    }
    MarketData::new(names, data.start_date(), data.periods_per_day(), assets.len(), candles)
}

/// The paper's selection rule in one call: restrict `data` to the `k`
/// highest-volume assets measured over the `trailing` periods ending just
/// before `split_period` (the start of the backtest).
///
/// # Panics
///
/// Panics if `split_period == 0` or out of range, or `k` is invalid.
pub fn paper_universe(
    data: &MarketData,
    split_period: usize,
    trailing: usize,
    k: usize,
) -> MarketData {
    assert!(
        split_period > 0 && split_period <= data.num_periods(),
        "split period {split_period} out of range"
    );
    let top = top_by_volume(data, split_period - 1, trailing, k);
    select_assets(data, &top)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::candle::Candle;
    use crate::time::Date;

    /// 3 assets × 4 periods; volumes: A low, B high, C medium.
    fn toy() -> MarketData {
        let mut candles = Vec::new();
        for _ in 0..4 {
            candles.push(Candle::new(1.0, 1.0, 1.0, 1.0, 1.0)); // A
            candles.push(Candle::new(2.0, 2.0, 2.0, 2.0, 100.0)); // B
            candles.push(Candle::new(3.0, 3.0, 3.0, 3.0, 10.0)); // C
        }
        MarketData::new(
            vec!["A".into(), "B".into(), "C".into()],
            Date::new(2020, 1, 1),
            1,
            3,
            candles,
        )
    }

    #[test]
    fn top_by_volume_orders_descending() {
        let d = toy();
        assert_eq!(top_by_volume(&d, 3, 4, 3), vec![1, 2, 0]);
        assert_eq!(top_by_volume(&d, 3, 4, 2), vec![1, 2]);
        assert_eq!(top_by_volume(&d, 3, 4, 1), vec![1]);
    }

    #[test]
    fn equal_volumes_break_ties_on_asset_index() {
        // All assets share one volume: the ranking must be the identity
        // permutation (ascending index), not an artifact of sort order.
        let mut candles = Vec::new();
        for _ in 0..3 {
            for a in 0..5 {
                let p = (a + 1) as f64;
                candles.push(Candle::new(p, p, p, p, 42.0));
            }
        }
        let d = MarketData::new(
            (0..5).map(|a| format!("A{a}")).collect(),
            Date::new(2020, 1, 1),
            1,
            5,
            candles,
        );
        assert_eq!(top_by_volume(&d, 2, 3, 5), vec![0, 1, 2, 3, 4]);
        assert_eq!(top_by_volume(&d, 2, 3, 3), vec![0, 1, 2]);
        // Partial ties: raise asset 3 above the tied block.
        let mut candles2 = Vec::new();
        for _ in 0..3 {
            for a in 0..5 {
                let p = (a + 1) as f64;
                let v = if a == 3 { 99.0 } else { 42.0 };
                candles2.push(Candle::new(p, p, p, p, v));
            }
        }
        let d2 = MarketData::new(
            (0..5).map(|a| format!("A{a}")).collect(),
            Date::new(2020, 1, 1),
            1,
            5,
            candles2,
        );
        assert_eq!(top_by_volume(&d2, 2, 3, 5), vec![3, 0, 1, 2, 4]);
    }

    #[test]
    fn select_assets_reorders_and_restricts() {
        let d = toy();
        let s = select_assets(&d, &[2, 0]);
        assert_eq!(s.num_assets(), 2);
        assert_eq!(s.asset_names(), &["C".to_string(), "A".to_string()]);
        assert_eq!(s.close(1, 0), 3.0);
        assert_eq!(s.close(1, 1), 1.0);
        assert_eq!(s.num_periods(), d.num_periods());
    }

    #[test]
    fn paper_universe_composes_both() {
        let d = toy();
        let u = paper_universe(&d, 2, 2, 2);
        assert_eq!(u.asset_names(), &["B".to_string(), "C".to_string()]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicates_rejected() {
        let d = toy();
        let _ = select_assets(&d, &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_k_rejected() {
        let d = toy();
        let _ = top_by_volume(&d, 3, 4, 5);
    }

    #[test]
    fn works_on_generated_markets() {
        use crate::experiments::ExperimentPreset;
        let d = ExperimentPreset::experiment1().shrunk(40, 10).generate(3);
        let split = d.period_at_date(ExperimentPreset::experiment1().shrunk(40, 10).backtest_start);
        let u = paper_universe(&d, split, 30 * d.periods_per_day() as usize, 5);
        assert_eq!(u.num_assets(), 5);
        assert_eq!(u.num_periods(), d.num_periods());
        // Selected names are a subset of the originals.
        for n in u.asset_names() {
            assert!(d.asset_names().contains(n));
        }
    }
}
