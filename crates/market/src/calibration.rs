//! Named market-class calibrations and multi-market universe builders.
//!
//! The paper's generator is calibrated to crypto magnitudes. The scenario
//! engine reuses the same regime calendar and return process for other
//! market classes by scaling the common factor ([`FactorScale`]) and
//! reshaping per-asset parameters (betas, idiosyncratic vols, tail
//! indices). A [`UniverseSpec`] bundles a named calibration with its
//! train/backtest split so the matrix runner can generate each universe
//! deterministically from one seed.

use crate::data::MarketData;
use crate::experiments::crypto_era_calendar;
use crate::generator::{
    AssetSpec, FactorBlock, FactorScale, GarchParams, GeneratorConfig, MarketGenerator,
};
use crate::time::Date;
use serde::{Deserialize, Serialize};

/// A market class: one named calibration of the return process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MarketClass {
    /// Crypto-calibrated: the paper's original process (fat tails, ~80–120%
    /// annualized factor vol, frequent jumps).
    Crypto,
    /// Equity-index-like: ~15–20% factor vol, milder tails, slower GARCH.
    Equity,
    /// G10-FX-like: ~8–10% factor vol, near-zero drift, persistent vol.
    Fx,
}

impl MarketClass {
    /// All classes, for exhaustive sweeps.
    pub const ALL: [MarketClass; 3] = [MarketClass::Crypto, MarketClass::Equity, MarketClass::Fx];

    /// Stable lowercase identifier used in universe names and scorecards.
    pub fn name(self) -> &'static str {
        match self {
            MarketClass::Crypto => "crypto",
            MarketClass::Equity => "equity",
            MarketClass::Fx => "fx",
        }
    }

    /// Scaling of the regime-driven common factor for this class.
    pub fn factor_scale(self) -> FactorScale {
        match self {
            MarketClass::Crypto => FactorScale::unit(),
            MarketClass::Equity => FactorScale { drift: 0.15, vol: 0.20, jump: 0.45 },
            MarketClass::Fx => FactorScale { drift: 0.04, vol: 0.10, jump: 0.25 },
        }
    }

    /// Volatility-clustering parameters for this class.
    pub fn garch(self) -> GarchParams {
        match self {
            MarketClass::Crypto => GarchParams::typical(),
            MarketClass::Equity => GarchParams { alpha: 0.08, beta: 0.90 },
            MarketClass::Fx => GarchParams { alpha: 0.05, beta: 0.93 },
        }
    }

    /// The `idx`-th asset of this class, with class-shaped beta,
    /// idiosyncratic vol, tail index, and price/volume scale. Deterministic
    /// in `idx`, so a universe of `n` assets is a pure function of
    /// `(class, n)`.
    pub fn asset(self, idx: usize) -> AssetSpec {
        let i = idx as f64;
        match self {
            MarketClass::Crypto => {
                let beta = 1.0 + 0.05 * (idx % 9) as f64;
                let price = 650.0 / (1.0 + 1.7 * i);
                AssetSpec {
                    name: format!("CRY{idx:02}"),
                    beta,
                    idio_vol: 0.55 + 0.03 * (idx % 5) as f64,
                    alpha: 0.0,
                    initial_price: price,
                    tail_df: 4.0,
                    base_volume: 1.0e6 / price,
                }
            }
            MarketClass::Equity => {
                let price = 40.0 + 15.0 * i;
                AssetSpec {
                    name: format!("EQT{idx:02}"),
                    beta: 0.7 + 0.06 * (idx % 10) as f64,
                    idio_vol: 0.20 + 0.02 * (idx % 5) as f64,
                    alpha: 0.0,
                    initial_price: price,
                    tail_df: 6.0,
                    base_volume: 2.0e6 / price,
                }
            }
            MarketClass::Fx => {
                let price = 0.8 + 0.25 * (idx % 6) as f64;
                AssetSpec {
                    name: format!("FXR{idx:02}"),
                    beta: 0.4 + 0.05 * (idx % 8) as f64,
                    idio_vol: 0.06 + 0.01 * (idx % 4) as f64,
                    alpha: 0.0,
                    initial_price: price,
                    tail_df: 5.0,
                    base_volume: 5.0e7,
                }
            }
        }
    }

    /// Cross-market block parameters: how strongly this class's block
    /// factor loads on the global (crypto-scale) factor, and the vol of
    /// its block-local component.
    fn block_params(self) -> (f64, f64) {
        match self {
            MarketClass::Crypto => (0.70, 0.50),
            MarketClass::Equity => (0.25, 0.12),
            MarketClass::Fx => (0.08, 0.05),
        }
    }
}

impl std::fmt::Display for MarketClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A named, fully-specified universe: generator configuration plus the
/// date splitting training data from the backtest window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniverseSpec {
    /// Scorecard row label ("crypto", "equity", "fx", "cross-market", ...).
    pub name: String,
    /// The validated generator configuration.
    pub config: GeneratorConfig,
    /// First backtest date; everything before it is training data.
    pub split: Date,
}

/// Time-grid parameters shared by a set of universes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniverseGrid {
    /// First simulated calendar day.
    pub start: Date,
    /// Training span in days (before the split).
    pub train_days: i64,
    /// Backtest span in days (after the split).
    pub test_days: i64,
    /// Candles per calendar day.
    pub periods_per_day: u32,
    /// Intra-candle sub-steps.
    pub substeps: u32,
}

impl UniverseGrid {
    /// The scenario engine's default grid: 2018-06 onwards so the era
    /// calendar spans bear, recovery, crash, and mania segments.
    pub fn standard() -> Self {
        Self {
            start: Date::new(2018, 6, 1),
            train_days: 420,
            test_days: 120,
            periods_per_day: 2,
            substeps: 4,
        }
    }

    /// A deliberately tiny grid for smokes and CI.
    pub fn smoke() -> Self {
        Self {
            start: Date::new(2020, 1, 1),
            train_days: 60,
            test_days: 20,
            periods_per_day: 2,
            substeps: 4,
        }
    }

    fn split(&self) -> Date {
        self.start + self.train_days
    }

    fn end(&self) -> Date {
        self.start + self.train_days + self.test_days
    }
}

impl UniverseSpec {
    /// A single-class universe of `num_assets` assets on `grid`.
    ///
    /// # Panics
    ///
    /// Panics if `num_assets == 0` or the grid produces an invalid
    /// configuration (degenerate spans).
    pub fn single_class(class: MarketClass, num_assets: usize, grid: UniverseGrid) -> Self {
        assert!(num_assets > 0, "universe needs at least one asset");
        let config = GeneratorConfig {
            assets: (0..num_assets).map(|i| class.asset(i)).collect(),
            start: grid.start,
            end: grid.end(),
            periods_per_day: grid.periods_per_day,
            substeps: grid.substeps,
            calendar: crypto_era_calendar(),
            garch: Some(class.garch()),
            factor_scale: class.factor_scale(),
            blocks: Vec::new(),
        };
        #[allow(clippy::expect_used)]
        MarketGenerator::new(config.clone()).expect("calibrated config is valid");
        Self { name: class.name().to_owned(), config, split: grid.split() }
    }

    /// A cross-market universe: one correlation block per `(class, count)`
    /// entry, sharing a global factor so classes co-move loosely while
    /// assets within a class co-move tightly.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty, a count is zero, or a class repeats.
    pub fn cross_market(classes: &[(MarketClass, usize)], grid: UniverseGrid) -> Self {
        assert!(!classes.is_empty(), "cross-market universe needs at least one class");
        let mut assets = Vec::new();
        let mut blocks = Vec::new();
        for (class, count) in classes {
            assert!(*count > 0, "class {class} has zero assets");
            assert!(
                !blocks.iter().any(|b: &FactorBlock| b.name == class.name()),
                "class {class} listed twice"
            );
            let first = assets.len();
            // Class scaling is delivered through the block factor (loading
            // + local vol), so member betas stay near 1 relative to it.
            for i in 0..*count {
                let mut spec = class.asset(i);
                spec.beta = 0.9 + 0.05 * (i % 5) as f64;
                if *class != MarketClass::Crypto {
                    spec.idio_vol = class.asset(i).idio_vol;
                }
                assets.push(spec);
            }
            let (global_loading, local_vol) = class.block_params();
            blocks.push(FactorBlock {
                name: class.name().to_owned(),
                members: (first..assets.len()).collect(),
                global_loading,
                local_vol,
                drift_shift: 0.0,
            });
        }
        let config = GeneratorConfig {
            assets,
            start: grid.start,
            end: grid.end(),
            periods_per_day: grid.periods_per_day,
            substeps: grid.substeps,
            calendar: crypto_era_calendar(),
            garch: Some(GarchParams::typical()),
            factor_scale: FactorScale::unit(),
            blocks,
        };
        #[allow(clippy::expect_used)]
        MarketGenerator::new(config.clone()).expect("cross-market config is valid");
        Self { name: "cross-market".to_owned(), config, split: grid.split() }
    }

    /// The scenario engine's standard universe set: one universe per
    /// market class plus a blocked cross-market universe.
    pub fn standard_set(grid: UniverseGrid) -> Vec<UniverseSpec> {
        vec![
            UniverseSpec::single_class(MarketClass::Crypto, 8, grid),
            UniverseSpec::single_class(MarketClass::Equity, 6, grid),
            UniverseSpec::single_class(MarketClass::Fx, 5, grid),
            UniverseSpec::cross_market(
                &[(MarketClass::Crypto, 3), (MarketClass::Equity, 3), (MarketClass::Fx, 2)],
                grid,
            ),
        ]
    }

    /// Generates the full (train + backtest) market for this universe.
    ///
    /// # Panics
    ///
    /// Panics if the stored configuration fails validation (constructors
    /// validate, so this only fires on hand-built specs).
    pub fn generate(&self, seed: u64) -> MarketData {
        #[allow(clippy::expect_used)]
        MarketGenerator::new(self.config.clone()).expect("universe config is valid").generate(seed)
    }

    /// Generates and splits at the universe's backtest date.
    ///
    /// # Panics
    ///
    /// Panics on an invalid stored configuration (see
    /// [`generate`](Self::generate)).
    pub fn generate_split(&self, seed: u64) -> (MarketData, MarketData) {
        self.generate(seed).split_at_date(self.split)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn assert_identical(a: &MarketData, b: &MarketData) {
        assert_eq!(a.num_periods(), b.num_periods());
        assert_eq!(a.num_assets(), b.num_assets());
        for t in 0..a.num_periods() {
            for i in 0..a.num_assets() {
                assert_eq!(a.candle(t, i), b.candle(t, i));
            }
        }
    }

    #[test]
    fn every_calibration_is_seed_deterministic() {
        // Satellite: same seed → identical candles, for every named
        // calibration including the blocked cross-market universe.
        for u in UniverseSpec::standard_set(UniverseGrid::smoke()) {
            let a = u.generate(2016);
            let b = u.generate(2016);
            assert_identical(&a, &b);
        }
    }

    #[test]
    fn different_calibrations_produce_different_series() {
        let set = UniverseSpec::standard_set(UniverseGrid::smoke());
        for i in 0..set.len() {
            for j in i + 1..set.len() {
                let a = set[i].generate(7);
                let b = set[j].generate(7);
                // Compare the first shared asset's mid-run close.
                let t = a.num_periods() / 2;
                assert_ne!(
                    a.candle(t, 0).close,
                    b.candle(t, 0).close,
                    "{} and {} generated identical series",
                    set[i].name,
                    set[j].name
                );
            }
        }
    }

    #[test]
    fn different_seeds_differ_within_each_calibration() {
        for u in UniverseSpec::standard_set(UniverseGrid::smoke()) {
            let a = u.generate(1);
            let b = u.generate(2);
            let t = a.num_periods() / 2;
            assert_ne!(a.candle(t, 0).close, b.candle(t, 0).close, "{}", u.name);
        }
    }

    #[test]
    fn standard_set_names_are_unique_and_stable() {
        let names: Vec<String> =
            UniverseSpec::standard_set(UniverseGrid::smoke()).into_iter().map(|u| u.name).collect();
        assert_eq!(names, vec!["crypto", "equity", "fx", "cross-market"]);
    }

    #[test]
    fn split_partitions_the_grid() {
        let grid = UniverseGrid::smoke();
        let u = UniverseSpec::single_class(MarketClass::Equity, 4, grid);
        let (train, test) = u.generate_split(3);
        let ppd = grid.periods_per_day as usize;
        assert_eq!(train.num_periods(), grid.train_days as usize * ppd);
        assert_eq!(test.num_periods(), grid.test_days as usize * ppd);
        assert_eq!(train.num_assets(), 4);
    }

    #[test]
    fn class_vol_ordering_is_crypto_over_equity_over_fx() {
        use crate::stats::realized_volatility;
        let grid = UniverseGrid::smoke();
        let vol = |class: MarketClass| {
            let d = UniverseSpec::single_class(class, 4, grid).generate(11);
            (0..d.num_assets()).map(|a| realized_volatility(&d, a)).sum::<f64>() / 4.0
        };
        let (c, e, f) = (vol(MarketClass::Crypto), vol(MarketClass::Equity), vol(MarketClass::Fx));
        assert!(c > e && e > f, "vol ordering violated: crypto {c}, equity {e}, fx {f}");
    }

    #[test]
    #[should_panic(expected = "zero assets")]
    fn cross_market_rejects_empty_class() {
        let _ = UniverseSpec::cross_market(&[(MarketClass::Crypto, 0)], UniverseGrid::smoke());
    }
}
