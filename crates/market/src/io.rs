//! CSV import/export of market datasets.
//!
//! The synthetic generator stands in for the paper's Poloniex feed, but a
//! user with real OHLCV data can load it through this module and run every
//! experiment on it unchanged. The format is long-form CSV:
//!
//! ```csv
//! period,asset,open,high,low,close,volume
//! 0,BTC,650.0,655.2,648.8,654.0,1250.5
//! 0,ETH,11.2,11.4,11.1,11.3,80421.0
//! 1,BTC,654.0,659.0,652.5,658.1,1300.2
//! ...
//! ```
//!
//! Rows must be grouped by period (ascending) and cover every asset in
//! every period, in a consistent asset order. CRLF line endings, blank
//! lines, and a missing trailing newline are all tolerated. Parsing
//! collects **every** malformed row in one pass — [`ParseMarketError`]
//! reports them all, so a messy file is fixed in one round trip instead
//! of one error at a time. [`from_csv_lenient`] additionally forward-fills
//! whole missing periods (a common defect of real exchange dumps) and
//! reports them in a [`SanitizeReport`].

use crate::candle::Candle;
use crate::data::MarketData;
use crate::sanitize::{Issue, IssueKind, SanitizeReport};
use crate::time::Date;

/// One malformed row (or structural defect) of a market CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct RowError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What was wrong with it.
    pub msg: String,
}

impl std::fmt::Display for RowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// Error parsing a market CSV. Carries **all** defects found in one pass,
/// not just the first.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseMarketError {
    errors: Vec<RowError>,
}

impl ParseMarketError {
    fn new(line: usize, msg: impl Into<String>) -> Self {
        Self { errors: vec![RowError { line, msg: msg.into() }] }
    }

    /// Every defect found, in source order.
    pub fn errors(&self) -> &[RowError] {
        &self.errors
    }
}

impl std::fmt::Display for ParseMarketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.errors.as_slice() {
            [] => write!(f, "invalid market csv"),
            [only] => write!(f, "invalid market csv at {only}"),
            [first, rest @ ..] => {
                write!(f, "invalid market csv: {} defects; at {first}", rest.len() + 1)?;
                for e in rest {
                    write!(f, "; at {e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ParseMarketError {}

/// Serializes a dataset to long-form CSV (see the [module docs](self)).
pub fn to_csv(data: &MarketData) -> String {
    let mut s = String::from("period,asset,open,high,low,close,volume\n");
    for t in 0..data.num_periods() {
        for (a, name) in data.asset_names().iter().enumerate() {
            let c = data.candle(t, a);
            s.push_str(&format!(
                "{t},{name},{},{},{},{},{}\n",
                c.open, c.high, c.low, c.close, c.volume
            ));
        }
    }
    s
}

/// Parses a long-form CSV into a dataset anchored at `start` with
/// `periods_per_day` candles per day.
///
/// # Errors
///
/// Returns [`ParseMarketError`] carrying *every* syntax error,
/// inconsistent asset set, out-of-order period, or candle-invariant
/// violation found in the file.
pub fn from_csv(
    text: &str,
    start: Date,
    periods_per_day: u32,
) -> Result<MarketData, ParseMarketError> {
    parse_csv(text, start, periods_per_day, false).map(|(data, _)| data)
}

/// [`from_csv`] that tolerates whole missing periods by forward-filling
/// the previous cross-section as flat zero-volume candles. Each filled
/// candle is reported as an [`IssueKind::MissingPeriod`] issue in the
/// returned [`SanitizeReport`].
///
/// # Errors
///
/// As [`from_csv`], except period gaps are repaired instead of rejected.
pub fn from_csv_lenient(
    text: &str,
    start: Date,
    periods_per_day: u32,
) -> Result<(MarketData, SanitizeReport), ParseMarketError> {
    parse_csv(text, start, periods_per_day, true)
}

fn parse_csv(
    text: &str,
    start: Date,
    periods_per_day: u32,
    fill_gaps: bool,
) -> Result<(MarketData, SanitizeReport), ParseMarketError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| ParseMarketError::new(1, "empty file"))?;
    if header.trim() != "period,asset,open,high,low,close,volume" {
        return Err(ParseMarketError::new(1, format!("unexpected header {header:?}")));
    }

    let mut errors: Vec<RowError> = Vec::new();
    let mut report = SanitizeReport::default();
    let mut asset_names: Vec<String> = Vec::new();
    let mut candles: Vec<Candle> = Vec::new();
    let mut current_period: Option<usize> = None;
    let mut period_fill = 0usize;
    let mut first_period_done = false;
    let fail = |errors: &mut Vec<RowError>, line: usize, msg: String| {
        errors.push(RowError { line, msg });
    };

    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 7 {
            fail(&mut errors, lineno, format!("expected 7 fields, found {}", fields.len()));
            continue;
        }
        let period: usize = match fields[0].trim().parse() {
            Ok(p) => p,
            Err(_) => {
                fail(&mut errors, lineno, format!("bad period {:?}", fields[0].trim()));
                continue;
            }
        };
        let asset = fields[1].trim().to_owned();
        let nums: Vec<f64> = fields[2..7]
            .iter()
            .map(|f| {
                f.trim().parse::<f64>().unwrap_or_else(|_| {
                    fail(&mut errors, lineno, format!("bad number {:?}", f.trim()));
                    f64::NAN
                })
            })
            .collect();

        match current_period {
            None => {
                if period != 0 {
                    fail(&mut errors, lineno, "periods must start at 0".into());
                }
                current_period = Some(period);
            }
            Some(p) if period == p => {}
            Some(p) if period > p => {
                // Close out the finished period. (While the first period is
                // being read, `asset_names` grows with `period_fill`, so the
                // check holds trivially there.)
                if period_fill != asset_names.len() {
                    fail(
                        &mut errors,
                        lineno,
                        format!(
                            "period {p} has {period_fill} rows, expected {}",
                            asset_names.len()
                        ),
                    );
                }
                if period > p + 1 {
                    // Filling needs a complete previous cross-section to
                    // copy from.
                    let fillable = !asset_names.is_empty() && period_fill == asset_names.len();
                    if fill_gaps && fillable {
                        for missing in (p + 1)..period {
                            let prev_start = candles.len() - asset_names.len();
                            for a in 0..asset_names.len() {
                                let prev_close = candles[prev_start + a].close;
                                candles.push(Candle::flat(prev_close));
                                report.issues.push(Issue {
                                    period: missing,
                                    asset: a,
                                    kind: IssueKind::MissingPeriod,
                                    repaired: true,
                                });
                            }
                        }
                    } else {
                        fail(&mut errors, lineno, format!("period jumped from {p} to {period}"));
                    }
                }
                first_period_done = true;
                current_period = Some(period);
                period_fill = 0;
            }
            Some(p) => {
                fail(&mut errors, lineno, format!("period went backwards from {p} to {period}"));
                continue;
            }
        }

        if !first_period_done {
            if asset_names.contains(&asset) {
                fail(&mut errors, lineno, format!("duplicate asset {asset}"));
                continue;
            }
            asset_names.push(asset);
        } else {
            match asset_names.get(period_fill) {
                None => {
                    fail(&mut errors, lineno, "too many rows in period".into());
                    continue;
                }
                Some(expect) if *expect != asset => {
                    fail(
                        &mut errors,
                        lineno,
                        format!("expected asset {expect} at this position, found {asset}"),
                    );
                }
                Some(_) => {}
            }
        }
        period_fill += 1;

        let (open, high, low, close, volume) = (nums[0], nums[1], nums[2], nums[3], nums[4]);
        let finite = nums.iter().all(|n| n.is_finite());
        let positive = open > 0.0 && high > 0.0 && low > 0.0 && close > 0.0;
        if finite && !positive {
            fail(&mut errors, lineno, "prices must be positive".into());
        }
        let body_ok =
            positive && low <= open.min(close) && high >= open.max(close) && volume >= 0.0;
        if finite && positive && !body_ok {
            fail(&mut errors, lineno, "candle invariants violated".into());
        }
        if finite && body_ok {
            candles.push(Candle::new(open, high, low, close, volume));
        } else {
            // Keep the grid aligned so later rows still validate against
            // the right asset slot; the file is rejected anyway.
            candles.push(Candle::flat(1.0));
        }
    }

    if asset_names.is_empty() {
        fail(&mut errors, 2, "no data rows".into());
    } else if period_fill != asset_names.len() {
        fail(
            &mut errors,
            0,
            format!("last period has {period_fill} rows, expected {}", asset_names.len()),
        );
    }
    if !errors.is_empty() {
        return Err(ParseMarketError { errors });
    }
    let n = asset_names.len();
    Ok((MarketData::new(asset_names, start, periods_per_day, n, candles), report))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::experiments::ExperimentPreset;

    #[test]
    fn round_trip_preserves_everything() {
        let d = ExperimentPreset::experiment1().shrunk(5, 2).generate(3);
        let csv = to_csv(&d);
        let back = from_csv(&csv, d.start_date(), d.periods_per_day()).unwrap();
        assert_eq!(back.num_assets(), d.num_assets());
        assert_eq!(back.num_periods(), d.num_periods());
        assert_eq!(back.asset_names(), d.asset_names());
        for t in 0..d.num_periods() {
            for a in 0..d.num_assets() {
                assert_eq!(back.candle(t, a), d.candle(t, a), "mismatch at ({t},{a})");
            }
        }
    }

    #[test]
    fn hand_written_csv_parses() {
        let csv = "period,asset,open,high,low,close,volume\n\
                   0,BTC,100,105,99,104,10\n\
                   0,ETH,10,10.5,9.9,10.4,100\n\
                   1,BTC,104,106,103,105,12\n\
                   1,ETH,10.4,10.6,10.3,10.5,90\n";
        let d = from_csv(csv, Date::new(2020, 1, 1), 1).unwrap();
        assert_eq!(d.num_assets(), 2);
        assert_eq!(d.num_periods(), 2);
        assert_eq!(d.close(1, 0), 105.0);
    }

    #[test]
    fn crlf_blank_lines_and_missing_trailing_newline_parse() {
        let csv = "period,asset,open,high,low,close,volume\r\n\
                   0,BTC,100,105,99,104,10\r\n\
                   \r\n\
                   0,ETH,10,10.5,9.9,10.4,100\r\n\
                   \n\
                   1,BTC,104,106,103,105,12\r\n\
                   1,ETH,10.4,10.6,10.3,10.5,90";
        let d = from_csv(csv, Date::new(2020, 1, 1), 1).unwrap();
        assert_eq!(d.num_assets(), 2);
        assert_eq!(d.num_periods(), 2);
        assert_eq!(d.close(1, 1), 10.5);
    }

    #[test]
    fn rejects_bad_inputs() {
        let hdr = "period,asset,open,high,low,close,volume\n";
        // Wrong header.
        assert!(from_csv("a,b,c\n", Date::new(2020, 1, 1), 1).is_err());
        // Period gap.
        let gap = format!("{hdr}0,X,1,1,1,1,0\n2,X,1,1,1,1,0\n");
        assert!(from_csv(&gap, Date::new(2020, 1, 1), 1).is_err());
        // Wrong asset order in later periods.
        let order = format!("{hdr}0,A,1,1,1,1,0\n0,B,1,1,1,1,0\n1,B,1,1,1,1,0\n1,A,1,1,1,1,0\n");
        assert!(from_csv(&order, Date::new(2020, 1, 1), 1).is_err());
        // Candle invariant violation (high < close).
        let bad = format!("{hdr}0,A,1,0.5,0.4,1,0\n");
        assert!(from_csv(&bad, Date::new(2020, 1, 1), 1).is_err());
        // Incomplete last period.
        let trunc = format!("{hdr}0,A,1,1,1,1,0\n0,B,1,1,1,1,0\n1,A,1,1,1,1,0\n");
        assert!(from_csv(&trunc, Date::new(2020, 1, 1), 1).is_err());
        // Duplicate asset in first period.
        let dup = format!("{hdr}0,A,1,1,1,1,0\n0,A,1,1,1,1,0\n");
        assert!(from_csv(&dup, Date::new(2020, 1, 1), 1).is_err());
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let csv = "period,asset,open,high,low,close,volume\n0,X,zzz,1,1,1,0\n";
        let err = from_csv(csv, Date::new(2020, 1, 1), 1).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn all_malformed_rows_are_reported_in_one_pass() {
        let csv = "period,asset,open,high,low,close,volume\n\
                   0,A,zzz,1,1,1,0\n\
                   0,B,1,1,1,1,0\n\
                   1,A,1,1,1,1,-5\n\
                   1,B,1,1\n\
                   2,A,1,1,1,1,0\n\
                   2,B,0,1,1,1,0\n";
        let err = from_csv(csv, Date::new(2020, 1, 1), 1).unwrap_err();
        let lines: Vec<usize> = err.errors().iter().map(|e| e.line).collect();
        assert!(lines.contains(&2), "bad number: {err}");
        assert!(lines.contains(&4), "negative volume: {err}");
        assert!(lines.contains(&5), "wrong field count: {err}");
        assert!(lines.contains(&7), "non-positive price: {err}");
        assert!(err.errors().len() >= 4, "{err}");
    }

    #[test]
    fn lenient_loader_forward_fills_missing_periods() {
        let csv = "period,asset,open,high,low,close,volume\n\
                   0,A,100,105,99,104,10\n\
                   0,B,10,10.5,9.9,10.4,100\n\
                   3,A,104,106,103,105,12\n\
                   3,B,10.4,10.6,10.3,10.5,90\n";
        let (d, report) = from_csv_lenient(csv, Date::new(2020, 1, 1), 1).unwrap();
        assert_eq!(d.num_periods(), 4);
        // Filled periods are flat at the previous close, zero volume.
        assert_eq!(d.candle(1, 0), Candle::flat(104.0));
        assert_eq!(d.candle(2, 1), Candle::flat(10.4));
        assert_eq!(report.issues.len(), 4);
        assert!(report.issues.iter().all(|i| i.kind == IssueKind::MissingPeriod && i.repaired));
        assert_eq!(report.repairs(), 4);
    }

    #[test]
    fn lenient_loader_is_strict_about_everything_else() {
        let csv = "period,asset,open,high,low,close,volume\n0,A,1,0.5,0.4,1,0\n";
        assert!(from_csv_lenient(csv, Date::new(2020, 1, 1), 1).is_err());
        // And a gap-free file reports clean.
        let ok = "period,asset,open,high,low,close,volume\n0,A,1,1,1,1,0\n1,A,1,1,1,1,0\n";
        let (_, report) = from_csv_lenient(ok, Date::new(2020, 1, 1), 1).unwrap();
        assert!(report.clean());
    }
}
