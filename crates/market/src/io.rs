//! CSV import/export of market datasets.
//!
//! The synthetic generator stands in for the paper's Poloniex feed, but a
//! user with real OHLCV data can load it through this module and run every
//! experiment on it unchanged. The format is long-form CSV:
//!
//! ```csv
//! period,asset,open,high,low,close,volume
//! 0,BTC,650.0,655.2,648.8,654.0,1250.5
//! 0,ETH,11.2,11.4,11.1,11.3,80421.0
//! 1,BTC,654.0,659.0,652.5,658.1,1300.2
//! ...
//! ```
//!
//! Rows must be grouped by period (ascending) and cover every asset in
//! every period, in a consistent asset order.

use crate::candle::Candle;
use crate::data::MarketData;
use crate::time::Date;

/// Error parsing a market CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseMarketError {
    line: usize,
    msg: String,
}

impl ParseMarketError {
    fn new(line: usize, msg: impl Into<String>) -> Self {
        Self { line, msg: msg.into() }
    }
}

impl std::fmt::Display for ParseMarketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid market csv at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseMarketError {}

/// Serializes a dataset to long-form CSV (see the [module docs](self)).
pub fn to_csv(data: &MarketData) -> String {
    let mut s = String::from("period,asset,open,high,low,close,volume\n");
    for t in 0..data.num_periods() {
        for (a, name) in data.asset_names().iter().enumerate() {
            let c = data.candle(t, a);
            s.push_str(&format!(
                "{t},{name},{},{},{},{},{}\n",
                c.open, c.high, c.low, c.close, c.volume
            ));
        }
    }
    s
}

/// Parses a long-form CSV into a dataset anchored at `start` with
/// `periods_per_day` candles per day.
///
/// # Errors
///
/// Returns [`ParseMarketError`] on syntax errors, inconsistent asset sets,
/// out-of-order periods, or candle-invariant violations.
pub fn from_csv(
    text: &str,
    start: Date,
    periods_per_day: u32,
) -> Result<MarketData, ParseMarketError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| ParseMarketError::new(1, "empty file"))?;
    if header.trim() != "period,asset,open,high,low,close,volume" {
        return Err(ParseMarketError::new(1, format!("unexpected header {header:?}")));
    }

    let mut asset_names: Vec<String> = Vec::new();
    let mut candles: Vec<Candle> = Vec::new();
    let mut current_period: Option<usize> = None;
    let mut period_fill = 0usize;
    let mut first_period_done = false;

    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 7 {
            return Err(ParseMarketError::new(lineno, "expected 7 fields"));
        }
        let period: usize =
            fields[0].trim().parse().map_err(|_| ParseMarketError::new(lineno, "bad period"))?;
        let asset = fields[1].trim().to_owned();
        let nums: Result<Vec<f64>, _> =
            fields[2..7].iter().map(|f| f.trim().parse::<f64>()).collect();
        let nums = nums.map_err(|_| ParseMarketError::new(lineno, "bad number"))?;

        match current_period {
            None => {
                if period != 0 {
                    return Err(ParseMarketError::new(lineno, "periods must start at 0"));
                }
                current_period = Some(0);
            }
            Some(p) if period == p => {}
            Some(p) if period == p + 1 => {
                // Close out the finished period. (While the first period is
                // being read, `asset_names` grows with `period_fill`, so the
                // check holds trivially there.)
                if period_fill != asset_names.len() {
                    return Err(ParseMarketError::new(
                        lineno,
                        format!(
                            "period {p} has {period_fill} rows, expected {}",
                            asset_names.len()
                        ),
                    ));
                }
                first_period_done = true;
                current_period = Some(period);
                period_fill = 0;
            }
            Some(p) => {
                return Err(ParseMarketError::new(
                    lineno,
                    format!("period jumped from {p} to {period}"),
                ));
            }
        }

        if !first_period_done {
            if asset_names.contains(&asset) {
                return Err(ParseMarketError::new(lineno, format!("duplicate asset {asset}")));
            }
            asset_names.push(asset);
        } else {
            let expect = asset_names
                .get(period_fill)
                .ok_or_else(|| ParseMarketError::new(lineno, "too many rows in period"))?;
            if *expect != asset {
                return Err(ParseMarketError::new(
                    lineno,
                    format!("expected asset {expect} at this position, found {asset}"),
                ));
            }
        }
        period_fill += 1;

        let (open, high, low, close, volume) = (nums[0], nums[1], nums[2], nums[3], nums[4]);
        if !(open > 0.0 && high > 0.0 && low > 0.0 && close > 0.0) {
            return Err(ParseMarketError::new(lineno, "prices must be positive"));
        }
        if low > open.min(close) || high < open.max(close) || volume < 0.0 {
            return Err(ParseMarketError::new(lineno, "candle invariants violated"));
        }
        candles.push(Candle::new(open, high, low, close, volume));
    }

    if asset_names.is_empty() {
        return Err(ParseMarketError::new(2, "no data rows"));
    }
    if period_fill != asset_names.len() {
        return Err(ParseMarketError::new(
            0,
            format!("last period has {period_fill} rows, expected {}", asset_names.len()),
        ));
    }
    let n = asset_names.len();
    Ok(MarketData::new(asset_names, start, periods_per_day, n, candles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentPreset;

    #[test]
    fn round_trip_preserves_everything() {
        let d = ExperimentPreset::experiment1().shrunk(5, 2).generate(3);
        let csv = to_csv(&d);
        let back = from_csv(&csv, d.start_date(), d.periods_per_day()).unwrap();
        assert_eq!(back.num_assets(), d.num_assets());
        assert_eq!(back.num_periods(), d.num_periods());
        assert_eq!(back.asset_names(), d.asset_names());
        for t in 0..d.num_periods() {
            for a in 0..d.num_assets() {
                assert_eq!(back.candle(t, a), d.candle(t, a), "mismatch at ({t},{a})");
            }
        }
    }

    #[test]
    fn hand_written_csv_parses() {
        let csv = "period,asset,open,high,low,close,volume\n\
                   0,BTC,100,105,99,104,10\n\
                   0,ETH,10,10.5,9.9,10.4,100\n\
                   1,BTC,104,106,103,105,12\n\
                   1,ETH,10.4,10.6,10.3,10.5,90\n";
        let d = from_csv(csv, Date::new(2020, 1, 1), 1).unwrap();
        assert_eq!(d.num_assets(), 2);
        assert_eq!(d.num_periods(), 2);
        assert_eq!(d.close(1, 0), 105.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let hdr = "period,asset,open,high,low,close,volume\n";
        // Wrong header.
        assert!(from_csv("a,b,c\n", Date::new(2020, 1, 1), 1).is_err());
        // Period gap.
        let gap = format!("{hdr}0,X,1,1,1,1,0\n2,X,1,1,1,1,0\n");
        assert!(from_csv(&gap, Date::new(2020, 1, 1), 1).is_err());
        // Wrong asset order in later periods.
        let order = format!("{hdr}0,A,1,1,1,1,0\n0,B,1,1,1,1,0\n1,B,1,1,1,1,0\n1,A,1,1,1,1,0\n");
        assert!(from_csv(&order, Date::new(2020, 1, 1), 1).is_err());
        // Candle invariant violation (high < close).
        let bad = format!("{hdr}0,A,1,0.5,0.4,1,0\n");
        assert!(from_csv(&bad, Date::new(2020, 1, 1), 1).is_err());
        // Incomplete last period.
        let trunc = format!("{hdr}0,A,1,1,1,1,0\n0,B,1,1,1,1,0\n1,A,1,1,1,1,0\n");
        assert!(from_csv(&trunc, Date::new(2020, 1, 1), 1).is_err());
        // Duplicate asset in first period.
        let dup = format!("{hdr}0,A,1,1,1,1,0\n0,A,1,1,1,1,0\n");
        assert!(from_csv(&dup, Date::new(2020, 1, 1), 1).is_err());
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let csv = "period,asset,open,high,low,close,volume\n0,X,zzz,1,1,1,0\n";
        let err = from_csv(csv, Date::new(2020, 1, 1), 1).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }
}
