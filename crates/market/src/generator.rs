//! Regime-switching synthetic market generator.
//!
//! Each asset's per-substep log return is
//!
//! ```text
//! r_i = β_i · r_market + α_i·dt + σ_i·√dt · t_ν  (+ idiosyncratic jump)
//! r_market = μ(regime)·dt + σ(regime)·√dt · z   (+ market jump)
//! ```
//!
//! with Student-t idiosyncratic shocks (fat tails) and Poisson-arriving
//! jumps whose intensity and sign depend on the regime. OHLC candles are
//! formed from the intra-period sub-step price path, so the candle
//! invariants hold by construction.

use crate::candle::Candle;
use crate::data::MarketData;
use crate::regime::{Regime, RegimeParams};
use crate::time::Date;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal, StudentT};
use serde::{Deserialize, Serialize};

const TRADING_DAYS_PER_YEAR: f64 = 365.0; // crypto trades 24/7

/// Static description of one synthetic asset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssetSpec {
    /// Ticker-style display name.
    pub name: String,
    /// Loading on the common market factor (BTC-like ≈ 1.0, alts > 1).
    pub beta: f64,
    /// Annualized idiosyncratic volatility.
    pub idio_vol: f64,
    /// Annualized idiosyncratic drift on top of the factor exposure.
    pub alpha: f64,
    /// Price at the first period's open.
    pub initial_price: f64,
    /// Degrees of freedom of the Student-t idiosyncratic shock
    /// (smaller = fatter tails). Must be > 2.
    pub tail_df: f64,
    /// Mean per-period traded volume.
    pub base_volume: f64,
}

impl AssetSpec {
    /// A reasonable generic altcoin spec with the given name and beta.
    pub fn altcoin(name: &str, beta: f64, initial_price: f64) -> Self {
        Self {
            name: name.to_owned(),
            beta,
            idio_vol: 0.6 + 0.25 * (beta - 1.0).max(0.0),
            alpha: 0.0,
            initial_price,
            tail_df: 4.0,
            base_volume: 1.0e6 / initial_price.max(1e-6),
        }
    }

    /// The 11 highest-volume Poloniex assets of the paper's era
    /// (BTC-quoted alt markets plus BTC itself), with crypto-typical betas.
    pub fn top11() -> Vec<AssetSpec> {
        vec![
            AssetSpec::altcoin("BTC", 1.0, 650.0),
            AssetSpec::altcoin("ETH", 1.15, 11.0),
            AssetSpec::altcoin("XRP", 1.35, 0.006),
            AssetSpec::altcoin("LTC", 1.1, 4.0),
            AssetSpec::altcoin("BCH", 1.3, 300.0),
            AssetSpec::altcoin("EOS", 1.45, 1.0),
            AssetSpec::altcoin("XLM", 1.4, 0.002),
            AssetSpec::altcoin("ADA", 1.4, 0.02),
            AssetSpec::altcoin("TRX", 1.5, 0.002),
            AssetSpec::altcoin("DASH", 1.2, 9.0),
            AssetSpec::altcoin("XMR", 1.15, 2.0),
        ]
    }
}

/// Configuration of a market generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Assets to simulate.
    pub assets: Vec<AssetSpec>,
    /// First simulated calendar day.
    pub start: Date,
    /// One-past-last simulated calendar day.
    pub end: Date,
    /// Candles per calendar day (Poloniex-style 30-min data would be 48;
    /// the experiment presets default to a coarser grid for tractability).
    pub periods_per_day: u32,
    /// Intra-candle sub-steps used to synthesize OHLC extremes.
    pub substeps: u32,
    /// Era calendar: `(from_date, regime)` entries sorted by date. The
    /// regime applies from its date until the next entry (or `end`).
    /// Dates before the first entry use the first entry's regime.
    pub calendar: Vec<(Date, Regime)>,
    /// Optional GARCH(1,1)-style volatility clustering on top of the
    /// regime vols. `None` leaves clustering to the regime switching
    /// alone.
    pub garch: Option<GarchParams>,
    /// Scaling of the regime-driven common factor. The regime calendar is
    /// calibrated to crypto magnitudes; other market classes reuse the
    /// same calendars with damped drift/vol/jump terms.
    /// [`FactorScale::unit`] reproduces the legacy process bit-for-bit.
    pub factor_scale: FactorScale,
    /// Cross-market block-correlation structure: each block owns a factor
    /// that loads on the global market factor and adds a block-local
    /// component, so assets correlate tightly within a block and loosely
    /// across blocks. Assets not listed in any block load directly on the
    /// global factor. Empty = single-factor legacy behaviour (bitwise).
    pub blocks: Vec<FactorBlock>,
}

/// Multiplicative scaling of the common factor's regime parameters,
/// letting one era calendar describe different market classes (an equity
/// index moves ~5× less than crypto, a G10 FX cross ~10× less).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FactorScale {
    /// Multiplier on the regime's annualized drift.
    pub drift: f64,
    /// Multiplier on the regime's annualized volatility.
    pub vol: f64,
    /// Multiplier on the regime's jump *size* (arrival intensity is kept,
    /// so the draw sequence is identical across scales).
    pub jump: f64,
}

impl FactorScale {
    /// The identity scaling: the legacy crypto-calibrated process.
    pub fn unit() -> Self {
        Self { drift: 1.0, vol: 1.0, jump: 1.0 }
    }

    /// Validates that all multipliers are finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending multiplier.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [("drift", self.drift), ("vol", self.vol), ("jump", self.jump)] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("factor_scale.{name} must be finite and >= 0, got {v}"));
            }
        }
        Ok(())
    }
}

/// One correlation block of a cross-market universe.
///
/// The block factor for a sub-step is
///
/// ```text
/// r_b = drift_shift·dt + global_loading · r_market + local_vol·√dt·√h · z_b
/// ```
///
/// with `z_b` a fresh standard normal per sub-step (drawn after the
/// market factor, in block order) and `h` the shared GARCH multiplier.
/// Member assets then use `r_b` in place of `r_market`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorBlock {
    /// Display name ("crypto", "equity", ...).
    pub name: String,
    /// Indices into [`GeneratorConfig::assets`] belonging to this block.
    pub members: Vec<usize>,
    /// Loading of the block factor on the global market factor; 0 =
    /// independent block, 1 = fully inherits the global factor.
    pub global_loading: f64,
    /// Annualized volatility of the block-local factor component.
    pub local_vol: f64,
    /// Annualized drift offset of the block factor.
    pub drift_shift: f64,
}

/// GARCH(1,1) multiplier on the per-substep volatility:
/// `h_t = ω + α·ε²_{t−1} + β·h_{t−1}` with `ε` the previous *standardized*
/// market shock. The realized per-substep volatility is
/// `σ_regime · √h_t`, so `h` fluctuates around 1 when `ω = 1 − α − β`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GarchParams {
    /// Shock loading `α` (ARCH term).
    pub alpha: f64,
    /// Persistence `β` (GARCH term).
    pub beta: f64,
}

impl GarchParams {
    /// Crypto-typical persistence: `α = 0.10`, `β = 0.85`.
    pub fn typical() -> Self {
        Self { alpha: 0.10, beta: 0.85 }
    }

    /// Validates stationarity (`α + β < 1`, both non-negative).
    ///
    /// # Errors
    ///
    /// Returns a message when the process would be non-stationary.
    pub fn validate(&self) -> Result<(), String> {
        if self.alpha < 0.0 || self.beta < 0.0 {
            return Err("garch parameters must be non-negative".into());
        }
        if self.alpha + self.beta >= 1.0 {
            return Err(format!(
                "garch must be stationary: alpha + beta = {} >= 1",
                self.alpha + self.beta
            ));
        }
        Ok(())
    }

    /// The `ω` keeping the long-run variance multiplier at 1.
    pub fn omega(&self) -> f64 {
        1.0 - self.alpha - self.beta
    }
}

impl GeneratorConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: empty asset
    /// list, non-positive time span, zero periods/substeps, unsorted
    /// calendar, or invalid asset parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.assets.is_empty() {
            return Err("no assets configured".into());
        }
        if self.start >= self.end {
            return Err(format!("start {} must precede end {}", self.start, self.end));
        }
        if self.periods_per_day == 0 {
            return Err("periods_per_day must be positive".into());
        }
        if self.substeps == 0 {
            return Err("substeps must be positive".into());
        }
        if self.calendar.is_empty() {
            return Err("era calendar is empty".into());
        }
        if self.calendar.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err("era calendar dates must be strictly increasing".into());
        }
        if let Some(g) = &self.garch {
            g.validate()?;
        }
        self.factor_scale.validate()?;
        let mut claimed = vec![false; self.assets.len()];
        for b in &self.blocks {
            if b.members.is_empty() {
                return Err(format!("block {} has no members", b.name));
            }
            if !(0.0..=1.0).contains(&b.global_loading) {
                return Err(format!("block {} global_loading must be in [0, 1]", b.name));
            }
            if !b.local_vol.is_finite() || b.local_vol < 0.0 {
                return Err(format!("block {} local_vol must be finite and >= 0", b.name));
            }
            for &m in &b.members {
                if m >= self.assets.len() {
                    return Err(format!("block {} member index {m} out of range", b.name));
                }
                if claimed[m] {
                    return Err(format!("asset index {m} appears in more than one block"));
                }
                claimed[m] = true;
            }
        }
        for a in &self.assets {
            if a.initial_price <= 0.0 {
                return Err(format!("asset {} has non-positive initial price", a.name));
            }
            if a.tail_df <= 2.0 {
                return Err(format!("asset {} tail_df must exceed 2", a.name));
            }
            if a.idio_vol < 0.0 || a.base_volume < 0.0 {
                return Err(format!("asset {} has negative vol/volume", a.name));
            }
        }
        Ok(())
    }

    /// Total number of candles the run will produce per asset.
    pub fn num_periods(&self) -> usize {
        (self.start.days_until(self.end).max(0) as usize) * self.periods_per_day as usize
    }

    /// The regime in force on `date`.
    pub fn regime_at(&self, date: Date) -> Regime {
        let mut current = self.calendar[0].1;
        for &(from, regime) in &self.calendar {
            if date >= from {
                current = regime;
            } else {
                break;
            }
        }
        current
    }
}

/// Seeded market generator. See the [module docs](self) for the model.
#[derive(Debug, Clone)]
pub struct MarketGenerator {
    config: GeneratorConfig,
}

impl MarketGenerator {
    /// Creates a generator after validating `config`.
    ///
    /// # Errors
    ///
    /// Returns the validation error string of
    /// [`GeneratorConfig::validate`].
    pub fn new(config: GeneratorConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Self { config })
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates the full market deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> MarketData {
        let cfg = &self.config;
        let n_assets = cfg.assets.len();
        let n_periods = cfg.num_periods();
        let dt_period = 1.0 / (TRADING_DAYS_PER_YEAR * cfg.periods_per_day as f64);
        let dt_sub = dt_period / cfg.substeps as f64;

        let mut rng = StdRng::seed_from_u64(seed);
        // Constructor invariants: the unit normal is always valid and
        // config validation has already bounded tail_df > 2.
        #[allow(clippy::expect_used)]
        let normal = Normal::new(0.0, 1.0).expect("unit normal is valid");
        let tails: Vec<StudentT<f64>> = cfg
            .assets
            .iter()
            .map(|a| {
                #[allow(clippy::expect_used)]
                StudentT::new(a.tail_df).expect("validated tail_df > 2")
            })
            .collect();
        // Scale Student-t draws to unit variance: Var[t_ν] = ν/(ν-2).
        let tail_scale: Vec<f64> =
            cfg.assets.iter().map(|a| ((a.tail_df - 2.0) / a.tail_df).sqrt()).collect();

        let mut prices: Vec<f64> = cfg.assets.iter().map(|a| a.initial_price).collect();
        let mut candles: Vec<Candle> = Vec::with_capacity(n_periods * n_assets);
        let mut garch_h = 1.0_f64; // conditional variance multiplier
                                   // Asset → owning block (validated disjoint); None = global factor.
        let mut asset_block: Vec<Option<usize>> = vec![None; n_assets];
        for (b, block) in cfg.blocks.iter().enumerate() {
            for &m in &block.members {
                asset_block[m] = Some(b);
            }
        }
        let mut r_blocks = vec![0.0_f64; cfg.blocks.len()];

        for period in 0..n_periods {
            let date = cfg.start + (period / cfg.periods_per_day as usize) as i64;
            let params: RegimeParams = cfg.regime_at(date).params();
            let mut opens = prices.clone();
            let mut highs = prices.clone();
            let mut lows = prices.clone();
            let mut path_turnover = vec![0.0_f64; n_assets];

            for _ in 0..cfg.substeps {
                // Common factor increment, with optional GARCH clustering.
                let z: f64 = normal.sample(&mut rng);
                let vol_mult = garch_h.sqrt();
                let mut r_m = params.drift(dt_sub) * cfg.factor_scale.drift
                    + params.vol(dt_sub) * cfg.factor_scale.vol * vol_mult * z;
                if let Some(g) = cfg.garch {
                    garch_h = g.omega() + g.alpha * z * z * garch_h + g.beta * garch_h;
                }
                // Market-wide jump: arrival probability is scale-free so
                // the RNG draw sequence is identical across calibrations.
                if rng.gen::<f64>() < params.jump_rate(dt_sub) {
                    let j: f64 = normal.sample(&mut rng);
                    r_m += cfg.factor_scale.jump * (params.jump_mean + params.jump_vol * j);
                }
                // Block factors: one fresh shock per block, in block order
                // (no draws at all when `blocks` is empty, preserving the
                // legacy single-factor stream bit-for-bit).
                for (b, block) in cfg.blocks.iter().enumerate() {
                    let zb: f64 = normal.sample(&mut rng);
                    r_blocks[b] = block.drift_shift * dt_sub
                        + block.global_loading * r_m
                        + block.local_vol * dt_sub.sqrt() * vol_mult * zb;
                }
                for (i, spec) in cfg.assets.iter().enumerate() {
                    let factor = match asset_block[i] {
                        Some(b) => r_blocks[b],
                        None => r_m,
                    };
                    let t_shock: f64 = tails[i].sample(&mut rng) * tail_scale[i];
                    let mut r = spec.beta * factor
                        + spec.alpha * dt_sub
                        + spec.idio_vol * dt_sub.sqrt() * t_shock;
                    // Rare idiosyncratic jump (exchange outages, forks...).
                    if rng.gen::<f64>() < 2.0 * dt_sub {
                        let j: f64 = normal.sample(&mut rng);
                        r += -0.02 + 0.05 * j;
                    }
                    // Clamp a single sub-step to ±50% to keep prices sane.
                    r = r.clamp(-0.5, 0.5);
                    let p = (prices[i] * r.exp()).max(1e-12);
                    path_turnover[i] += (p - prices[i]).abs();
                    prices[i] = p;
                    highs[i] = highs[i].max(p);
                    lows[i] = lows[i].min(p);
                }
            }

            for i in 0..n_assets {
                let open = opens[i];
                let close = prices[i];
                let high = highs[i].max(open).max(close);
                let low = lows[i].min(open).min(close);
                // Volume rises with realized intra-period movement.
                let activity = path_turnover[i] / open.max(1e-12);
                let noise: f64 = (0.35 * normal.sample(&mut rng)).exp();
                let volume = cfg.assets[i].base_volume * (1.0 + 8.0 * activity) * noise;
                candles.push(Candle::new(open, high, low, close, volume));
                opens[i] = close;
            }
        }

        MarketData::new(
            cfg.assets.iter().map(|a| a.name.clone()).collect(),
            cfg.start,
            cfg.periods_per_day,
            n_assets,
            candles,
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn small_config() -> GeneratorConfig {
        GeneratorConfig {
            assets: AssetSpec::top11(),
            start: Date::new(2020, 1, 1),
            end: Date::new(2020, 3, 1),
            periods_per_day: 4,
            substeps: 6,
            calendar: vec![(Date::new(2020, 1, 1), Regime::MildBull)],
            garch: None,
            factor_scale: FactorScale::unit(),
            blocks: Vec::new(),
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = MarketGenerator::new(small_config()).unwrap();
        let a = g.generate(7);
        let b = g.generate(7);
        assert_eq!(a.num_periods(), b.num_periods());
        for t in 0..a.num_periods() {
            for i in 0..a.num_assets() {
                assert_eq!(a.candle(t, i), b.candle(t, i));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g = MarketGenerator::new(small_config()).unwrap();
        let a = g.generate(1);
        let b = g.generate(2);
        assert_ne!(a.candle(10, 0).close, b.candle(10, 0).close);
    }

    #[test]
    fn period_count_matches_config() {
        let cfg = small_config();
        let expected = 60 * 4; // 60 days, 4 candles/day
        assert_eq!(cfg.num_periods(), expected);
        let data = MarketGenerator::new(cfg).unwrap().generate(0);
        assert_eq!(data.num_periods(), expected);
    }

    #[test]
    fn candles_chain_open_to_previous_close() {
        let g = MarketGenerator::new(small_config()).unwrap();
        let d = g.generate(3);
        for t in 1..d.num_periods() {
            for i in 0..d.num_assets() {
                assert_eq!(d.candle(t, i).open, d.candle(t - 1, i).close);
            }
        }
    }

    #[test]
    fn bull_regime_tends_upward() {
        let mut cfg = small_config();
        cfg.calendar = vec![(cfg.start, Regime::StrongBull)];
        cfg.end = Date::new(2020, 12, 1);
        let d = MarketGenerator::new(cfg).unwrap().generate(11);
        let last = d.num_periods() - 1;
        // With a strong-bull common factor, most assets should appreciate.
        let ups =
            (0..d.num_assets()).filter(|&i| d.candle(last, i).close > d.candle(0, i).open).count();
        assert!(ups >= 8, "only {ups}/11 assets rose in a strong bull market");
    }

    #[test]
    fn crash_regime_tends_downward() {
        let mut cfg = small_config();
        cfg.calendar = vec![(cfg.start, Regime::Crash)];
        let d = MarketGenerator::new(cfg).unwrap().generate(11);
        let last = d.num_periods() - 1;
        let downs =
            (0..d.num_assets()).filter(|&i| d.candle(last, i).close < d.candle(0, i).open).count();
        assert!(downs >= 8, "only {downs}/11 assets fell in a crash market");
    }

    #[test]
    fn regime_calendar_lookup() {
        let mut cfg = small_config();
        cfg.calendar =
            vec![(Date::new(2020, 1, 1), Regime::MildBull), (Date::new(2020, 2, 1), Regime::Crash)];
        assert_eq!(cfg.regime_at(Date::new(2019, 12, 1)), Regime::MildBull);
        assert_eq!(cfg.regime_at(Date::new(2020, 1, 15)), Regime::MildBull);
        assert_eq!(cfg.regime_at(Date::new(2020, 2, 1)), Regime::Crash);
        assert_eq!(cfg.regime_at(Date::new(2020, 6, 1)), Regime::Crash);
    }

    #[test]
    fn validation_catches_errors() {
        let mut cfg = small_config();
        cfg.assets.clear();
        assert!(cfg.validate().is_err());

        let mut cfg = small_config();
        cfg.end = cfg.start;
        assert!(cfg.validate().is_err());

        let mut cfg = small_config();
        cfg.substeps = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = small_config();
        cfg.calendar =
            vec![(Date::new(2020, 2, 1), Regime::Bear), (Date::new(2020, 1, 1), Regime::Crash)];
        assert!(cfg.validate().is_err());

        let mut cfg = small_config();
        cfg.assets[0].tail_df = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn garch_increases_volatility_clustering() {
        use crate::stats::abs_return_autocorrelation;
        let mut plain = small_config();
        plain.end = Date::new(2020, 12, 1);
        plain.calendar = vec![(plain.start, Regime::Sideways)]; // isolate GARCH
        let mut clustered = plain.clone();
        clustered.garch = Some(GarchParams { alpha: 0.25, beta: 0.7 });

        let mean_ac = |cfg: GeneratorConfig| -> f64 {
            let d = MarketGenerator::new(cfg).unwrap().generate(8);
            (0..d.num_assets()).map(|a| abs_return_autocorrelation(&d, a, 1)).sum::<f64>()
                / d.num_assets() as f64
        };
        let ac_plain = mean_ac(plain);
        let ac_garch = mean_ac(clustered);
        assert!(
            ac_garch > ac_plain + 0.01,
            "GARCH should raise |return| autocorrelation: {ac_plain} vs {ac_garch}"
        );
    }

    #[test]
    fn garch_validation() {
        assert!(GarchParams::typical().validate().is_ok());
        assert!(GarchParams { alpha: 0.5, beta: 0.6 }.validate().is_err());
        assert!(GarchParams { alpha: -0.1, beta: 0.5 }.validate().is_err());
        assert!((GarchParams::typical().omega() - 0.05).abs() < 1e-12);
        let mut cfg = small_config();
        cfg.garch = Some(GarchParams { alpha: 0.9, beta: 0.2 });
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn unit_factor_scale_is_bitwise_identical_to_legacy() {
        // Multiplying by 1.0 must not perturb a single bit, so configs
        // predating `factor_scale`/`blocks` regenerate their exact data.
        let mut cfg = small_config();
        cfg.garch = Some(GarchParams::typical());
        let baseline = MarketGenerator::new(cfg.clone()).unwrap().generate(7);
        cfg.factor_scale = FactorScale::unit();
        cfg.blocks = Vec::new();
        let scaled = MarketGenerator::new(cfg).unwrap().generate(7);
        for t in 0..baseline.num_periods() {
            for i in 0..baseline.num_assets() {
                assert_eq!(baseline.candle(t, i), scaled.candle(t, i));
            }
        }
    }

    #[test]
    fn damped_factor_scale_reduces_dispersion() {
        let mut wild = small_config();
        wild.end = Date::new(2020, 6, 1);
        let mut tame = wild.clone();
        tame.factor_scale = FactorScale { drift: 0.2, vol: 0.2, jump: 0.2 };
        for a in &mut tame.assets {
            a.idio_vol *= 0.2;
        }
        let spread = |cfg: GeneratorConfig| -> f64 {
            let d = MarketGenerator::new(cfg).unwrap().generate(5);
            let last = d.num_periods() - 1;
            (0..d.num_assets())
                .map(|i| (d.candle(last, i).close / d.candle(0, i).open).ln().abs())
                .sum::<f64>()
        };
        let s_wild = spread(wild);
        let s_tame = spread(tame);
        assert!(
            s_tame < s_wild * 0.6,
            "damped scale did not calm the market: {s_tame} vs {s_wild}"
        );
    }

    fn return_correlation(d: &MarketData, a: usize, b: usize) -> f64 {
        use crate::stats::log_returns;
        let (ra, rb) = (log_returns(d, a), log_returns(d, b));
        let n = ra.len() as f64;
        let (ma, mb) = (ra.iter().sum::<f64>() / n, rb.iter().sum::<f64>() / n);
        let cov: f64 = ra.iter().zip(&rb).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = ra.iter().map(|x| (x - ma).powi(2)).sum();
        let vb: f64 = rb.iter().map(|y| (y - mb).powi(2)).sum();
        cov / (va.sqrt() * vb.sqrt()).max(1e-12)
    }

    #[test]
    fn blocks_raise_within_block_correlation_above_cross_block() {
        let mut cfg = small_config();
        cfg.end = Date::new(2020, 12, 1);
        cfg.assets.truncate(8);
        // Two independent 4-asset blocks with strong local factors.
        cfg.blocks = vec![
            FactorBlock {
                name: "a".into(),
                members: vec![0, 1, 2, 3],
                global_loading: 0.2,
                local_vol: 0.9,
                drift_shift: 0.0,
            },
            FactorBlock {
                name: "b".into(),
                members: vec![4, 5, 6, 7],
                global_loading: 0.2,
                local_vol: 0.9,
                drift_shift: 0.0,
            },
        ];
        let d = MarketGenerator::new(cfg).unwrap().generate(17);
        let within = (return_correlation(&d, 0, 1)
            + return_correlation(&d, 2, 3)
            + return_correlation(&d, 4, 5)
            + return_correlation(&d, 6, 7))
            / 4.0;
        let across = (return_correlation(&d, 0, 4)
            + return_correlation(&d, 1, 5)
            + return_correlation(&d, 2, 6)
            + return_correlation(&d, 3, 7))
            / 4.0;
        assert!(
            within > across + 0.1,
            "block structure missing: within {within} vs across {across}"
        );
    }

    #[test]
    fn block_validation_catches_errors() {
        let block = |members: Vec<usize>, loading: f64| FactorBlock {
            name: "x".into(),
            members,
            global_loading: loading,
            local_vol: 0.5,
            drift_shift: 0.0,
        };
        let mut cfg = small_config();
        cfg.blocks = vec![block(vec![], 0.5)];
        assert!(cfg.validate().is_err(), "empty block accepted");

        let mut cfg = small_config();
        cfg.blocks = vec![block(vec![99], 0.5)];
        assert!(cfg.validate().is_err(), "out-of-range member accepted");

        let mut cfg = small_config();
        cfg.blocks = vec![block(vec![0, 1], 0.5), block(vec![1, 2], 0.5)];
        assert!(cfg.validate().is_err(), "overlapping blocks accepted");

        let mut cfg = small_config();
        cfg.blocks = vec![block(vec![0], 1.5)];
        assert!(cfg.validate().is_err(), "loading > 1 accepted");

        let mut cfg = small_config();
        cfg.factor_scale = FactorScale { drift: -1.0, vol: 1.0, jump: 1.0 };
        assert!(cfg.validate().is_err(), "negative scale accepted");
    }

    #[test]
    fn top11_has_eleven_distinct_names() {
        let specs = AssetSpec::top11();
        assert_eq!(specs.len(), 11);
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
    }
}
