//! Minimal calendar-date type.
//!
//! The workspace only needs day-resolution dates to express the Table 1
//! train/backtest splits and to map simulation periods onto regime eras, so
//! we implement a small proleptic-Gregorian date rather than pulling in a
//! calendar dependency.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A calendar date (proleptic Gregorian), stored as days since 1970-01-01.
///
/// # Example
///
/// ```
/// use spikefolio_market::Date;
///
/// let d: Date = "2016/08/01".parse()?;
/// assert_eq!(d.year(), 2016);
/// assert_eq!(d + 31, "2016/09/01".parse()?);
/// # Ok::<(), spikefolio_market::time::ParseDateError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    days: i64,
}

const DAYS_PER_400Y: i64 = 146_097;
const DAYS_PER_100Y: i64 = 36_524;
const DAYS_PER_4Y: i64 = 1_461;

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl Date {
    /// Creates a date from year/month/day.
    ///
    /// # Panics
    ///
    /// Panics if the month or day is out of range for the given year.
    pub fn new(year: i32, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day {day} out of range for {year}-{month:02}"
        );
        // Days from 1970-01-01 to the start of `year`.
        let y = year as i64 - 1970;
        let mut days = y * 365;
        // Count leap days between 1970 and `year` (exclusive).
        let leaps = |to: i64| -> i64 {
            // Number of leap years in [1, to] (years counted from year 1).
            to / 4 - to / 100 + to / 400
        };
        days += leaps(year as i64 - 1) - leaps(1969);
        for m in 1..month {
            days += days_in_month(year, m) as i64;
        }
        days += day as i64 - 1;
        Self { days }
    }

    /// Date from raw days since 1970-01-01.
    pub fn from_days(days: i64) -> Self {
        Self { days }
    }

    /// Days since 1970-01-01.
    pub fn days_since_epoch(self) -> i64 {
        self.days
    }

    /// Decomposes into `(year, month, day)`.
    pub fn ymd(self) -> (i32, u32, u32) {
        // Convert to days since 0000-03-01 (civil-from-days algorithm,
        // Howard Hinnant's date algorithms).
        let z = self.days + 719_468;
        let era = z.div_euclid(DAYS_PER_400Y);
        let doe = z.rem_euclid(DAYS_PER_400Y);
        let yoe =
            (doe - doe / (DAYS_PER_4Y - 1) + doe / DAYS_PER_100Y - doe / (DAYS_PER_400Y - 1)) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        let year = if m <= 2 { y + 1 } else { y } as i32;
        (year, m, d)
    }

    /// Calendar year.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// Calendar month (1–12).
    pub fn month(self) -> u32 {
        self.ymd().1
    }

    /// Day of month (1–31).
    pub fn day(self) -> u32 {
        self.ymd().2
    }

    /// Whole days from `self` to `other` (`other - self`).
    pub fn days_until(self, other: Date) -> i64 {
        other.days - self.days
    }
}

impl std::ops::Add<i64> for Date {
    type Output = Date;

    fn add(self, rhs: i64) -> Date {
        Date { days: self.days + rhs }
    }
}

impl std::ops::Sub<i64> for Date {
    type Output = Date;

    fn sub(self, rhs: i64) -> Date {
        Date { days: self.days - rhs }
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}/{m:02}/{d:02}")
    }
}

/// Error returned when parsing a date from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDateError {
    input: String,
}

impl fmt::Display for ParseDateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid date syntax: {:?} (expected YYYY/MM/DD)", self.input)
    }
}

impl std::error::Error for ParseDateError {}

impl FromStr for Date {
    type Err = ParseDateError;

    /// Parses `YYYY/MM/DD` or `YYYY-MM-DD`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseDateError { input: s.to_owned() };
        let parts: Vec<&str> =
            if s.contains('/') { s.split('/').collect() } else { s.split('-').collect() };
        if parts.len() != 3 {
            return Err(err());
        }
        let year: i32 = parts[0].parse().map_err(|_| err())?;
        let month: u32 = parts[1].parse().map_err(|_| err())?;
        let day: u32 = parts[2].parse().map_err(|_| err())?;
        if !(1..=12).contains(&month) || day < 1 || day > days_in_month(year, month) {
            return Err(err());
        }
        Ok(Date::new(year, month, day))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::new(1970, 1, 1).days_since_epoch(), 0);
        assert_eq!(Date::new(1970, 1, 2).days_since_epoch(), 1);
    }

    #[test]
    fn known_dates_round_trip() {
        for &(y, m, d) in &[
            (2016, 8, 1),
            (2019, 4, 14),
            (2020, 2, 29),
            (2021, 8, 1),
            (2000, 2, 29),
            (1999, 12, 31),
        ] {
            let date = Date::new(y, m, d);
            assert_eq!(date.ymd(), (y, m, d), "round-trip failed for {y}-{m}-{d}");
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2000));
        assert!(is_leap(2020));
        assert!(!is_leap(1900));
        assert!(!is_leap(2021));
    }

    #[test]
    fn arithmetic_crosses_month_and_year() {
        let d = Date::new(2019, 12, 31) + 1;
        assert_eq!(d.ymd(), (2020, 1, 1));
        let d2 = Date::new(2020, 3, 1) - 1;
        assert_eq!(d2.ymd(), (2020, 2, 29));
    }

    #[test]
    fn days_until_matches_table1_span() {
        let start: Date = "2016/08/01".parse().unwrap();
        let end: Date = "2019/08/01".parse().unwrap();
        // 3 years incl. one leap day.
        assert_eq!(start.days_until(end), 1095);
    }

    #[test]
    fn parse_accepts_both_separators() {
        assert_eq!("2016/08/01".parse::<Date>().unwrap(), Date::new(2016, 8, 1));
        assert_eq!("2016-08-01".parse::<Date>().unwrap(), Date::new(2016, 8, 1));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("2016/13/01".parse::<Date>().is_err());
        assert!("2016/02/30".parse::<Date>().is_err());
        assert!("hello".parse::<Date>().is_err());
        assert!("2016/08".parse::<Date>().is_err());
    }

    #[test]
    fn display_uses_paper_format() {
        assert_eq!(Date::new(2019, 4, 14).to_string(), "2019/04/14");
    }

    #[test]
    fn ordering_follows_time() {
        assert!(Date::new(2016, 8, 1) < Date::new(2019, 4, 14));
    }

    #[test]
    fn exhaustive_round_trip_over_decade() {
        // Every day from 2015-01-01 to 2025-01-01 must round-trip through ymd.
        let start = Date::new(2015, 1, 1).days_since_epoch();
        let end = Date::new(2025, 1, 1).days_since_epoch();
        let mut prev = None;
        for days in start..end {
            let d = Date::from_days(days);
            let (y, m, dd) = d.ymd();
            assert_eq!(Date::new(y, m, dd).days_since_epoch(), days);
            if let Some((py, pm, _)) = prev {
                // Months only move forward (or wrap at year boundary).
                assert!(y > py || (y == py && m >= pm));
            }
            prev = Some((y, m, dd));
        }
    }
}
