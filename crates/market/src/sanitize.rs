//! Market-data sanitization: detect and repair corrupted candles.
//!
//! Real exchange feeds contain NaNs, zero prices, inverted candle bodies,
//! and fat-fingered outlier ticks; the paper's pipeline assumes a clean
//! dense OHLCV grid. [`sanitize_market`] walks a [`MarketData`] once per
//! asset, classifies every violation as an [`IssueKind`], and — under
//! [`RepairPolicy::Repair`] — rewrites broken candles by forward-filling
//! the last good close and clamps outlier moves to a configurable
//! relative step. [`RepairPolicy::Reject`] turns any issue into an error
//! instead, for pipelines that must not run on repaired data.
//!
//! The returned [`SanitizeReport`] is the audit trail: every issue with
//! its grid coordinates and whether it was repaired.

use crate::candle::Candle;
use crate::data::MarketData;
use serde::{Deserialize, Serialize};

/// What to do with candles that fail validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairPolicy {
    /// Rewrite broken candles in place (forward-fill / clamp).
    Repair,
    /// Treat any issue as fatal: return [`SanitizeError`], data untouched.
    Reject,
}

/// Sanitizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SanitizeConfig {
    /// Repair or reject on detection.
    pub policy: RepairPolicy,
    /// Maximum `|close_t / close_{t-1} - 1|` before a candle counts as an
    /// outlier tick; `None` disables outlier detection. Structurally
    /// broken candles are always detected.
    pub max_rel_step: Option<f64>,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        // 5.0 = a 6x move within one period. Far beyond anything the
        // regime generator produces, including its jump component, so a
        // fault-free synthetic market sanitizes to zero issues.
        Self { policy: RepairPolicy::Repair, max_rel_step: Some(5.0) }
    }
}

/// One class of candle defect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IssueKind {
    /// A price or volume field is NaN or infinite.
    NonFinite,
    /// A price field is zero or negative.
    NonPositive,
    /// `low`/`high` do not bracket the open–close body.
    BodyInvariant,
    /// Volume is negative.
    NegativeVolume,
    /// Close moved more than the configured relative step from the
    /// previous close.
    Outlier {
        /// Observed relative step `close_t / close_{t-1} - 1`.
        rel_step: f64,
    },
    /// A whole period was absent from the source feed (detected by the
    /// lenient CSV loader, which forward-fills it).
    MissingPeriod,
}

impl IssueKind {
    /// Short machine-readable label (telemetry field value).
    pub fn label(&self) -> &'static str {
        match self {
            IssueKind::NonFinite => "non_finite",
            IssueKind::NonPositive => "non_positive",
            IssueKind::BodyInvariant => "body_invariant",
            IssueKind::NegativeVolume => "negative_volume",
            IssueKind::Outlier { .. } => "outlier",
            IssueKind::MissingPeriod => "missing_period",
        }
    }
}

/// One detected defect, located on the period × asset grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Issue {
    /// Period index of the offending candle.
    pub period: usize,
    /// Asset index of the offending candle.
    pub asset: usize,
    /// What was wrong.
    pub kind: IssueKind,
    /// Whether the sanitizer rewrote the candle.
    pub repaired: bool,
}

/// Audit trail of one sanitization pass.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SanitizeReport {
    /// Every detected issue, in grid order.
    pub issues: Vec<Issue>,
}

impl SanitizeReport {
    /// Whether the data had no issues at all.
    pub fn clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// How many candles were rewritten.
    pub fn repairs(&self) -> usize {
        self.issues.iter().filter(|i| i.repaired).count()
    }

    /// Appends another report's issues (used by the lenient CSV loader).
    pub fn merge(&mut self, other: SanitizeReport) {
        self.issues.extend(other.issues);
    }
}

/// Sanitization failed under [`RepairPolicy::Reject`].
#[derive(Debug, Clone, PartialEq)]
pub struct SanitizeError {
    /// Everything that was wrong with the data.
    pub issues: Vec<Issue>,
}

impl std::fmt::Display for SanitizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "market data rejected: {} issue(s)", self.issues.len())?;
        if let Some(first) = self.issues.first() {
            write!(
                f,
                ", first: {} at period {} asset {}",
                first.kind.label(),
                first.period,
                first.asset
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for SanitizeError {}

fn structural_issue(c: &Candle) -> Option<IssueKind> {
    let prices = [c.open, c.high, c.low, c.close];
    if prices.iter().any(|p| !p.is_finite()) || !c.volume.is_finite() {
        return Some(IssueKind::NonFinite);
    }
    if prices.iter().any(|p| *p <= 0.0) {
        return Some(IssueKind::NonPositive);
    }
    if c.low > c.open.min(c.close) || c.high < c.open.max(c.close) {
        return Some(IssueKind::BodyInvariant);
    }
    if c.volume < 0.0 {
        return Some(IssueKind::NegativeVolume);
    }
    None
}

/// First usable reference price for an asset: scans forward for the first
/// structurally valid candle and takes its open. Falls back to 1.0 on a
/// column with no valid candle at all.
fn backfill_reference(data: &MarketData, asset: usize) -> f64 {
    (0..data.num_periods())
        .map(|t| data.candle(t, asset))
        .find(|c| structural_issue(c).is_none())
        .map(|c| c.open)
        .unwrap_or(1.0)
}

/// Validates (and under [`RepairPolicy::Repair`] rewrites) every candle.
///
/// Repairs: structurally broken candles become flat candles at the last
/// good close (forward-fill; the first periods of a broken column
/// back-fill from the first valid candle); outlier closes are clamped to
/// `last_good · (1 ± max_rel_step)` while preserving move direction.
///
/// # Errors
///
/// Under [`RepairPolicy::Reject`], returns [`SanitizeError`] listing every
/// issue and leaves `data` untouched.
pub fn sanitize_market(
    data: &mut MarketData,
    cfg: &SanitizeConfig,
) -> Result<SanitizeReport, SanitizeError> {
    let mut report = SanitizeReport::default();
    let repair = cfg.policy == RepairPolicy::Repair;
    for a in 0..data.num_assets() {
        let mut last_good: Option<f64> = None;
        for t in 0..data.num_periods() {
            let c = data.candle(t, a);
            if let Some(kind) = structural_issue(&c) {
                report.issues.push(Issue { period: t, asset: a, kind, repaired: repair });
                if repair {
                    let fill = last_good.unwrap_or_else(|| backfill_reference(data, a));
                    data.set_candle_unchecked(t, a, Candle::flat(fill));
                    last_good = Some(fill);
                }
                continue;
            }
            if let (Some(limit), Some(prev)) = (cfg.max_rel_step, last_good) {
                let rel_step = c.close / prev - 1.0;
                if rel_step.abs() > limit {
                    report.issues.push(Issue {
                        period: t,
                        asset: a,
                        kind: IssueKind::Outlier { rel_step },
                        repaired: repair,
                    });
                    if repair {
                        // Clamp a hair inside the limit: landing exactly on
                        // it can round the recomputed relative step just
                        // past the threshold, and repairs must converge.
                        let inside = limit * (1.0 - 1e-9);
                        let clamped = prev * (1.0 + inside.copysign(rel_step));
                        let repaired = Candle::new(
                            prev,
                            prev.max(clamped),
                            prev.min(clamped),
                            clamped,
                            c.volume,
                        );
                        data.set_candle_unchecked(t, a, repaired);
                        last_good = Some(clamped);
                    }
                    continue;
                }
            }
            last_good = Some(c.close);
        }
    }
    if !repair && !report.clean() {
        return Err(SanitizeError { issues: report.issues });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::experiments::ExperimentPreset;
    use crate::time::Date;

    fn toy() -> MarketData {
        // 2 assets × 8 periods, both drifting 1.0/period.
        let candles = (0..8).flat_map(|t| [Candle::flat(100.0 + t as f64); 2]).collect::<Vec<_>>();
        MarketData::new(vec!["A".into(), "B".into()], Date::new(2020, 1, 1), 1, 2, candles)
    }

    #[test]
    fn clean_data_reports_clean_and_is_untouched() {
        let mut d = toy();
        let before = d.clone();
        let report = sanitize_market(&mut d, &SanitizeConfig::default()).unwrap();
        assert!(report.clean());
        assert_eq!(report.repairs(), 0);
        assert_eq!(d, before);
    }

    #[test]
    fn generated_market_is_clean_under_defaults() {
        let mut d = ExperimentPreset::experiment1().shrunk(5, 10).generate(7);
        let report = sanitize_market(&mut d, &SanitizeConfig::default()).unwrap();
        assert!(report.clean(), "generator produced issues: {:?}", report.issues);
    }

    #[test]
    fn nan_candle_is_forward_filled() {
        let mut d = toy();
        d.set_candle_unchecked(2, 0, Candle { open: f64::NAN, ..Candle::flat(1.0) });
        let report = sanitize_market(&mut d, &SanitizeConfig::default()).unwrap();
        assert_eq!(report.issues.len(), 1);
        assert_eq!(report.issues[0].kind, IssueKind::NonFinite);
        assert!(report.issues[0].repaired);
        // Forward-filled from period 1's close.
        assert_eq!(d.candle(2, 0), Candle::flat(d.candle(1, 0).close));
    }

    #[test]
    fn broken_first_period_backfills() {
        let mut d = toy();
        d.set_candle_unchecked(0, 1, Candle { close: -3.0, ..Candle::flat(1.0) });
        sanitize_market(&mut d, &SanitizeConfig::default()).unwrap();
        // Back-filled from the first valid candle's open (period 1).
        assert_eq!(d.candle(0, 1).close, d.candle(1, 1).open);
    }

    #[test]
    fn outlier_is_clamped_preserving_direction() {
        let mut d = toy();
        let spike = Candle::new(101.0, 9000.0, 101.0, 9000.0, 1.0);
        d.set_candle_unchecked(2, 0, spike);
        let cfg = SanitizeConfig { max_rel_step: Some(0.5), ..SanitizeConfig::default() };
        let report = sanitize_market(&mut d, &cfg).unwrap();
        assert!(matches!(report.issues[0].kind, IssueKind::Outlier { rel_step } if rel_step > 0.5));
        // Clamps land a hair inside the limit (see the repair code), so
        // compare with a tolerance above that margin.
        let prev = d.candle(1, 0).close;
        assert!((d.candle(2, 0).close - prev * 1.5).abs() < 1e-6);
        // Downward spikes clamp downward.
        let mut d2 = toy();
        d2.set_candle_unchecked(2, 0, Candle::new(101.0, 101.0, 0.1, 0.1, 1.0));
        sanitize_market(&mut d2, &cfg).unwrap();
        assert!((d2.candle(2, 0).close - prev * 0.5).abs() < 1e-6);
    }

    #[test]
    fn inverted_body_and_negative_volume_are_detected() {
        let mut d = toy();
        d.set_candle_unchecked(1, 0, Candle { low: 500.0, ..Candle::flat(100.0) });
        d.set_candle_unchecked(3, 1, Candle { volume: -2.0, ..Candle::flat(103.0) });
        let report = sanitize_market(&mut d, &SanitizeConfig::default()).unwrap();
        let kinds: Vec<_> = report.issues.iter().map(|i| i.kind).collect();
        assert!(kinds.contains(&IssueKind::BodyInvariant));
        assert!(kinds.contains(&IssueKind::NegativeVolume));
    }

    #[test]
    fn reject_policy_errors_and_leaves_data_untouched() {
        let mut d = toy();
        // NaN would break the PartialEq comparison below, so use a
        // non-positive price as the defect.
        d.set_candle_unchecked(2, 0, Candle { close: -3.0, ..Candle::flat(1.0) });
        let before = d.clone();
        let cfg = SanitizeConfig { policy: RepairPolicy::Reject, ..SanitizeConfig::default() };
        let err = sanitize_market(&mut d, &cfg).unwrap_err();
        assert_eq!(err.issues.len(), 1);
        assert!(err.to_string().contains("non_positive"), "{err}");
        assert_eq!(d, before);
    }

    #[test]
    fn repaired_data_passes_a_second_pass() {
        let mut d = toy();
        d.set_candle_unchecked(2, 0, Candle { open: f64::INFINITY, ..Candle::flat(1.0) });
        d.set_candle_unchecked(5, 1, Candle::new(105.0, 99999.0, 105.0, 99999.0, 1.0));
        let cfg = SanitizeConfig { max_rel_step: Some(0.5), ..SanitizeConfig::default() };
        let first = sanitize_market(&mut d, &cfg).unwrap();
        assert_eq!(first.repairs(), 2);
        let second = sanitize_market(&mut d, &cfg).unwrap();
        assert!(second.clean(), "repair must converge: {:?}", second.issues);
    }
}
