//! The desk flight recorder: a bounded ring of structured events with a
//! crash-safe, schema-versioned dump.
//!
//! Events are written through shared references (`&self`), so one
//! [`FlightRecorder`] behind an [`Arc`] can be fed by the desk loop while
//! the process panic hook holds a second handle for the crash dump. Each
//! ring slot is an independent mutex, so a writer never blocks behind a
//! dump for longer than one slot copy, and the dump itself observes a
//! consistent per-slot snapshot in sequence order.

use spikefolio_resilience::atomic_write;
use spikefolio_resilience::hook::chain_panic_hook;
use spikefolio_telemetry::value::Value;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Schema tag of the flight-recorder dump file.
pub const BLACKBOX_SCHEMA: &str = "spikefolio.blackbox.v1";

/// One structured event in the flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct BlackboxEvent {
    /// Global sequence number (0-based, monotone across the run).
    pub seq: u64,
    /// Pipeline stage, e.g. `feed`, `fine_tune`, `gate/integrity`,
    /// `swap`, `panic`.
    pub stage: String,
    /// Structured payload, preserved in insertion order.
    pub fields: Vec<(String, Value)>,
}

impl BlackboxEvent {
    /// The event as a JSON-ready [`Value`] map (`seq`, `stage`, then the
    /// payload fields inline).
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = Vec::with_capacity(2 + self.fields.len());
        fields.push(("seq".to_owned(), Value::U64(self.seq)));
        fields.push(("stage".to_owned(), Value::Str(self.stage.clone())));
        fields.extend(self.fields.iter().cloned());
        Value::Map(fields)
    }
}

/// Bounded ring buffer of [`BlackboxEvent`]s with a crash-safe dump.
///
/// The ring holds the most recent `capacity` events; older events are
/// overwritten and counted as `dropped` in the dump header. Recording is
/// wait-free in the common case (one atomic fetch-add plus one
/// uncontended slot lock) and observe-only: it never feeds back into the
/// pipeline being recorded.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<BlackboxEvent>>>,
    seq: AtomicU64,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(Mutex::new(None));
        }
        Self { slots, seq: AtomicU64::new(0) }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events recorded so far (including any overwritten ones).
    pub fn seq_end(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Records one event; returns its sequence number.
    pub fn record(&self, stage: &str, fields: Vec<(String, Value)>) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let slot = (seq % self.slots.len() as u64) as usize;
        let event = BlackboxEvent { seq, stage: stage.to_owned(), fields };
        let mut guard = self.slots[slot].lock().unwrap_or_else(|e| e.into_inner());
        // Only move forward: a slower writer that lost the slot race to a
        // later (wrapped-around) event must not clobber it.
        if guard.as_ref().is_none_or(|held| held.seq < seq) {
            *guard = Some(event);
        }
        seq
    }

    /// The surviving events, oldest first.
    pub fn snapshot(&self) -> Vec<BlackboxEvent> {
        let mut events: Vec<BlackboxEvent> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// The dump as a JSON-ready [`Value`]: schema tag, ring geometry,
    /// drop count, and the ordered event tail.
    pub fn to_value(&self) -> Value {
        let events = self.snapshot();
        let seq_end = self.seq_end();
        let dropped = seq_end.saturating_sub(events.len() as u64);
        Value::Map(vec![
            ("schema".to_owned(), Value::Str(BLACKBOX_SCHEMA.to_owned())),
            ("capacity".to_owned(), Value::U64(self.slots.len() as u64)),
            ("seq_end".to_owned(), Value::U64(seq_end)),
            ("dropped".to_owned(), Value::U64(dropped)),
            (
                "events".to_owned(),
                Value::List(events.iter().map(BlackboxEvent::to_value).collect()),
            ),
        ])
    }

    /// Writes the dump atomically (temp file + fsync + rename), so a
    /// crash during the dump itself can never leave a torn file.
    ///
    /// # Errors
    ///
    /// Returns the underlying IO error from the atomic write.
    pub fn dump(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        atomic_write(path, self.to_value().to_json().as_bytes())
    }
}

/// Installs a chained panic hook that records the panic as a final
/// `panic` event (message + source location) and flushes the recorder to
/// `path` before the previous hook runs.
///
/// The previous hook (usually the default backtrace printer) still runs,
/// so panics stay visible on stderr; the dump is best-effort — a failing
/// disk cannot turn a panic into an abort.
pub fn install_panic_dump(recorder: Arc<FlightRecorder>, path: PathBuf) {
    chain_panic_hook(move |message, location| {
        let mut fields = vec![("message".to_owned(), Value::Str(message.to_owned()))];
        if let Some(location) = location {
            fields.push(("location".to_owned(), Value::Str(location.to_owned())));
        }
        recorder.record("panic", fields);
        let _ = recorder.dump(&path);
    });
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use spikefolio_telemetry::value::parse;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spikefolio-blackbox-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn ring_keeps_the_ordered_tail_and_counts_drops() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record("feed", vec![("round".to_owned(), Value::U64(i))]);
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        let v = rec.to_value();
        assert_eq!(v.get("schema").and_then(Value::as_str), Some(BLACKBOX_SCHEMA));
        assert_eq!(v.get("seq_end").and_then(Value::as_u64), Some(10));
        assert_eq!(v.get("dropped").and_then(Value::as_u64), Some(6));
    }

    #[test]
    fn dump_round_trips_through_json() {
        let rec = FlightRecorder::new(8);
        rec.record("fine_tune", vec![("round".to_owned(), Value::U64(2))]);
        rec.record("gate/reward", vec![("margin".to_owned(), Value::F64(0.25))]);
        let path = tmp("dump.json");
        rec.dump(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v = parse(&text).expect("dump is valid JSON");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some(BLACKBOX_SCHEMA));
        let events = v.get("events").and_then(Value::as_list).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].get("stage").and_then(Value::as_str), Some("gate/reward"));
        assert_eq!(events[1].get("margin").and_then(Value::as_f64), Some(0.25));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_writers_never_lose_sequence_order() {
        let rec = Arc::new(FlightRecorder::new(64));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..32u64 {
                        rec.record("stage", vec![("t".to_owned(), Value::U64(t * 100 + i))]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(rec.seq_end(), 128);
        let events = rec.snapshot();
        assert_eq!(events.len(), 64);
        // The surviving tail is exactly the last `capacity` sequence
        // numbers, strictly increasing.
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
        assert_eq!(events[0].seq, 64);
        assert_eq!(events[63].seq, 127);
    }
}
