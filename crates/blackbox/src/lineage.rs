//! The model lineage ledger: an append-only, torn-write-safe JSONL file
//! recording every candidate version's gate evaluation.
//!
//! Each line is a complete JSON object whose final field is a CRC32 of
//! all the bytes before it, so the reader can tell a torn append (crash
//! mid-line, truncated copy) from an intact entry without trusting the
//! line to parse. A torn line costs exactly itself: [`read_ledger`]
//! skips it, counts it, and keeps every intact entry around it.

use spikefolio_resilience::crc32;
use spikefolio_telemetry::value::{parse, Value};
use std::io::Write;
use std::path::Path;

/// Schema tag carried by every ledger line.
pub const LINEAGE_SCHEMA: &str = "spikefolio.lineage.v1";

/// Byte length of the CRC frame suffix `,"crc":"XXXXXXXX"}`.
const FRAME_LEN: usize = 18;

/// One candidate's trip through the desk gate, as recorded in the ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageEntry {
    /// Desk round that produced the candidate.
    pub round: u64,
    /// Version the candidate was fine-tuned from.
    pub parent_version: u64,
    /// Version the candidate became, if it was promoted.
    pub promoted_version: Option<u64>,
    /// Version left serving after the round.
    pub served_version: u64,
    /// First period index of the training window.
    pub window_from: u64,
    /// Periods revealed (window end) when the candidate trained.
    pub revealed: u64,
    /// Gate stage 1: did the checkpoint load CRC-clean (after heal)?
    pub integrity_ok: bool,
    /// Gate stage 2: candidate's held-out validation reward.
    pub candidate_reward: f64,
    /// Gate stage 2: incumbent's reward on the same held-out slice.
    pub incumbent_reward: f64,
    /// Gate stage 3: candidate's entropy drift from the serving baseline.
    pub entropy_drift: f64,
    /// Gate stage 3: configured drift bound.
    pub drift_bound: f64,
    /// Round outcome: `promoted`, `quarantined`, or `swap_failed`.
    pub outcome: String,
    /// Quarantine kind (`integrity` / `validation` / `drift`), if any.
    pub kind: Option<String>,
    /// Human-readable quarantine reason, if any.
    pub reason: Option<String>,
}

impl LineageEntry {
    /// The entry as a JSON-ready [`Value`] map (without the CRC frame).
    pub fn to_value(&self) -> Value {
        let opt_u64 = |v: &Option<u64>| v.map_or(Value::Null, Value::U64);
        let opt_str = |v: &Option<String>| v.clone().map_or(Value::Null, Value::Str);
        Value::Map(vec![
            ("schema".to_owned(), Value::Str(LINEAGE_SCHEMA.to_owned())),
            ("round".to_owned(), Value::U64(self.round)),
            ("parent_version".to_owned(), Value::U64(self.parent_version)),
            ("promoted_version".to_owned(), opt_u64(&self.promoted_version)),
            ("served_version".to_owned(), Value::U64(self.served_version)),
            ("window_from".to_owned(), Value::U64(self.window_from)),
            ("revealed".to_owned(), Value::U64(self.revealed)),
            ("integrity_ok".to_owned(), Value::Bool(self.integrity_ok)),
            ("candidate_reward".to_owned(), Value::F64(self.candidate_reward)),
            ("incumbent_reward".to_owned(), Value::F64(self.incumbent_reward)),
            ("entropy_drift".to_owned(), Value::F64(self.entropy_drift)),
            ("drift_bound".to_owned(), Value::F64(self.drift_bound)),
            ("outcome".to_owned(), Value::Str(self.outcome.clone())),
            ("kind".to_owned(), opt_str(&self.kind)),
            ("reason".to_owned(), opt_str(&self.reason)),
        ])
    }

    /// Parses an entry back from a ledger line's payload [`Value`].
    /// Non-finite rewards serialize as JSON `null` and read back as NaN.
    pub fn from_value(v: &Value) -> Option<Self> {
        if v.get("schema").and_then(Value::as_str) != Some(LINEAGE_SCHEMA) {
            return None;
        }
        let f64_or_nan = |key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
        Some(Self {
            round: v.get("round").and_then(Value::as_u64)?,
            parent_version: v.get("parent_version").and_then(Value::as_u64)?,
            promoted_version: v.get("promoted_version").and_then(Value::as_u64),
            served_version: v.get("served_version").and_then(Value::as_u64)?,
            window_from: v.get("window_from").and_then(Value::as_u64)?,
            revealed: v.get("revealed").and_then(Value::as_u64)?,
            integrity_ok: v.get("integrity_ok").and_then(Value::as_bool)?,
            candidate_reward: f64_or_nan("candidate_reward"),
            incumbent_reward: f64_or_nan("incumbent_reward"),
            entropy_drift: f64_or_nan("entropy_drift"),
            drift_bound: f64_or_nan("drift_bound"),
            outcome: v.get("outcome").and_then(Value::as_str)?.to_owned(),
            kind: v.get("kind").and_then(Value::as_str).map(str::to_owned),
            reason: v.get("reason").and_then(Value::as_str).map(str::to_owned),
        })
    }

    /// Frames the entry as one CRC-protected ledger line (no newline).
    pub fn to_line(&self) -> String {
        frame_line(&self.to_value().to_json())
    }

    /// Appends the entry (plus newline) to the ledger at `path`,
    /// creating the file if needed.
    ///
    /// # Errors
    ///
    /// Returns the underlying IO error from open/write.
    pub fn append(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path.as_ref())?;
        let mut line = self.to_line();
        line.push('\n');
        file.write_all(line.as_bytes())
    }
}

/// Wraps a one-line JSON object payload in the CRC frame: the closing
/// `}` is replaced by `,"crc":"XXXXXXXX"}` where the checksum covers the
/// payload bytes exactly as written.
fn frame_line(payload: &str) -> String {
    debug_assert!(payload.starts_with('{') && payload.ends_with('}'));
    let crc = crc32(payload.as_bytes());
    format!("{},\"crc\":\"{crc:08x}\"}}", &payload[..payload.len() - 1])
}

/// Validates a ledger line's CRC frame and returns the reconstructed
/// payload JSON, or `None` for torn/corrupt lines.
fn unframe_line(line: &str) -> Option<String> {
    if line.len() < FRAME_LEN + 2 || !line.ends_with("\"}") {
        return None;
    }
    let split = line.len().checked_sub(FRAME_LEN)?;
    if !line.is_char_boundary(split) {
        return None;
    }
    let (head, frame) = line.split_at(split);
    let hex = frame.strip_prefix(",\"crc\":\"")?.strip_suffix("\"}")?;
    let recorded = u32::from_str_radix(hex, 16).ok()?;
    let payload = format!("{head}}}");
    (crc32(payload.as_bytes()) == recorded).then_some(payload)
}

/// A parsed ledger: intact entries in file order, plus the count of
/// torn/corrupt lines the tolerant reader skipped.
#[derive(Debug, Default)]
pub struct LineageLog {
    /// Entries whose CRC frame and schema both checked out.
    pub entries: Vec<LineageEntry>,
    /// Lines dropped (torn append, bitrot, foreign schema).
    pub skipped: u64,
}

impl LineageLog {
    /// Walks the ancestry of `version` back to the warmup root: the
    /// entry that promoted it, then its parent's promotion, and so on.
    /// Returns promoting entries newest-first; empty if `version` never
    /// appears as a promotion.
    pub fn ancestry(&self, version: u64) -> Vec<&LineageEntry> {
        let mut chain = Vec::new();
        let mut cursor = version;
        while let Some(entry) =
            self.entries.iter().rev().find(|e| e.promoted_version == Some(cursor))
        {
            chain.push(entry);
            if entry.parent_version >= cursor || chain.len() > self.entries.len() {
                break; // defensive: a corrupt ledger must not loop us
            }
            cursor = entry.parent_version;
        }
        chain
    }
}

/// Reads a ledger tolerantly: every line whose CRC frame verifies and
/// whose payload parses under [`LINEAGE_SCHEMA`] becomes an entry;
/// everything else (torn final line, flipped bits, blank lines) is
/// counted in `skipped`. A missing file reads as an empty ledger.
///
/// # Errors
///
/// Returns IO errors other than `NotFound`.
pub fn read_ledger(path: impl AsRef<Path>) -> std::io::Result<LineageLog> {
    let text = match std::fs::read_to_string(path.as_ref()) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LineageLog::default()),
        Err(e) => return Err(e),
    };
    let mut log = LineageLog::default();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let entry = unframe_line(line)
            .and_then(|payload| parse(&payload).ok())
            .and_then(|v| LineageEntry::from_value(&v));
        match entry {
            Some(entry) => log.entries.push(entry),
            None => log.skipped += 1,
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use proptest::prelude::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spikefolio-lineage-{}-{name}", std::process::id()));
        p
    }

    fn entry(round: u64, promoted: Option<u64>) -> LineageEntry {
        LineageEntry {
            round,
            parent_version: promoted.map_or(round + 1, |v| v - 1),
            promoted_version: promoted,
            served_version: promoted.unwrap_or(1),
            window_from: round * 6,
            revealed: 40 + round * 6,
            integrity_ok: promoted.is_some(),
            candidate_reward: 0.01 * round as f64,
            incumbent_reward: -0.005,
            entropy_drift: 0.125,
            drift_bound: 0.75,
            outcome: if promoted.is_some() { "promoted" } else { "quarantined" }.to_owned(),
            kind: promoted.is_none().then(|| "integrity".to_owned()),
            reason: promoted.is_none().then(|| "crc mismatch \"torn\"".to_owned()),
        }
    }

    #[test]
    fn entries_round_trip_through_the_frame() {
        let path = tmp("roundtrip.jsonl");
        std::fs::remove_file(&path).ok();
        let a = entry(0, Some(2));
        let b = entry(1, None);
        a.append(&path).unwrap();
        b.append(&path).unwrap();
        let log = read_ledger(&path).unwrap();
        assert_eq!(log.skipped, 0);
        assert_eq!(log.entries, vec![a, b]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nan_rewards_survive_as_nan() {
        let mut e = entry(3, None);
        e.candidate_reward = f64::NAN;
        let payload = unframe_line(&e.to_line()).unwrap();
        let back = LineageEntry::from_value(&parse(&payload).unwrap()).unwrap();
        assert!(back.candidate_reward.is_nan());
        assert_eq!(back.incumbent_reward, e.incumbent_reward);
    }

    #[test]
    fn torn_tail_is_skipped_and_the_rest_survive() {
        let path = tmp("torn.jsonl");
        std::fs::remove_file(&path).ok();
        entry(0, Some(2)).append(&path).unwrap();
        entry(1, Some(3)).append(&path).unwrap();
        // Simulate a crash mid-append: half a line, no newline.
        let mut bytes = std::fs::read(&path).unwrap();
        let half = entry(2, None).to_line();
        bytes.extend_from_slice(&half.as_bytes()[..half.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();
        let log = read_ledger(&path).unwrap();
        assert_eq!(log.entries.len(), 2);
        assert_eq!(log.skipped, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_bit_fails_the_crc_not_the_reader() {
        let line = entry(5, Some(4)).to_line();
        let mut corrupt = line.clone().into_bytes();
        // Flip a digit inside the payload (never the frame syntax).
        let pos = line.find("\"round\":5").unwrap() + 9;
        corrupt[pos - 1] = b'6';
        let corrupt = String::from_utf8(corrupt).unwrap();
        assert!(unframe_line(&line).is_some());
        assert!(unframe_line(&corrupt).is_none());
    }

    #[test]
    fn missing_ledger_reads_empty() {
        let log = read_ledger(tmp("never-written.jsonl")).unwrap();
        assert!(log.entries.is_empty());
        assert_eq!(log.skipped, 0);
    }

    #[test]
    fn ancestry_walks_promotions_newest_first() {
        let log = LineageLog {
            entries: vec![entry(0, Some(2)), entry(1, None), entry(2, Some(3)), entry(3, Some(4))],
            skipped: 0,
        };
        let chain = log.ancestry(4);
        assert_eq!(
            chain.iter().map(|e| e.promoted_version).collect::<Vec<_>>(),
            vec![Some(4), Some(3), Some(2)]
        );
        assert!(log.ancestry(9).is_empty());
    }

    proptest! {
        // Torn-write safety: whatever byte prefix of a valid ledger a
        // crash leaves behind, the reader recovers every entry whose
        // final newline made it to disk and skips at most the one torn
        // line — it never errors and never fabricates entries.
        #[test]
        fn any_truncation_point_loses_at_most_the_torn_line(
            n_entries in 1usize..6,
            cut_back in 0usize..200,
        ) {
            let lines: Vec<String> = (0..n_entries)
                .map(|i| entry(i as u64, (i % 2 == 0).then(|| i as u64 + 2)).to_line())
                .collect();
            let mut bytes = Vec::new();
            for line in &lines {
                bytes.extend_from_slice(line.as_bytes());
                bytes.push(b'\n');
            }
            let cut = bytes.len() - cut_back % bytes.len();
            // Predict what survives: a line whose full payload made it to
            // disk is intact (its newline is optional — `lines()` still
            // yields it); a strict prefix is torn and must be skipped.
            let (mut consumed, mut intact, mut torn) = (0usize, 0usize, 0u64);
            for line in &lines {
                if consumed >= cut {
                    break;
                }
                if cut - consumed >= line.len() {
                    intact += 1;
                } else {
                    torn = 1;
                }
                consumed += line.len() + 1;
            }
            let path = tmp(&format!("prop-{n_entries}-{cut_back}.jsonl"));
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let log = read_ledger(&path).unwrap();
            std::fs::remove_file(&path).ok();
            prop_assert_eq!(log.entries.len(), intact);
            prop_assert_eq!(log.skipped, torn);
        }
    }
}
