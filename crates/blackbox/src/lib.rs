//! Continuous-learning observability: a crash-safe flight recorder and a
//! model lineage ledger for the live desk.
//!
//! The desk's train → gate → swap loop is only as debuggable as the
//! evidence it leaves behind when something goes wrong. This crate holds
//! the two durable evidence stores:
//!
//! * [`FlightRecorder`] — a bounded ring buffer of structured events
//!   spanning feed → fine-tune → gate → swap → serve, dumped to a
//!   schema-versioned file (`spikefolio.blackbox.v1`) on panic, fault, or
//!   demand. The ring is shared (`Arc`) between the desk loop and the
//!   process panic hook, so a mid-round crash still flushes the ordered
//!   tail of events leading up to the fault.
//! * [`LineageLedger`] — an append-only JSONL file
//!   (`spikefolio.lineage.v1`) recording, for every candidate version,
//!   its parent, training window, all three gate stage numbers, swap
//!   outcome, and quarantine reason. Every line carries its own CRC32
//!   frame, so a torn append (power loss mid-line) costs exactly one
//!   entry: the tolerant reader skips the torn line and keeps the rest.
//!
//! Both stores are observe-only: recording never feeds back into the
//! computation being recorded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod lineage;
pub mod recorder;

pub use lineage::{read_ledger, LineageEntry, LineageLog};
pub use recorder::{install_panic_dump, BlackboxEvent, FlightRecorder, BLACKBOX_SCHEMA};
