//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) used by the v2
//! checkpoint trailer. Implemented here so checkpoint integrity needs no
//! external crate.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (same value `cksum`-style tools report for the IEEE
/// polynomial with reflected input/output and final inversion).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"spikefolio-checkpoint payload 0123456789abcdef".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn detects_truncation() {
        let data = vec![0x5Au8; 512];
        let base = crc32(&data);
        for cut in [0, 1, 255, 511] {
            assert_ne!(crc32(&data[..cut]), base);
        }
    }
}
