//! Fault tolerance for `spikefolio`: deterministic fault injection,
//! training health guards, and hardened file IO.
//!
//! Training the paper's SDP agent is a long-running numerical pipeline
//! where a single non-finite gradient, a corrupted candle, or a truncated
//! checkpoint silently poisons every downstream table. This crate holds
//! the pieces that let the rest of the workspace *degrade gracefully*
//! instead of panicking, and — just as important — lets tests exercise
//! every recovery path deterministically:
//!
//! * [`FaultPlan`] — a scripted, seeded fault-injection schedule. Faults
//!   fire at defined seams (IO reads/writes, checkpoint bytes, market
//!   candles, per-epoch gradients) exactly when the plan says so, so a
//!   recovered run is reproducible bit for bit.
//! * [`GuardConfig`] / [`check_epoch`] — per-epoch health checks
//!   (non-finite loss/gradient/weight detection, gradient-norm explosion,
//!   reward collapse) and the policy to apply when a check fails.
//! * [`atomic_write`] / [`retry_io`] — temp-file + fsync + rename writes
//!   and bounded exponential-backoff retry for transient IO faults.
//! * [`crc32`] — the checksum used by the v2 checkpoint trailer.
//!
//! The crate is dependency-light by design (serde + telemetry labels
//! only) so `market`, `loihi`, and `core` can all build on it without
//! cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod crc;
pub mod fault;
pub mod guard;
pub mod hook;
pub mod io;

pub use crc::crc32;
pub use fault::{
    FaultPlan, GradFault, MarketFault, MarketFaultKind, PipelineFault, PipelineFaultKind,
};
pub use guard::{check_epoch, EpochHealth, GuardConfig, GuardPolicy, HealthIssue};
pub use hook::chain_panic_hook;
pub use io::{atomic_write, atomic_write_faulted, retry_io, RetryOutcome};
