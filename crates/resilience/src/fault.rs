//! Deterministic, scripted fault injection.
//!
//! A [`FaultPlan`] is a seeded schedule of faults that fire at defined
//! seams: IO reads/writes (by label), checkpoint bytes after a write,
//! market candles (by `(period, asset)`), and per-epoch gradients. Every
//! fault is scripted — nothing fires unless the plan says so — and every
//! byte-level corruption is derived from the plan's seed, so a faulted
//! run is reproducible bit for bit given the same seed and schedule.
//!
//! Code under test passes `Option<&mut FaultPlan>` (or an empty plan)
//! through the seams it hardens; production callers pass `None` /
//! [`FaultPlan::default`], which never fires and costs a branch.

use std::io;

/// A gradient-level fault injected into one training epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradFault {
    /// The epoch's gradients become NaN (poisoning weights and reward).
    NaN,
    /// The epoch's gradients become +Inf.
    Inf,
    /// The epoch's gradient norm explodes by this power of ten.
    Explode,
}

/// What a scripted market fault does to its candle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MarketFaultKind {
    /// All four prices become NaN (a dropped/missing candle in a feed).
    DropNan,
    /// The close becomes zero (a non-positive price tick).
    NonPositive,
    /// Prices are multiplied by this factor (a fat-finger outlier).
    Outlier(f64),
}

/// One scripted candle corruption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarketFault {
    /// Period index of the corrupted candle.
    pub period: usize,
    /// Asset index of the corrupted candle.
    pub asset: usize,
    /// The corruption applied.
    pub kind: MarketFaultKind,
}

/// A pipeline-level fault injected into one live-desk round.
///
/// Unlike [`GradFault`] (which fires inside a single training epoch),
/// these target the stages *between* training and serving: candidate
/// checkpoint bytes, validation data, the hot-swap write, and the data
/// feed itself. Every kind has a deterministic recovery path, which is
/// what lets the chaos acceptance test demand that a recovered run end
/// bitwise-equal to the fault-free run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PipelineFaultKind {
    /// The round's first training epoch produces NaN gradients
    /// (recovered by the guarded loop's rollback policy).
    TrainerNan,
    /// The round's trainer aborts mid-flight, as if a worker panicked;
    /// the desk retries the round's training from the incumbent snapshot.
    TrainerPanic,
    /// The candidate checkpoint's stored bytes are bit-flipped after the
    /// write; the integrity probe catches it and the desk heals the file
    /// from the in-memory candidate.
    CorruptCandidate,
    /// The round's validation slice is poisoned with non-finite prices;
    /// the gate detects it and re-extracts from the pristine window.
    ValData,
    /// The swap-time copy into the serving path fails with transient IO
    /// errors (absorbed by bounded exponential-backoff retry).
    SwapIo,
    /// The data feed stalls for this many polls before yielding new
    /// periods; the desk's watchdog re-polls with capped backoff.
    FeedStall(u32),
    /// The whole desk process panics mid-round — no recovery path; this
    /// exists to exercise crash-time observers (the flight recorder's
    /// panic-hook dump) and post-mortem tooling.
    Crash,
}

/// One scripted pipeline fault: `kind` fires in desk round `round`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineFault {
    /// 0-based desk round the fault fires in.
    pub round: u64,
    /// The fault injected.
    pub kind: PipelineFaultKind,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, scripted fault-injection schedule (see the
/// [module docs](self)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    grad_faults: Vec<(u64, GradFault)>,
    write_faults: Vec<(String, u32)>,
    read_faults: Vec<(String, u32)>,
    /// `(label, write index)` pairs whose stored bytes get corrupted
    /// after an otherwise-successful write.
    corrupt_writes: Vec<(String, u64)>,
    /// Labels whose next stored bytes get truncated instead of bit-flipped.
    truncate_writes: Vec<(String, u64)>,
    /// Writes observed so far, per label.
    writes_seen: Vec<(String, u64)>,
    market_faults: Vec<MarketFault>,
    pipeline_faults: Vec<PipelineFault>,
    corruption_nonce: u64,
}

impl FaultPlan {
    /// An empty plan deriving any byte-level corruption from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Whether no fault is scheduled (fast path for production callers).
    pub fn is_empty(&self) -> bool {
        self.grad_faults.is_empty()
            && self.write_faults.is_empty()
            && self.read_faults.is_empty()
            && self.corrupt_writes.is_empty()
            && self.truncate_writes.is_empty()
            && self.market_faults.is_empty()
            && self.pipeline_faults.is_empty()
    }

    /// Schedules a gradient fault for training epoch `epoch` (one-shot:
    /// the fault is consumed the first time that epoch runs, so a retried
    /// epoch runs clean).
    pub fn grad_fault_at(mut self, epoch: u64, fault: GradFault) -> Self {
        self.grad_faults.push((epoch, fault));
        self
    }

    /// Schedules the next `count` writes under `label` to fail with a
    /// transient IO error.
    pub fn fail_writes(mut self, label: &str, count: u32) -> Self {
        self.write_faults.push((label.to_owned(), count));
        self
    }

    /// Schedules the next `count` reads under `label` to fail with a
    /// transient IO error.
    pub fn fail_reads(mut self, label: &str, count: u32) -> Self {
        self.read_faults.push((label.to_owned(), count));
        self
    }

    /// Schedules the `index`-th successful write under `label` (0-based)
    /// to have its stored bytes bit-flipped afterwards — simulated bitrot
    /// or a torn sector.
    pub fn corrupt_write(mut self, label: &str, index: u64) -> Self {
        self.corrupt_writes.push((label.to_owned(), index));
        self
    }

    /// Schedules the `index`-th successful write under `label` to be
    /// truncated to half its length afterwards — a simulated crash
    /// mid-rewrite of a non-atomic writer.
    pub fn truncate_write(mut self, label: &str, index: u64) -> Self {
        self.truncate_writes.push((label.to_owned(), index));
        self
    }

    /// Schedules a candle corruption.
    pub fn market_fault(mut self, period: usize, asset: usize, kind: MarketFaultKind) -> Self {
        self.market_faults.push(MarketFault { period, asset, kind });
        self
    }

    /// The scripted candle corruptions (applied by the market-owning
    /// layer; this crate stays market-agnostic).
    pub fn market_faults(&self) -> &[MarketFault] {
        &self.market_faults
    }

    /// Schedules a pipeline fault for desk round `round` (0-based).
    pub fn pipeline_fault(mut self, round: u64, kind: PipelineFaultKind) -> Self {
        self.pipeline_faults.push(PipelineFault { round, kind });
        self
    }

    /// The scripted pipeline faults still pending (applied by the
    /// desk-owning layer; this crate stays pipeline-agnostic).
    pub fn pipeline_faults(&self) -> &[PipelineFault] {
        &self.pipeline_faults
    }

    /// Consumes every pipeline fault scheduled for `round`, in schedule
    /// order (one-shot: a retried round runs clean).
    pub fn take_pipeline_faults(&mut self, round: u64) -> Vec<PipelineFaultKind> {
        let mut taken = Vec::new();
        self.pipeline_faults.retain(|f| {
            if f.round == round {
                taken.push(f.kind);
                false
            } else {
                true
            }
        });
        taken
    }

    /// Consumes the gradient fault scheduled for `epoch`, if any.
    pub fn take_grad_fault(&mut self, epoch: u64) -> Option<GradFault> {
        let i = self.grad_faults.iter().position(|(e, _)| *e == epoch)?;
        Some(self.grad_faults.remove(i).1)
    }

    /// Consumes one scheduled write failure for `label`, if any.
    pub fn take_write_fault(&mut self, label: &str) -> Option<io::Error> {
        Self::take_io_fault(&mut self.write_faults, label, "write")
    }

    /// Consumes one scheduled read failure for `label`, if any.
    pub fn take_read_fault(&mut self, label: &str) -> Option<io::Error> {
        Self::take_io_fault(&mut self.read_faults, label, "read")
    }

    fn take_io_fault(faults: &mut Vec<(String, u32)>, label: &str, op: &str) -> Option<io::Error> {
        let i = faults.iter().position(|(l, n)| l == label && *n > 0)?;
        faults[i].1 -= 1;
        if faults[i].1 == 0 {
            faults.remove(i);
        }
        Some(io::Error::new(
            io::ErrorKind::Interrupted,
            format!("injected transient {op} fault for '{label}'"),
        ))
    }

    /// Records one successful write under `label` and reports whether the
    /// plan wants its stored bytes corrupted (`true` = bit-flip,
    /// truncation is reported separately by [`Self::take_truncation`]).
    pub fn take_corruption(&mut self, label: &str) -> bool {
        let index = self.bump_writes_seen(label);
        match self.corrupt_writes.iter().position(|(l, i)| l == label && *i == index) {
            Some(pos) => {
                self.corrupt_writes.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Whether the write just recorded by [`Self::take_corruption`] should
    /// also/instead be truncated. Checked against the same write index.
    pub fn take_truncation(&mut self, label: &str) -> bool {
        let index = self.writes_seen(label).saturating_sub(1);
        match self.truncate_writes.iter().position(|(l, i)| l == label && *i == index) {
            Some(pos) => {
                self.truncate_writes.remove(pos);
                true
            }
            None => false,
        }
    }

    fn bump_writes_seen(&mut self, label: &str) -> u64 {
        match self.writes_seen.iter_mut().find(|(l, _)| l == label) {
            Some((_, n)) => {
                let index = *n;
                *n += 1;
                index
            }
            None => {
                self.writes_seen.push((label.to_owned(), 1));
                0
            }
        }
    }

    fn writes_seen(&self, label: &str) -> u64 {
        self.writes_seen.iter().find(|(l, _)| l == label).map_or(0, |(_, n)| *n)
    }

    /// Deterministically corrupts `bytes` in place: flips one bit in each
    /// of three seed-derived positions. Offsets depend only on the plan
    /// seed, an internal nonce, and the buffer length, so the same plan
    /// corrupts the same bytes every run.
    pub fn corrupt_bytes(&mut self, bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        let mut state = self.seed ^ 0xC0FF_EE00_D15E_A5ED ^ self.corruption_nonce;
        self.corruption_nonce = self.corruption_nonce.wrapping_add(1);
        for _ in 0..3 {
            let r = splitmix64(&mut state);
            let pos = (r as usize) % bytes.len();
            let bit = ((r >> 32) % 8) as u8;
            bytes[pos] ^= 1 << bit;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let mut plan = FaultPlan::new(7);
        assert!(plan.is_empty());
        assert!(plan.take_grad_fault(0).is_none());
        assert!(plan.take_write_fault("ckpt").is_none());
        assert!(plan.take_read_fault("ckpt").is_none());
        assert!(!plan.take_corruption("ckpt"));
    }

    #[test]
    fn grad_faults_are_one_shot() {
        let mut plan = FaultPlan::new(1).grad_fault_at(2, GradFault::NaN);
        assert!(plan.take_grad_fault(1).is_none());
        assert_eq!(plan.take_grad_fault(2), Some(GradFault::NaN));
        assert!(plan.take_grad_fault(2).is_none(), "retried epoch must run clean");
    }

    #[test]
    fn write_faults_count_down() {
        let mut plan = FaultPlan::new(1).fail_writes("ckpt", 2);
        assert!(plan.take_write_fault("other").is_none());
        assert!(plan.take_write_fault("ckpt").is_some());
        assert!(plan.take_write_fault("ckpt").is_some());
        assert!(plan.take_write_fault("ckpt").is_none());
    }

    #[test]
    fn corruption_targets_one_write_index() {
        let mut plan = FaultPlan::new(1).corrupt_write("ckpt", 1);
        assert!(!plan.take_corruption("ckpt"), "write 0 untouched");
        assert!(plan.take_corruption("ckpt"), "write 1 corrupted");
        assert!(!plan.take_corruption("ckpt"), "write 2 untouched");
    }

    #[test]
    fn corrupt_bytes_is_deterministic_and_changes_data() {
        let base = vec![0u8; 64];
        let mut a = base.clone();
        let mut b = base.clone();
        FaultPlan::new(9).corrupt_bytes(&mut a);
        FaultPlan::new(9).corrupt_bytes(&mut b);
        assert_eq!(a, b, "same seed, same corruption");
        assert_ne!(a, base, "corruption must change bytes");
        let mut c = base.clone();
        FaultPlan::new(10).corrupt_bytes(&mut c);
        assert_ne!(a, c, "different seed, different corruption");
    }

    #[test]
    fn pipeline_faults_are_one_shot_and_round_scoped() {
        let mut plan = FaultPlan::new(4)
            .pipeline_fault(1, PipelineFaultKind::CorruptCandidate)
            .pipeline_fault(1, PipelineFaultKind::SwapIo)
            .pipeline_fault(3, PipelineFaultKind::FeedStall(2));
        assert!(!plan.is_empty());
        assert!(plan.take_pipeline_faults(0).is_empty());
        assert_eq!(
            plan.take_pipeline_faults(1),
            vec![PipelineFaultKind::CorruptCandidate, PipelineFaultKind::SwapIo],
        );
        assert!(plan.take_pipeline_faults(1).is_empty(), "retried round must run clean");
        assert_eq!(plan.take_pipeline_faults(3), vec![PipelineFaultKind::FeedStall(2)]);
        assert!(plan.is_empty());
    }

    #[test]
    fn market_faults_are_recorded() {
        let plan = FaultPlan::new(3).market_fault(5, 1, MarketFaultKind::DropNan).market_fault(
            6,
            0,
            MarketFaultKind::Outlier(100.0),
        );
        assert_eq!(plan.market_faults().len(), 2);
        assert_eq!(plan.market_faults()[0].period, 5);
    }
}
