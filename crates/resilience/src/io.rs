//! Hardened file IO: atomic writes and bounded retry with exponential
//! backoff.
//!
//! [`atomic_write`] stages content in a sibling temp file, fsyncs it, and
//! renames it over the destination, so a crash mid-write can never leave
//! a truncated file behind — the destination either holds the old bytes
//! or the new ones. [`retry_io`] wraps a fallible IO closure with a
//! bounded attempt budget and exponential backoff, the standard response
//! to transient `EINTR`/`EAGAIN`-class faults.

use crate::fault::FaultPlan;
use std::io;
use std::path::Path;

/// Writes `bytes` to `path` atomically: temp file + fsync + rename.
///
/// The temp file lives in the destination's directory (same filesystem,
/// so the rename is atomic) and is named after the destination plus a
/// process-unique suffix. On any error the temp file is removed
/// best-effort and the destination is left untouched.
///
/// # Errors
///
/// Returns the underlying IO error from create/write/sync/rename.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        io::Write::write_all(&mut file, bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// [`atomic_write`] with a fault-injection seam.
///
/// When `faults` is `Some`, the plan may (a) fail the write with an
/// injected transient error before anything touches disk, or (b) corrupt
/// or truncate the stored bytes *after* a successful atomic write —
/// simulated bitrot, exercised by the checkpoint CRC on the next load.
/// An empty or `None` plan behaves exactly like [`atomic_write`].
///
/// # Errors
///
/// Returns injected faults as `ErrorKind::Interrupted`, otherwise any
/// real IO error.
pub fn atomic_write_faulted(
    path: impl AsRef<Path>,
    bytes: &[u8],
    label: &str,
    faults: Option<&mut FaultPlan>,
) -> io::Result<()> {
    let Some(plan) = faults else {
        return atomic_write(path, bytes);
    };
    if let Some(err) = plan.take_write_fault(label) {
        return Err(err);
    }
    atomic_write(&path, bytes)?;
    if plan.take_corruption(label) {
        let mut stored = std::fs::read(&path)?;
        plan.corrupt_bytes(&mut stored);
        atomic_write(&path, &stored)?;
    }
    if plan.take_truncation(label) {
        let stored = std::fs::read(&path)?;
        atomic_write(&path, &stored[..stored.len() / 2])?;
    }
    Ok(())
}

/// What [`retry_io`] did before settling on its result.
#[derive(Debug)]
pub struct RetryOutcome<T> {
    /// The final attempt's result.
    pub result: io::Result<T>,
    /// How many *failed* attempts preceded it (0 = first try worked).
    pub retries: u32,
}

/// Runs `op` up to `attempts` times (≥ 1), sleeping `backoff_base_ms <<
/// k` milliseconds after failed attempt `k`. Returns the first success or
/// the last error, plus the retry count for telemetry.
pub fn retry_io<T>(
    attempts: u32,
    backoff_base_ms: u64,
    mut op: impl FnMut() -> io::Result<T>,
) -> RetryOutcome<T> {
    let attempts = attempts.max(1);
    let mut retries = 0;
    loop {
        match op() {
            Ok(v) => return RetryOutcome { result: Ok(v), retries },
            Err(e) if retries + 1 >= attempts => {
                return RetryOutcome { result: Err(e), retries };
            }
            Err(_) => {
                if backoff_base_ms > 0 {
                    let ms = backoff_base_ms.saturating_mul(1 << retries.min(10));
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                retries += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spikefolio-resilience-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn atomic_write_round_trips() {
        let path = tmp("atomic.txt");
        atomic_write(&path, b"hello").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        atomic_write(&path, b"replaced").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"replaced");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_write_leaves_no_temp_droppings() {
        let path = tmp("clean.txt");
        atomic_write(&path, b"x").unwrap();
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().to_string();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let n = e.file_name().to_string_lossy().to_string();
                n.starts_with(&stem) && n != stem
            })
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_write_fault_fails_then_recovers() {
        let path = tmp("faulted.txt");
        let mut plan = FaultPlan::new(1).fail_writes("ckpt", 1);
        let err = atomic_write_faulted(&path, b"v1", "ckpt", Some(&mut plan)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert!(!path.exists(), "failed write must not touch the destination");
        atomic_write_faulted(&path, b"v1", "ckpt", Some(&mut plan)).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"v1");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_corruption_changes_stored_bytes() {
        let path = tmp("bitrot.txt");
        let payload = vec![0xABu8; 128];
        let mut plan = FaultPlan::new(2).corrupt_write("ckpt", 0);
        atomic_write_faulted(&path, &payload, "ckpt", Some(&mut plan)).unwrap();
        let stored = std::fs::read(&path).unwrap();
        assert_eq!(stored.len(), payload.len());
        assert_ne!(stored, payload, "corruption must have been applied");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_truncation_halves_the_file() {
        let path = tmp("torn.txt");
        let payload = vec![0x11u8; 100];
        let mut plan = FaultPlan::new(2).truncate_write("ckpt", 0);
        atomic_write_faulted(&path, &payload, "ckpt", Some(&mut plan)).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 50);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retry_io_retries_until_success() {
        let mut fails_left = 2;
        let out = retry_io(5, 0, || {
            if fails_left > 0 {
                fails_left -= 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "transient"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.result.unwrap(), 42);
        assert_eq!(out.retries, 2);
    }

    #[test]
    fn retry_io_gives_up_after_budget() {
        let mut calls = 0;
        let out: RetryOutcome<()> = retry_io(3, 0, || {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::Interrupted, "always"))
        });
        assert!(out.result.is_err());
        assert_eq!(calls, 3);
        assert_eq!(out.retries, 2);
    }
}
