//! Chained process panic hooks.
//!
//! A crash-time observer (the desk flight recorder's dump, a metrics
//! flush) must run *in addition to* whatever panic reporting is already
//! installed, not instead of it. [`chain_panic_hook`] takes the current
//! hook, runs the new callback first, then delegates — so stacking
//! several observers keeps them all, and the default backtrace printer
//! still fires last.

/// Installs a panic hook that calls `callback` with the panic message
/// and source location (as `file:line`), then invokes the previously
/// installed hook.
///
/// The callback must not panic; a panic inside a panic hook aborts the
/// process. Keep crash-time work best-effort (swallow IO errors).
pub fn chain_panic_hook(callback: impl Fn(&str, Option<&str>) + Send + Sync + 'static) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = panic_message(info.payload());
        let location = info.location().map(|l| format!("{}:{}", l.file(), l.line()));
        callback(message, location.as_deref());
        previous(info);
    }));
}

/// Extracts the human-readable message from a panic payload (`&str` and
/// `String` payloads cover `panic!` with and without formatting).
fn panic_message(payload: &dyn std::any::Any) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    // One test exercises the whole module: panic hooks are process-global
    // state, so independent tests would race each other's installs.
    #[test]
    fn chained_hooks_all_fire_and_see_the_message() {
        let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let fired = Arc::new(AtomicU64::new(0));
        // Quiet base hook: keeps the expected panic below out of test
        // output while still giving the chain something to delegate to.
        std::panic::set_hook(Box::new(|_| {}));
        for tag in ["outer", "inner"] {
            let seen = Arc::clone(&seen);
            let fired = Arc::clone(&fired);
            chain_panic_hook(move |message, location| {
                fired.fetch_add(1, Ordering::SeqCst);
                let mut seen = seen.lock().unwrap_or_else(|e| e.into_inner());
                seen.push(format!("{tag}: {message} @ {}", location.unwrap_or("?")));
            });
        }
        let result = std::panic::catch_unwind(|| panic!("boom {}", 7));
        assert!(result.is_err());
        let seen = seen.lock().unwrap().clone();
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        // Most-recently-installed runs first, then delegates outward.
        assert!(seen[0].starts_with("inner: boom 7 @ "), "{seen:?}");
        assert!(seen[1].starts_with("outer: boom 7 @ "), "{seen:?}");
        assert!(seen[0].contains("hook.rs:"), "{seen:?}");
    }
}
