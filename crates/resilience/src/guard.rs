//! Per-epoch training health checks and recovery policies.
//!
//! [`check_epoch`] inspects one epoch's reward, gradient norm, and
//! parameter buffer; anything non-finite, an exploding gradient norm, or
//! a collapsed reward makes the epoch *unhealthy*. What happens next is
//! the [`GuardPolicy`] of the [`GuardConfig`]: skip the epoch, retry it
//! with tightened clipping, or roll back to the last-good checkpoint and
//! retry. The guarded trainer in `spikefolio::guarded` drives the loop;
//! this module only decides.

use serde::{Deserialize, Serialize};

/// What to do when an epoch fails its health check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GuardPolicy {
    /// Discard the epoch's update (restore pre-epoch state) and move on.
    Skip,
    /// Restore pre-epoch state and retry with a tightened gradient clip.
    Clip,
    /// Restore the last-good state and retry the epoch as-is.
    Rollback,
}

/// Guarded-training configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuardConfig {
    /// Recovery policy for unhealthy epochs.
    pub policy: GuardPolicy,
    /// Gradient-norm explosion threshold (pre-clip epoch mean); anything
    /// above it is unhealthy. Non-finite norms are always unhealthy.
    pub grad_norm_limit: f64,
    /// If set, an epoch whose reward drops more than this below the best
    /// reward seen so far is flagged as collapsed.
    pub reward_collapse_drop: Option<f64>,
    /// Retries per epoch before the run is abandoned (weights restored to
    /// the last-good state and training returns early).
    pub max_retries: u32,
    /// Attempts for each checkpoint IO operation (≥ 1).
    pub io_retries: u32,
    /// Base of the exponential backoff between IO attempts, milliseconds
    /// (attempt `k` sleeps `base << k`); 0 disables sleeping.
    pub backoff_base_ms: u64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            policy: GuardPolicy::Rollback,
            grad_norm_limit: 1e6,
            reward_collapse_drop: None,
            max_retries: 3,
            io_retries: 4,
            backoff_base_ms: 5,
        }
    }
}

/// One reason an epoch failed its health check.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthIssue {
    /// The epoch's mean reward is NaN or infinite.
    NonFiniteReward,
    /// The epoch's mean gradient norm is NaN or infinite.
    NonFiniteGradNorm,
    /// The gradient norm exceeded [`GuardConfig::grad_norm_limit`].
    GradExplosion {
        /// Observed epoch-mean gradient norm.
        norm: f64,
        /// The configured limit.
        limit: f64,
    },
    /// Some trained parameters are NaN or infinite.
    NonFiniteParams {
        /// How many parameters are non-finite.
        count: usize,
    },
    /// The reward fell more than the configured drop below the best seen.
    RewardCollapse {
        /// This epoch's reward.
        reward: f64,
        /// Best epoch reward seen so far.
        best: f64,
    },
}

impl HealthIssue {
    /// Short machine-readable label (telemetry field value).
    pub fn label(&self) -> &'static str {
        match self {
            HealthIssue::NonFiniteReward => "nonfinite_reward",
            HealthIssue::NonFiniteGradNorm => "nonfinite_grad",
            HealthIssue::GradExplosion { .. } => "grad_explosion",
            HealthIssue::NonFiniteParams { .. } => "nonfinite_params",
            HealthIssue::RewardCollapse { .. } => "reward_collapse",
        }
    }
}

impl std::fmt::Display for HealthIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthIssue::NonFiniteReward => write!(f, "epoch reward is non-finite"),
            HealthIssue::NonFiniteGradNorm => write!(f, "gradient norm is non-finite"),
            HealthIssue::GradExplosion { norm, limit } => {
                write!(f, "gradient norm {norm:.3e} exceeds limit {limit:.3e}")
            }
            HealthIssue::NonFiniteParams { count } => {
                write!(f, "{count} parameters are non-finite")
            }
            HealthIssue::RewardCollapse { reward, best } => {
                write!(f, "reward {reward:.4} collapsed from best {best:.4}")
            }
        }
    }
}

/// Health-check verdict for one epoch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochHealth {
    /// Everything wrong with the epoch (empty = healthy).
    pub issues: Vec<HealthIssue>,
}

impl EpochHealth {
    /// Whether the epoch passed every check.
    pub fn healthy(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Checks one epoch: `reward` and `grad_norm` are the epoch's mean
/// statistics, `params` the post-epoch trained parameters, `best_reward`
/// the best epoch reward seen so far (for collapse detection).
pub fn check_epoch(
    reward: f64,
    grad_norm: f64,
    params: &[f64],
    best_reward: Option<f64>,
    cfg: &GuardConfig,
) -> EpochHealth {
    let mut issues = Vec::new();
    if !reward.is_finite() {
        issues.push(HealthIssue::NonFiniteReward);
    }
    if !grad_norm.is_finite() {
        issues.push(HealthIssue::NonFiniteGradNorm);
    } else if grad_norm > cfg.grad_norm_limit {
        issues.push(HealthIssue::GradExplosion { norm: grad_norm, limit: cfg.grad_norm_limit });
    }
    let bad = params.iter().filter(|p| !p.is_finite()).count();
    if bad > 0 {
        issues.push(HealthIssue::NonFiniteParams { count: bad });
    }
    if let (Some(drop), Some(best)) = (cfg.reward_collapse_drop, best_reward) {
        if reward.is_finite() && reward < best - drop {
            issues.push(HealthIssue::RewardCollapse { reward, best });
        }
    }
    EpochHealth { issues }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn clean_epoch_is_healthy() {
        let cfg = GuardConfig::default();
        let h = check_epoch(0.01, 2.5, &[0.1, -0.2], Some(0.02), &cfg);
        assert!(h.healthy(), "{:?}", h.issues);
    }

    #[test]
    fn nonfinite_values_are_flagged() {
        let cfg = GuardConfig::default();
        let h =
            check_epoch(f64::NAN, f64::INFINITY, &[f64::NAN, 0.0, f64::NEG_INFINITY], None, &cfg);
        assert!(!h.healthy());
        let labels: Vec<_> = h.issues.iter().map(HealthIssue::label).collect();
        assert!(labels.contains(&"nonfinite_reward"));
        assert!(labels.contains(&"nonfinite_grad"));
        assert!(labels.contains(&"nonfinite_params"));
        assert!(matches!(
            h.issues.iter().find(|i| i.label() == "nonfinite_params"),
            Some(HealthIssue::NonFiniteParams { count: 2 })
        ));
    }

    #[test]
    fn explosion_threshold_applies() {
        let cfg = GuardConfig { grad_norm_limit: 10.0, ..GuardConfig::default() };
        assert!(check_epoch(0.0, 9.9, &[], None, &cfg).healthy());
        let h = check_epoch(0.0, 10.1, &[], None, &cfg);
        assert_eq!(h.issues.len(), 1);
        assert_eq!(h.issues[0].label(), "grad_explosion");
    }

    #[test]
    fn reward_collapse_requires_opt_in() {
        let off = GuardConfig::default();
        assert!(check_epoch(-5.0, 1.0, &[], Some(1.0), &off).healthy());
        let on = GuardConfig { reward_collapse_drop: Some(2.0), ..GuardConfig::default() };
        assert!(check_epoch(-0.5, 1.0, &[], Some(1.0), &on).healthy());
        let h = check_epoch(-1.5, 1.0, &[], Some(1.0), &on);
        assert_eq!(h.issues[0].label(), "reward_collapse");
    }

    #[test]
    fn issues_render_human_readable() {
        for issue in [
            HealthIssue::NonFiniteReward,
            HealthIssue::GradExplosion { norm: 1e9, limit: 1e6 },
            HealthIssue::NonFiniteParams { count: 3 },
            HealthIssue::RewardCollapse { reward: -1.0, best: 0.5 },
        ] {
            assert!(!issue.to_string().is_empty());
        }
    }
}
