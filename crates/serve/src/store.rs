//! The hot-swappable model store.
//!
//! The currently served model lives behind an `RwLock<Arc<LoadedModel>>`.
//! Batcher workers clone the `Arc` once per micro-batch, so a batch
//! always runs start-to-finish on one model version even while a reload
//! is in flight; swapping is a pointer exchange, never a wait for
//! in-flight inference. Reloads are validate-then-swap: the candidate
//! checkpoint is fully loaded and shape-checked before the pointer moves,
//! and any failure leaves the previous model serving untouched.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::backend::InferenceBackend;
use crate::lock;

/// Loads a backend from a source string (typically a checkpoint path).
///
/// Implementations must validate fully — shapes, checksums, finiteness —
/// and return an error message rather than a half-initialized backend;
/// the store treats any `Ok` as safe to serve immediately.
pub trait ModelLoader: Send + Sync {
    /// Loads and validates one model.
    ///
    /// # Errors
    ///
    /// A human-readable reason the source cannot be served.
    fn load(&self, source: &str) -> Result<Box<dyn InferenceBackend>, String>;
}

impl<F> ModelLoader for F
where
    F: Fn(&str) -> Result<Box<dyn InferenceBackend>, String> + Send + Sync,
{
    fn load(&self, source: &str) -> Result<Box<dyn InferenceBackend>, String> {
        self(source)
    }
}

/// One validated model plus its swap metadata.
pub struct LoadedModel {
    /// The policy.
    pub backend: Box<dyn InferenceBackend>,
    /// Monotonic version, starting at 1 for the initially loaded model
    /// and incremented by every successful swap. Served responses carry
    /// it so callers can tell which model answered.
    pub version: u64,
    /// The source string the model was loaded from.
    pub source: String,
}

impl std::fmt::Debug for LoadedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadedModel")
            .field("backend", &self.backend.name())
            .field("version", &self.version)
            .field("source", &self.source)
            .finish()
    }
}

/// Why the most recent reload failed, plus what kept serving: makes
/// rollbacks observable through the `metrics` snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SwapStatus {
    /// Successful hot swaps.
    pub swaps: u64,
    /// Rejected swap attempts.
    pub failures: u64,
    /// Version that kept (or started) serving after the last reload
    /// attempt — the rollback target when a reload fails.
    pub last_good_version: u64,
    /// Kind of the most recent reload failure (`load_failed` |
    /// `dim_mismatch`), or `None` if no reload ever failed.
    pub last_error_kind: Option<String>,
    /// Human-readable message of the most recent reload failure.
    pub last_error: Option<String>,
    /// Candidates rejected *before* a swap was attempted — a validation
    /// gate said no (integrity probe, reward floor, drift bound). Kept
    /// separate from `failures` so dashboards can distinguish "the gate
    /// worked" from "the swap IO broke".
    pub rejected: u64,
    /// Kind of the most recent gate rejection (`integrity` | `validation`
    /// | `drift`), or `None` if no candidate was ever rejected.
    pub last_rejection_kind: Option<String>,
    /// Human-readable reason for the most recent gate rejection.
    pub last_rejection: Option<String>,
    /// Gate rejections tallied by kind, sorted by kind name — the data
    /// behind the per-reason `swap_rejected` Prometheus series.
    pub rejected_by_kind: Vec<(String, u64)>,
}

/// The store: current model + loader + swap counters.
pub struct ModelStore {
    loader: Box<dyn ModelLoader>,
    current: RwLock<Arc<LoadedModel>>,
    swaps: AtomicU64,
    swap_failures: AtomicU64,
    swap_rejections: AtomicU64,
    last_error: Mutex<Option<(String, String)>>,
    last_rejection: Mutex<Option<(String, String)>>,
    rejections_by_kind: Mutex<BTreeMap<String, u64>>,
}

impl std::fmt::Debug for ModelStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelStore").field("current", &self.current()).finish()
    }
}

impl ModelStore {
    /// Loads the initial model (version 1) from `source`.
    ///
    /// # Errors
    ///
    /// Propagates the loader's message; an empty store is never
    /// constructed.
    pub fn open(loader: Box<dyn ModelLoader>, source: &str) -> Result<Self, String> {
        let backend = loader.load(source)?;
        let model = Arc::new(LoadedModel { backend, version: 1, source: source.to_string() });
        Ok(Self {
            loader,
            current: RwLock::new(model),
            swaps: AtomicU64::new(0),
            swap_failures: AtomicU64::new(0),
            swap_rejections: AtomicU64::new(0),
            last_error: Mutex::new(None),
            last_rejection: Mutex::new(None),
            rejections_by_kind: Mutex::new(BTreeMap::new()),
        })
    }

    /// The model serving right now. Hold the `Arc`, not the store, across
    /// a batch: in-flight work then finishes on the version it started
    /// with even if a swap lands meanwhile.
    pub fn current(&self) -> Arc<LoadedModel> {
        Arc::clone(&self.current.read().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Version of the currently served model.
    pub fn version(&self) -> u64 {
        self.current().version
    }

    /// Hot-swaps to a freshly loaded model from `source`.
    ///
    /// The candidate is loaded and validated *before* the swap; requests
    /// admitted against the old model keep their old dimensions valid, so
    /// a candidate whose state or action dimension differs from the
    /// serving model is rejected. Returns the new version on success.
    ///
    /// # Errors
    ///
    /// On any failure the previous model keeps serving (rollback is
    /// "never moved the pointer") and the failure counter increments.
    pub fn reload(&self, source: &str) -> Result<u64, String> {
        let result = self.try_reload(source);
        match &result {
            Ok(_) => {
                self.swaps.fetch_add(1, Ordering::Relaxed);
            }
            Err((kind, msg)) => {
                self.swap_failures.fetch_add(1, Ordering::Relaxed);
                *lock(&self.last_error) = Some((kind.clone(), msg.clone()));
            }
        }
        result.map_err(|(_, msg)| msg)
    }

    fn try_reload(&self, source: &str) -> Result<u64, (String, String)> {
        let backend = self.loader.load(source).map_err(|msg| ("load_failed".to_string(), msg))?;
        let old = self.current();
        if backend.state_dim() != old.backend.state_dim()
            || backend.action_dim() != old.backend.action_dim()
        {
            return Err((
                "dim_mismatch".to_string(),
                format!(
                    "refusing hot swap: candidate dims {}x{} differ from serving model {}x{}",
                    backend.state_dim(),
                    backend.action_dim(),
                    old.backend.state_dim(),
                    old.backend.action_dim()
                ),
            ));
        }
        let mut slot = self.current.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        let version = slot.version + 1;
        *slot = Arc::new(LoadedModel { backend, version, source: source.to_string() });
        Ok(version)
    }

    /// `(successful swaps, rejected swap attempts)` so far.
    pub fn swap_counts(&self) -> (u64, u64) {
        (self.swaps.load(Ordering::Relaxed), self.swap_failures.load(Ordering::Relaxed))
    }

    /// Records a candidate the validation gate turned away *before* any
    /// reload was attempted: `kind` is the gate that said no
    /// (`integrity` | `validation` | `drift`), `reason` the evidence.
    /// The serving model is untouched; this only feeds the
    /// `serve/swap_rejected` counter and the metrics snapshot.
    pub fn record_rejection(&self, kind: &str, reason: &str) {
        self.swap_rejections.fetch_add(1, Ordering::Relaxed);
        *lock(&self.last_rejection) = Some((kind.to_owned(), reason.to_owned()));
        *lock(&self.rejections_by_kind).entry(kind.to_owned()).or_insert(0) += 1;
    }

    /// Gate rejections recorded so far.
    pub fn rejection_count(&self) -> u64 {
        self.swap_rejections.load(Ordering::Relaxed)
    }

    /// Full swap status including the last failure (kind + message), the
    /// last gate rejection, and the version that kept serving through it.
    pub fn swap_status(&self) -> SwapStatus {
        let (swaps, failures) = self.swap_counts();
        let split = |pair: Option<(String, String)>| match pair {
            Some((kind, msg)) => (Some(kind), Some(msg)),
            None => (None, None),
        };
        let (last_error_kind, last_error) = split(lock(&self.last_error).clone());
        let (last_rejection_kind, last_rejection) = split(lock(&self.last_rejection).clone());
        SwapStatus {
            swaps,
            failures,
            last_good_version: self.version(),
            last_error_kind,
            last_error,
            rejected: self.rejection_count(),
            last_rejection_kind,
            last_rejection,
            rejected_by_kind: lock(&self.rejections_by_kind)
                .iter()
                .map(|(k, &n)| (k.clone(), n))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    /// A backend that answers with a constant vector.
    pub(crate) struct ConstBackend {
        pub name: String,
        pub state_dim: usize,
        pub weights: Vec<f64>,
    }

    impl InferenceBackend for ConstBackend {
        fn name(&self) -> &str {
            &self.name
        }
        fn state_dim(&self) -> usize {
            self.state_dim
        }
        fn action_dim(&self) -> usize {
            self.weights.len()
        }
        fn infer_batch(&self, _states: &[f64], seeds: &[u64]) -> Vec<Vec<f64>> {
            seeds.iter().map(|_| self.weights.clone()).collect()
        }
    }

    fn test_loader() -> Box<dyn ModelLoader> {
        Box::new(|source: &str| -> Result<Box<dyn InferenceBackend>, String> {
            match source {
                "a" => Ok(Box::new(ConstBackend {
                    name: "a".into(),
                    state_dim: 4,
                    weights: vec![1.0, 0.0],
                })),
                "b" => Ok(Box::new(ConstBackend {
                    name: "b".into(),
                    state_dim: 4,
                    weights: vec![0.0, 1.0],
                })),
                "narrow" => Ok(Box::new(ConstBackend {
                    name: "narrow".into(),
                    state_dim: 2,
                    weights: vec![0.0, 1.0],
                })),
                other => Err(format!("no such model: {other}")),
            }
        })
    }

    #[test]
    fn open_loads_version_one() {
        let store = ModelStore::open(test_loader(), "a").expect("open");
        assert_eq!(store.version(), 1);
        assert_eq!(store.current().backend.name(), "a");
        assert_eq!(store.current().source, "a");
    }

    #[test]
    fn open_propagates_load_failure() {
        let err = ModelStore::open(test_loader(), "missing").expect_err("must fail");
        assert!(err.contains("no such model"), "{err}");
    }

    #[test]
    fn reload_swaps_and_bumps_version() {
        let store = ModelStore::open(test_loader(), "a").expect("open");
        let held = store.current(); // simulates an in-flight batch
        assert_eq!(store.reload("b"), Ok(2));
        assert_eq!(store.current().backend.name(), "b");
        assert_eq!(store.version(), 2);
        // The held Arc still points at the old model.
        assert_eq!(held.backend.name(), "a");
        assert_eq!(held.version, 1);
        assert_eq!(store.swap_counts(), (1, 0));
    }

    #[test]
    fn failed_reload_keeps_old_model() {
        let store = ModelStore::open(test_loader(), "a").expect("open");
        assert!(store.reload("missing").is_err());
        assert_eq!(store.version(), 1);
        assert_eq!(store.current().backend.name(), "a");
        assert_eq!(store.swap_counts(), (0, 1));
    }

    #[test]
    fn reload_rejects_dimension_change() {
        let store = ModelStore::open(test_loader(), "a").expect("open");
        let err = store.reload("narrow").expect_err("dims differ");
        assert!(err.contains("refusing hot swap"), "{err}");
        assert_eq!(store.version(), 1);
        assert_eq!(store.swap_counts(), (0, 1));
    }

    #[test]
    fn swap_status_starts_clean() {
        let store = ModelStore::open(test_loader(), "a").expect("open");
        let status = store.swap_status();
        assert_eq!(status, SwapStatus { last_good_version: 1, ..SwapStatus::default() });
    }

    #[test]
    fn swap_status_records_error_kind_and_last_good_version() {
        let store = ModelStore::open(test_loader(), "a").expect("open");
        assert!(store.reload("missing").is_err());
        let status = store.swap_status();
        assert_eq!(status.failures, 1);
        assert_eq!(status.last_good_version, 1);
        assert_eq!(status.last_error_kind.as_deref(), Some("load_failed"));
        assert!(status.last_error.as_deref().unwrap().contains("no such model"));

        // A dim mismatch reports its own kind; a later success keeps the
        // error visible but advances the last-good version.
        assert!(store.reload("narrow").is_err());
        assert_eq!(store.swap_status().last_error_kind.as_deref(), Some("dim_mismatch"));
        assert_eq!(store.reload("b"), Ok(2));
        let status = store.swap_status();
        assert_eq!(status.swaps, 1);
        assert_eq!(status.last_good_version, 2);
        assert_eq!(status.last_error_kind.as_deref(), Some("dim_mismatch"));
    }

    #[test]
    fn gate_rejections_are_counted_separately_from_failures() {
        let store = ModelStore::open(test_loader(), "a").expect("open");
        store.record_rejection("validation", "candidate reward -0.01 below incumbent 0.02");
        store.record_rejection("drift", "entropy drift 0.41 over bound 0.25");
        let status = store.swap_status();
        assert_eq!(status.rejected, 2);
        assert_eq!(status.failures, 0, "gate rejections never attempt a reload");
        assert_eq!(status.last_rejection_kind.as_deref(), Some("drift"));
        assert_eq!(
            status.rejected_by_kind,
            vec![("drift".to_string(), 1), ("validation".to_string(), 1)],
            "per-kind tally is sorted by kind name"
        );
        assert!(status.last_rejection.as_deref().unwrap().contains("0.41"));
        assert!(status.last_error_kind.is_none(), "rejections don't pollute swap errors");

        // A real swap failure keeps its own channel.
        assert!(store.reload("missing").is_err());
        let status = store.swap_status();
        assert_eq!((status.rejected, status.failures), (2, 1));
        assert_eq!(status.last_error_kind.as_deref(), Some("load_failed"));
        assert_eq!(status.last_rejection_kind.as_deref(), Some("drift"));
    }
}
