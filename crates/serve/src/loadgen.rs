//! Seeded load generation against a running server, with a
//! `spikefolio.serve.v1` JSON report.
//!
//! Two modes: **closed-loop** (`concurrency` connections, each sending
//! its next request the moment the previous response lands — measures
//! peak sustainable throughput) and **open-loop** (requests paced at a
//! target aggregate rate regardless of response latency — measures
//! latency under a fixed offered load, the way a market data feed
//! actually arrives). Request states are derived from the run seed and
//! the request index only, so two runs against a deterministic server
//! must produce bitwise-identical weights; `runs: 2` checks exactly
//! that.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spikefolio_telemetry::value::{parse, Value};

use crate::lock;
use crate::protocol::SERVE_SCHEMA;

/// Load-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadgenOptions {
    /// Total requests per run.
    pub requests: usize,
    /// Concurrent connections (closed-loop workers, or pacing lanes in
    /// open-loop mode).
    pub concurrency: usize,
    /// `Some(rps)` switches to open-loop mode at that aggregate rate.
    pub open_rps: Option<f64>,
    /// Seed for the generated request states.
    pub seed: u64,
    /// Per-request deadline forwarded to the server (ms).
    pub deadline_ms: Option<u64>,
    /// Number of identical passes; with 2 the report carries a bitwise
    /// determinism verdict comparing served weights across passes.
    pub runs: usize,
    /// Connection-setup retries per socket (0 = fail on the first
    /// refusal). Chaos runs restart the server mid-load; with retries
    /// the harness rides out the gap instead of aborting.
    pub connect_retries: u32,
    /// Base of the capped exponential backoff between connection
    /// attempts, milliseconds.
    pub connect_backoff_ms: u64,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            requests: 256,
            concurrency: 8,
            open_rps: None,
            seed: 2016,
            deadline_ms: None,
            runs: 1,
            connect_retries: 0,
            connect_backoff_ms: 50,
        }
    }
}

/// Latency percentiles over served responses (µs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Arithmetic mean.
    pub mean_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

/// One server-side stage latency summary scraped from the `metrics`
/// verb (µs, except `count`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStage {
    /// Observations the server recorded for this stage.
    pub count: u64,
    /// Median.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Worst observed.
    pub max_us: f64,
}

/// One load-generation run, rendered with [`LoadReport::to_json`] /
/// [`LoadReport::render`].
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// `"closed"` or `"open"`.
    pub mode: String,
    /// Requests sent.
    pub requests: u64,
    /// Responses with weights.
    pub served: u64,
    /// Sheds reported as `queue_full`.
    pub shed_queue_full: u64,
    /// Sheds reported as `deadline`.
    pub shed_deadline: u64,
    /// Every other error line.
    pub errors: u64,
    /// Wall time of the run (s).
    pub wall_s: f64,
    /// Served responses per second.
    pub throughput_rps: f64,
    /// Latency percentiles over served responses.
    pub latency: LatencySummary,
    /// `batch size → response count` distribution reported by the
    /// server (absent in deterministic mode, which omits batch fields).
    pub batch_hist: Vec<(usize, u64)>,
    /// Largest batch observed in responses.
    pub max_batch: u64,
    /// `Some(true)` when a two-pass run produced bitwise-identical
    /// weights, `Some(false)` when it did not, `None` for single runs.
    pub deterministic: Option<bool>,
    /// Per-stage server-side latency scraped from the `metrics` verb
    /// after the final pass, in pipeline order (empty when the server
    /// does not speak `spikefolio.metrics.v1`).
    pub server_stages: Vec<(String, ServerStage)>,
    /// The server's health `degraded` flag at scrape time.
    pub server_degraded: Option<bool>,
    /// Connection-setup retries absorbed across every socket of the run
    /// (probe + workers, all passes) — non-zero when the server was
    /// restarting under load.
    pub connect_retries: u64,
}

impl LoadReport {
    /// Serializes as a `spikefolio.serve.v1` JSON object.
    pub fn to_json(&self) -> String {
        let hist = Value::List(
            self.batch_hist
                .iter()
                .map(|&(size, count)| {
                    Value::Map(vec![
                        ("batch".to_string(), Value::U64(size as u64)),
                        ("count".to_string(), Value::U64(count)),
                    ])
                })
                .collect(),
        );
        let latency = Value::Map(vec![
            ("p50_us".to_string(), Value::U64(self.latency.p50_us)),
            ("p95_us".to_string(), Value::U64(self.latency.p95_us)),
            ("p99_us".to_string(), Value::U64(self.latency.p99_us)),
            ("mean_us".to_string(), Value::U64(self.latency.mean_us)),
            ("max_us".to_string(), Value::U64(self.latency.max_us)),
        ]);
        Value::Map(vec![
            ("schema".to_string(), Value::Str(SERVE_SCHEMA.to_string())),
            ("kind".to_string(), Value::Str("loadgen_report".to_string())),
            ("mode".to_string(), Value::Str(self.mode.clone())),
            ("requests".to_string(), Value::U64(self.requests)),
            ("served".to_string(), Value::U64(self.served)),
            ("shed_queue_full".to_string(), Value::U64(self.shed_queue_full)),
            ("shed_deadline".to_string(), Value::U64(self.shed_deadline)),
            ("errors".to_string(), Value::U64(self.errors)),
            ("wall_s".to_string(), Value::F64(self.wall_s)),
            ("throughput_rps".to_string(), Value::F64(self.throughput_rps)),
            ("latency".to_string(), latency),
            ("batch_hist".to_string(), hist),
            ("max_batch".to_string(), Value::U64(self.max_batch)),
            ("deterministic".to_string(), self.deterministic.map_or(Value::Null, Value::Bool)),
            (
                "server_stages".to_string(),
                Value::Map(
                    self.server_stages
                        .iter()
                        .map(|(name, s)| {
                            (
                                name.clone(),
                                Value::Map(vec![
                                    ("count".to_string(), Value::U64(s.count)),
                                    ("p50_us".to_string(), Value::F64(s.p50_us)),
                                    ("p95_us".to_string(), Value::F64(s.p95_us)),
                                    ("p99_us".to_string(), Value::F64(s.p99_us)),
                                    ("max_us".to_string(), Value::F64(s.max_us)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            ("server_degraded".to_string(), self.server_degraded.map_or(Value::Null, Value::Bool)),
            ("connect_retries".to_string(), Value::U64(self.connect_retries)),
        ])
        .to_json()
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "loadgen ({} loop): {} requests in {:.3} s -> {:.1} served/s\n",
            self.mode, self.requests, self.wall_s, self.throughput_rps
        ));
        out.push_str(&format!(
            "  served {}  shed {} (queue_full {}, deadline {})  errors {}\n",
            self.served,
            self.shed_queue_full + self.shed_deadline,
            self.shed_queue_full,
            self.shed_deadline,
            self.errors
        ));
        out.push_str(&format!(
            "  latency p50 {} us  p95 {} us  p99 {} us  mean {} us  max {} us\n",
            self.latency.p50_us,
            self.latency.p95_us,
            self.latency.p99_us,
            self.latency.mean_us,
            self.latency.max_us
        ));
        if self.batch_hist.is_empty() {
            out.push_str("  batch sizes: (not reported)\n");
        } else {
            out.push_str("  batch sizes:");
            for (size, count) in &self.batch_hist {
                out.push_str(&format!(" {size}x{count}"));
            }
            out.push('\n');
        }
        if let Some(ok) = self.deterministic {
            out.push_str(&format!(
                "  determinism: {}\n",
                if ok { "bitwise identical across runs" } else { "MISMATCH across runs" }
            ));
        }
        if !self.server_stages.is_empty() {
            // Client-vs-server side by side: the client's end-to-end
            // percentiles next to where the server says the time went.
            out.push_str(&format!(
                "  {:<16} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                "latency (us)", "count", "p50", "p95", "p99", "max"
            ));
            out.push_str(&format!(
                "  {:<16} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                "client e2e",
                self.served,
                self.latency.p50_us,
                self.latency.p95_us,
                self.latency.p99_us,
                self.latency.max_us
            ));
            for (name, s) in &self.server_stages {
                out.push_str(&format!(
                    "  {:<16} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
                    format!("server {name}"),
                    s.count,
                    s.p50_us,
                    s.p95_us,
                    s.p99_us,
                    s.max_us
                ));
            }
        }
        if let Some(degraded) = self.server_degraded {
            out.push_str(&format!(
                "  server health: {}\n",
                if degraded { "DEGRADED" } else { "ok" }
            ));
        }
        if self.connect_retries > 0 {
            out.push_str(&format!(
                "  connect retries: {} (server was away; reconnects absorbed)\n",
                self.connect_retries
            ));
        }
        out
    }
}

/// Connects with bounded retry and capped exponential backoff: chaos
/// runs restart the server mid-load, so a refused connection a few
/// milliseconds after a swap or restart is expected, not fatal. Returns
/// the stream (nodelay set) plus the retries it took.
fn connect_with_retry(
    addr: &str,
    retries_allowed: u32,
    backoff_ms: u64,
) -> Result<(TcpStream, u64), String> {
    let mut retries = 0u64;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).map_err(|e| format!("set_nodelay: {e}"))?;
                return Ok((stream, retries));
            }
            Err(e) if retries >= retries_allowed as u64 => {
                return Err(format!("connect {addr}: {e} (after {retries} retries)"));
            }
            Err(_) => {
                if backoff_ms > 0 {
                    std::thread::sleep(Duration::from_millis(backoff_ms << retries.min(10)));
                }
                retries += 1;
            }
        }
    }
}

/// Linearly interpolated percentile of an already sorted slice.
///
/// The rank `pct/100 * (n-1)` generally falls between two samples; the
/// result interpolates between them (then rounds) instead of truncating
/// to the nearest rank, so small samples don't quantize p95/p99 onto
/// whichever observation happens to sit at the cut.
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    let a = sorted[lo] as f64;
    let b = sorted[hi.min(sorted.len() - 1)] as f64;
    (a + frac * (b - a)).round() as u64
}

fn summarize_latencies(mut lat_us: Vec<u64>) -> LatencySummary {
    if lat_us.is_empty() {
        return LatencySummary::default();
    }
    lat_us.sort_unstable();
    let sum: u64 = lat_us.iter().sum();
    LatencySummary {
        p50_us: percentile(&lat_us, 50.0),
        p95_us: percentile(&lat_us, 95.0),
        p99_us: percentile(&lat_us, 99.0),
        mean_us: sum / lat_us.len() as u64,
        max_us: *lat_us.last().unwrap_or(&0),
    }
}

/// The state vector for request `index`: depends only on `(seed, index)`
/// so every run regenerates the identical stream.
fn request_state(seed: u64, index: u64, dim: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ (index.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    (0..dim).map(|_| rng.gen_range(0.8..1.2)).collect()
}

fn request_seed(seed: u64, index: u64) -> u64 {
    seed.wrapping_add(index).wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Accumulated per-run observations.
#[derive(Default)]
struct RunTally {
    served: u64,
    shed_queue_full: u64,
    shed_deadline: u64,
    errors: u64,
    latencies_us: Vec<u64>,
    batch_hist: BTreeMap<usize, u64>,
    weights_bits: HashMap<u64, Vec<u64>>,
    connect_retries: u64,
}

impl RunTally {
    fn absorb_response(&mut self, line: &str, latency_us: u64) {
        let Ok(v) = parse(line) else {
            self.errors += 1;
            return;
        };
        let ok = matches!(v.get("ok"), Some(Value::Bool(true)));
        if !ok {
            match v.get("error").and_then(Value::as_str) {
                Some("queue_full") => self.shed_queue_full += 1,
                Some("deadline") => self.shed_deadline += 1,
                _ => self.errors += 1,
            }
            return;
        }
        self.served += 1;
        self.latencies_us.push(latency_us);
        if let Some(batch) = v.get("batch").and_then(Value::as_u64) {
            *self.batch_hist.entry(batch as usize).or_insert(0) += 1;
        }
        if let (Some(id), Some(weights)) =
            (v.get("id").and_then(Value::as_u64), v.get("weights").and_then(Value::as_list))
        {
            let bits: Vec<u64> =
                weights.iter().filter_map(Value::as_f64).map(f64::to_bits).collect();
            self.weights_bits.insert(id, bits);
        }
    }

    fn merge(&mut self, other: RunTally) {
        self.served += other.served;
        self.shed_queue_full += other.shed_queue_full;
        self.shed_deadline += other.shed_deadline;
        self.errors += other.errors;
        self.latencies_us.extend(other.latencies_us);
        for (k, c) in other.batch_hist {
            *self.batch_hist.entry(k).or_insert(0) += c;
        }
        self.weights_bits.extend(other.weights_bits);
        self.connect_retries += other.connect_retries;
    }
}

fn render_request(id: u64, state: &[f64], seed: u64, deadline_ms: Option<u64>) -> String {
    let mut pairs = vec![
        ("id".to_string(), Value::U64(id)),
        ("state".to_string(), Value::List(state.iter().map(|&x| Value::F64(x)).collect())),
        ("seed".to_string(), Value::U64(seed)),
    ];
    if let Some(ms) = deadline_ms {
        pairs.push(("deadline_ms".to_string(), Value::U64(ms)));
    }
    Value::Map(pairs).to_json()
}

/// Queries the server's `info` verb for the expected state dimension.
/// Returns the dimension plus the connection retries it took.
fn probe_state_dim(addr: &str, opts: &LoadgenOptions) -> Result<(usize, u64), String> {
    let (stream, retries) =
        connect_with_retry(addr, opts.connect_retries, opts.connect_backoff_ms)?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone stream: {e}"))?;
    writer.write_all(b"{\"cmd\":\"info\"}\n").map_err(|e| format!("send info: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("read info: {e}"))?;
    let v = parse(line.trim()).map_err(|e| format!("parse info response: {e}"))?;
    v.get("state_dim")
        .and_then(Value::as_u64)
        .map(|d| (d as usize, retries))
        .ok_or_else(|| format!("info response carries no state_dim: {}", line.trim()))
}

/// Scrapes the server's `metrics` verb and extracts per-stage latency
/// plus the health `degraded` flag. Tolerant by design: any failure
/// (older server, parse mismatch) yields an empty result instead of
/// failing the load run.
fn scrape_server_metrics(addr: &str) -> (Vec<(String, ServerStage)>, Option<bool>) {
    let Some(v) = (|| -> Option<Value> {
        let stream = TcpStream::connect(addr).ok()?;
        stream.set_nodelay(true).ok()?;
        let mut writer = stream.try_clone().ok()?;
        writer.write_all(b"{\"cmd\":\"metrics\"}\n").ok()?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).ok()?;
        parse(line.trim()).ok()
    })() else {
        return (Vec::new(), None);
    };
    if !matches!(v.get("ok"), Some(Value::Bool(true))) {
        return (Vec::new(), None);
    }
    let Some(metrics) = v.get("metrics") else {
        return (Vec::new(), None);
    };
    let mut stages = Vec::new();
    if let Some(Value::Map(entries)) = metrics.get("stages") {
        for (name, stage) in entries {
            let f = |key: &str| stage.get(key).and_then(Value::as_f64).unwrap_or(0.0);
            stages.push((
                name.clone(),
                ServerStage {
                    count: stage.get("count").and_then(Value::as_u64).unwrap_or(0),
                    p50_us: f("p50_us"),
                    p95_us: f("p95_us"),
                    p99_us: f("p99_us"),
                    max_us: f("max_us"),
                },
            ));
        }
    }
    let degraded = metrics.get("health").and_then(|h| h.get("degraded")).and_then(|d| match d {
        Value::Bool(b) => Some(*b),
        _ => None,
    });
    (stages, degraded)
}

/// One closed-loop worker: send, wait, repeat over its pre-rendered
/// request lines.
fn closed_loop_worker(
    addr: &str,
    requests: &[(u64, String)],
    opts: &LoadgenOptions,
) -> Result<RunTally, String> {
    // Nodelay is set inside connect_with_retry: without it, Nagle on our
    // side plus delayed ACK on the server's turns every request into a
    // ~40 ms stall (the newline sits in the socket until the server
    // acknowledges the first fragment).
    let (stream, retries) =
        connect_with_retry(addr, opts.connect_retries, opts.connect_backoff_ms)?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone stream: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut tally = RunTally { connect_retries: retries, ..Default::default() };
    let mut line = String::new();
    for (i, req) in requests {
        let sent = Instant::now();
        // One write_all per line: writeln! would split the body and the
        // newline into separate packets.
        writer.write_all(req.as_bytes()).map_err(|e| format!("send request {i}: {e}"))?;
        line.clear();
        let n = reader.read_line(&mut line).map_err(|e| format!("read response {i}: {e}"))?;
        if n == 0 {
            return Err(format!("server closed the connection before response {i}"));
        }
        let latency_us = (sent.elapsed().as_secs_f64() * 1e6) as u64;
        tally.absorb_response(line.trim(), latency_us);
    }
    Ok(tally)
}

/// One open-loop lane: a paced writer plus a reader tracking send times.
fn open_loop_worker(
    addr: &str,
    requests: Vec<(u64, String)>,
    interarrival: Duration,
    opts: &LoadgenOptions,
) -> Result<RunTally, String> {
    let (stream, connect_retries) =
        connect_with_retry(addr, opts.connect_retries, opts.connect_backoff_ms)?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone stream: {e}"))?;
    let reader_stream = stream;
    let sent_at = Mutex::new(HashMap::<u64, Instant>::new());
    let expected = requests.len();

    std::thread::scope(|scope| {
        let sent_ref = &sent_at;
        let writer_handle = scope.spawn(move || -> Result<(), String> {
            let start = Instant::now();
            for (k, (i, req)) in requests.iter().enumerate() {
                let due = start + interarrival.mul_f64(k as f64);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                lock(sent_ref).insert(*i, Instant::now());
                writer.write_all(req.as_bytes()).map_err(|e| format!("send request {i}: {e}"))?;
            }
            Ok(())
        });

        let mut tally = RunTally { connect_retries, ..Default::default() };
        let mut reader = BufReader::new(reader_stream);
        let mut line = String::new();
        for _ in 0..expected {
            line.clear();
            let n = reader.read_line(&mut line).map_err(|e| format!("read response: {e}"))?;
            if n == 0 {
                return Err("server closed the connection mid-run".to_string());
            }
            let trimmed = line.trim();
            let latency_us = parse(trimmed)
                .ok()
                .and_then(|v| v.get("id").and_then(Value::as_u64))
                .and_then(|id| lock(sent_ref).remove(&id))
                .map_or(0, |t| (t.elapsed().as_secs_f64() * 1e6) as u64);
            tally.absorb_response(trimmed, latency_us);
        }
        writer_handle.join().map_err(|_| "writer lane panicked".to_string())??;
        Ok(tally)
    })
}

fn one_pass(addr: &str, opts: &LoadgenOptions, dim: usize) -> Result<(RunTally, f64), String> {
    let concurrency = opts.concurrency.max(1).min(opts.requests.max(1));
    // The workload is materialized before the clock starts: rendering a
    // few hundred floats of JSON per request costs real CPU, and on small
    // machines that client-side work would otherwise be billed to the
    // server under test.
    let mut assignments: Vec<Vec<(u64, String)>> = vec![Vec::new(); concurrency];
    for i in 0..opts.requests as u64 {
        let state = request_state(opts.seed, i, dim);
        let mut req = render_request(i, &state, request_seed(opts.seed, i), opts.deadline_ms);
        req.push('\n');
        assignments[(i as usize) % concurrency].push((i, req));
    }
    let interarrival = opts.open_rps.map(|rps| {
        let lane_rate = (rps / concurrency as f64).max(1e-3);
        Duration::from_secs_f64(1.0 / lane_rate)
    });
    let t0 = Instant::now();
    let tallies: Vec<Result<RunTally, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = assignments
            .into_iter()
            .map(|requests| {
                scope.spawn(move || match interarrival {
                    None => closed_loop_worker(addr, &requests, opts),
                    Some(gap) => open_loop_worker(addr, requests, gap, opts),
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("loadgen worker panicked".to_string())))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let mut total = RunTally::default();
    for t in tallies {
        total.merge(t?);
    }
    Ok((total, wall_s))
}

/// Runs load against `addr` and produces the report. With
/// `opts.runs >= 2` the identical request stream is replayed and served
/// weights are compared bitwise across passes (the report's
/// `deterministic` field); throughput and latency come from the first
/// pass.
///
/// # Errors
///
/// Connection, protocol, or worker failures as a message.
pub fn run_loadgen(addr: &str, opts: &LoadgenOptions) -> Result<LoadReport, String> {
    if opts.requests == 0 {
        return Err("loadgen needs at least one request".to_string());
    }
    let (dim, probe_retries) = probe_state_dim(addr, opts)?;
    let (first, wall_s) = one_pass(addr, opts, dim)?;
    let mut connect_retries = probe_retries + first.connect_retries;
    let mut deterministic = None;
    for _ in 1..opts.runs.max(1) {
        let (next, _) = one_pass(addr, opts, dim)?;
        let same = next.weights_bits == first.weights_bits
            && next.weights_bits.len() == first.served as usize;
        deterministic = Some(deterministic.unwrap_or(true) && same);
        connect_retries += next.connect_retries;
    }
    let max_batch = first.batch_hist.keys().max().copied().unwrap_or(0) as u64;
    let (server_stages, server_degraded) = scrape_server_metrics(addr);
    Ok(LoadReport {
        mode: if opts.open_rps.is_some() { "open" } else { "closed" }.to_string(),
        requests: opts.requests as u64,
        served: first.served,
        shed_queue_full: first.shed_queue_full,
        shed_deadline: first.shed_deadline,
        errors: first.errors,
        wall_s,
        throughput_rps: if wall_s > 0.0 { first.served as f64 / wall_s } else { 0.0 },
        latency: summarize_latencies(first.latencies_us),
        batch_hist: first.batch_hist.into_iter().collect(),
        max_batch,
        deterministic,
        server_stages,
        server_degraded,
        connect_retries,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn percentiles_interpolate_between_ranks() {
        let sorted: Vec<u64> = (1..=100).collect();
        // rank 49.5 sits between 50 and 51: interpolation gives 50.5,
        // rounded half-up to 51 — nearest-rank truncation would say 50.
        assert_eq!(percentile(&sorted, 50.0), 51);
        assert_eq!(percentile(&sorted, 95.0), 95); // 94.05 -> 95.05 -> 95
        assert_eq!(percentile(&sorted, 99.0), 99); // 98.01 -> 99.01 -> 99
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&sorted, 0.0), 1);
        // A two-sample gap interpolates rather than snapping to an end.
        assert_eq!(percentile(&[0, 100], 50.0), 50);
        assert_eq!(percentile(&[0, 100], 75.0), 75);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn request_stream_is_reproducible() {
        let a = request_state(9, 3, 16);
        let b = request_state(9, 3, 16);
        assert_eq!(a, b);
        assert_ne!(request_state(9, 4, 16), a);
        assert_eq!(request_seed(9, 3), request_seed(9, 3));
    }

    #[test]
    fn tally_classifies_responses() {
        let mut t = RunTally::default();
        t.absorb_response(r#"{"id":1,"ok":true,"weights":[0.5,0.5],"batch":4}"#, 100);
        t.absorb_response(r#"{"id":2,"ok":false,"error":"queue_full","message":"m"}"#, 5);
        t.absorb_response(r#"{"id":3,"ok":false,"error":"deadline","message":"m"}"#, 5);
        t.absorb_response("garbage", 5);
        assert_eq!(t.served, 1);
        assert_eq!(t.shed_queue_full, 1);
        assert_eq!(t.shed_deadline, 1);
        assert_eq!(t.errors, 1);
        assert_eq!(t.batch_hist.get(&4), Some(&1));
        assert_eq!(t.weights_bits.get(&1).map(Vec::len), Some(2));
    }

    #[test]
    fn report_json_is_parseable_and_schema_tagged() {
        let report = LoadReport {
            mode: "closed".to_string(),
            requests: 10,
            served: 9,
            shed_queue_full: 1,
            shed_deadline: 0,
            errors: 0,
            wall_s: 0.5,
            throughput_rps: 18.0,
            latency: LatencySummary { p50_us: 10, p95_us: 20, p99_us: 30, mean_us: 12, max_us: 31 },
            batch_hist: vec![(1, 3), (4, 2)],
            max_batch: 4,
            deterministic: Some(true),
            server_stages: vec![
                (
                    "backend_infer".to_string(),
                    ServerStage { count: 9, p50_us: 8.0, p95_us: 18.0, p99_us: 25.0, max_us: 29.0 },
                ),
                (
                    "queue_wait".to_string(),
                    ServerStage { count: 9, p50_us: 2.0, p95_us: 4.0, p99_us: 5.0, max_us: 6.0 },
                ),
            ],
            server_degraded: Some(false),
            connect_retries: 2,
        };
        let v = parse(&report.to_json()).expect("report must be valid JSON");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some(SERVE_SCHEMA));
        assert_eq!(v.get("served").and_then(Value::as_u64), Some(9));
        assert_eq!(v.get("max_batch").and_then(Value::as_u64), Some(4));
        let stages = v.get("server_stages").expect("server_stages present");
        assert_eq!(
            stages.get("backend_infer").and_then(|s| s.get("count")).and_then(Value::as_u64),
            Some(9)
        );
        assert_eq!(v.get("server_degraded"), Some(&Value::Bool(false)));
        let text = report.render();
        assert!(text.contains("p95"));
        assert!(text.contains("bitwise identical"));
        assert!(text.contains("client e2e"), "side-by-side table renders the client row");
        assert!(text.contains("server backend_infer"));
        assert!(text.contains("server health: ok"));
    }
}
