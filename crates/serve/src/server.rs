//! The `std::net` front end: one reader thread per connection feeding the
//! shared [`Service`], one writer thread per connection fanning responses
//! back in submission order (so pipelined clients see FIFO responses even
//! though batches complete concurrently).
//!
//! Reads poll with a short timeout so every connection notices the stop
//! flag promptly; shutdown (the `{"cmd":"shutdown"}` verb or
//! [`ServerHandle::shutdown`]) stops accepting, lets every connection
//! finish its in-flight responses, drains the service queue, and joins
//! all threads before [`Server::run`] returns.

use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spikefolio_telemetry::value::Value;

use crate::metrics::{MetricsRegistry, Stage, METRICS_SCHEMA};
use crate::protocol::{self, Control, Payload, WireRequest};
use crate::service::{InferenceRequest, InferenceResponse, ServeError, Service};

/// Server tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerOptions {
    /// Poll interval for the per-connection stop check (ms).
    pub read_poll_ms: u64,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self { read_poll_ms: 100 }
    }
}

struct ServerShared {
    addr: SocketAddr,
    stop: AtomicBool,
}

/// A clonable handle that can stop a running [`Server`] from any thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<ServerShared>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.shared.addr)
            .field("stopped", &self.is_stopped())
            .finish()
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Whether shutdown has been requested.
    pub fn is_stopped(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Requests shutdown and wakes the accept loop.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway connection to ourselves.
        let _ = TcpStream::connect_timeout(&self.shared.addr, Duration::from_millis(500));
    }
}

/// The TCP server. Bind, grab a [`ServerHandle`], then [`run`](Self::run).
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    shared: Arc<ServerShared>,
    options: ServerOptions,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.shared.addr).finish()
    }
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) in front of `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(
        addr: &str,
        service: Arc<Service>,
        options: ServerOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared { addr, stop: AtomicBool::new(false) });
        Ok(Self { listener, service, shared, options })
    }

    /// The control handle for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Accept loop: blocks until shutdown is requested, then joins every
    /// connection, drains the service queue, and returns.
    ///
    /// # Errors
    ///
    /// Propagates listener failures (individual connection errors are
    /// tolerated).
    pub fn run(self) -> std::io::Result<()> {
        let handle = self.handle();
        let mut conns = Vec::new();
        for stream in self.listener.incoming() {
            if handle.is_stopped() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let service = Arc::clone(&self.service);
            let conn_handle = handle.clone();
            let poll = Duration::from_millis(self.options.read_poll_ms.max(1));
            let spawned = std::thread::Builder::new()
                .name("serve-conn".to_string())
                .spawn(move || handle_connection(stream, &service, &conn_handle, poll));
            if let Ok(h) = spawned {
                conns.push(h);
            }
        }
        drop(self.listener);
        for h in conns {
            let _ = h.join();
        }
        // Workers are still running here, so every pending response the
        // joined connections flushed was served; now drain and stop them.
        self.service.shutdown();
        Ok(())
    }
}

/// One queued outgoing item: an immediate line or a not-yet-served reply.
enum Outgoing {
    Line(String),
    Pending { id: u64, rx: Receiver<Result<InferenceResponse, ServeError>> },
}

fn writer_loop(
    stream: TcpStream,
    rx: &Receiver<Outgoing>,
    deterministic: bool,
    registry: &MetricsRegistry,
) {
    let mut out = BufWriter::new(stream);
    while let Ok(item) = rx.recv() {
        // Only served responses are timed through the render stage, so its
        // histogram count matches the served-request tally exactly.
        let (line, render_t0) = match item {
            Outgoing::Line(line) => (line, None),
            Outgoing::Pending { id, rx } => match rx.recv() {
                Ok(Ok(resp)) => {
                    let t0 = Instant::now();
                    (protocol::render_response(&resp, deterministic), Some(t0))
                }
                Ok(Err(err)) => (
                    protocol::render_error(Some(id), protocol::error_kind(&err), &err.to_string()),
                    None,
                ),
                Err(_) => {
                    (protocol::render_error(Some(id), "shutting_down", "service stopped"), None)
                }
            },
        };
        if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
            break;
        }
        if let Some(t0) = render_t0 {
            registry.observe_stage(Stage::Render, t0.elapsed());
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &Arc<Service>,
    handle: &ServerHandle,
    poll: Duration,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(poll));
    let Ok(write_half) = stream.try_clone() else { return };
    let deterministic = service.config().deterministic;
    let registry = Arc::clone(service.registry());
    let (out_tx, out_rx) = channel::<Outgoing>();
    let writer = std::thread::Builder::new()
        .name("serve-conn-writer".to_string())
        .spawn(move || writer_loop(write_half, &out_rx, deterministic, &registry));

    let mut read_half = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    'conn: loop {
        if handle.is_stopped() {
            break;
        }
        match read_half.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
                    let text = String::from_utf8_lossy(&line_bytes);
                    let line = text.trim();
                    if line.is_empty() {
                        continue;
                    }
                    if !process_line(line, service, handle, &out_tx) {
                        break 'conn;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    drop(out_tx);
    if let Ok(w) = writer {
        let _ = w.join();
    }
}

/// Handles one request line; returns `false` when the connection should
/// close (after a `shutdown` verb).
fn process_line(
    line: &str,
    service: &Arc<Service>,
    handle: &ServerHandle,
    out: &Sender<Outgoing>,
) -> bool {
    let parse_t0 = Instant::now();
    let request = match protocol::parse_request(line) {
        Ok(req) => req,
        Err(fail) => {
            service.registry().count_parse_error();
            let _ =
                out.send(Outgoing::Line(protocol::render_error(fail.id, "parse", &fail.message)));
            return true;
        }
    };
    match request {
        WireRequest::Infer(infer) => {
            // Parse-stage latency covers only inference requests so its
            // histogram count matches the issued-request tally; control
            // verbs are deliberately excluded.
            service.registry().observe_stage(Stage::Parse, parse_t0.elapsed());
            let corr = service.registry().mint_corr();
            let state = match infer.payload {
                Payload::State(state) => Ok(state),
                Payload::Window { candles, num_assets, prev_weights } => service
                    .store()
                    .current()
                    .backend
                    .state_from_window(&candles, num_assets, &prev_weights),
            };
            let state = match state {
                Ok(state) => state,
                Err(msg) => {
                    let _ = out.send(Outgoing::Line(protocol::render_error(
                        Some(infer.id),
                        "invalid",
                        &msg,
                    )));
                    return true;
                }
            };
            let deadline = infer.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
            let request =
                InferenceRequest { id: infer.id, state, seed: infer.seed, deadline, corr };
            match service.submit(request) {
                Ok(rx) => {
                    let _ = out.send(Outgoing::Pending { id: infer.id, rx });
                }
                Err(err) => {
                    let _ = out.send(Outgoing::Line(protocol::render_error(
                        Some(infer.id),
                        protocol::error_kind(&err),
                        &err.to_string(),
                    )));
                }
            }
            true
        }
        WireRequest::Control(Control::Info) => {
            let model = service.store().current();
            let _ = out.send(Outgoing::Line(protocol::render_ok(vec![
                ("schema".to_string(), Value::Str(protocol::SERVE_SCHEMA.to_string())),
                ("backend".to_string(), Value::Str(model.backend.name().to_string())),
                ("model_version".to_string(), Value::U64(model.version)),
                ("state_dim".to_string(), Value::U64(model.backend.state_dim() as u64)),
                ("action_dim".to_string(), Value::U64(model.backend.action_dim() as u64)),
                ("deterministic".to_string(), Value::Bool(service.config().deterministic)),
            ])));
            true
        }
        WireRequest::Control(Control::Metrics { prometheus }) => {
            let snap = service.metrics_snapshot();
            let line = if prometheus {
                protocol::render_ok(vec![
                    ("schema".to_string(), Value::Str(METRICS_SCHEMA.to_string())),
                    ("text".to_string(), Value::Str(snap.render_prometheus())),
                ])
            } else {
                protocol::render_ok(vec![
                    ("schema".to_string(), Value::Str(METRICS_SCHEMA.to_string())),
                    ("metrics".to_string(), snap.to_value()),
                ])
            };
            let _ = out.send(Outgoing::Line(line));
            true
        }
        WireRequest::Control(Control::Stats) => {
            let snap = service.stats();
            let swap = service.store().swap_status();
            let (swaps, swap_failures) = (swap.swaps, swap.failures);
            let mut stats = Value::Map(vec![
                ("requests".to_string(), Value::U64(snap.requests)),
                ("served".to_string(), Value::U64(snap.served)),
                ("shed_queue_full".to_string(), Value::U64(snap.shed_queue_full)),
                ("shed_deadline".to_string(), Value::U64(snap.shed_deadline)),
                ("invalid_input".to_string(), Value::U64(snap.invalid_input)),
                ("nonfinite_output".to_string(), Value::U64(snap.nonfinite_output)),
                ("renormalized".to_string(), Value::U64(snap.renormalized)),
                ("batches".to_string(), Value::U64(snap.batches)),
                ("max_batch".to_string(), Value::U64(snap.max_batch)),
                ("queue_depth_peak".to_string(), Value::U64(snap.queue_depth_peak)),
                ("swaps".to_string(), Value::U64(swaps)),
                ("swap_failures".to_string(), Value::U64(swap_failures)),
                ("swap_rejected".to_string(), Value::U64(swap.rejected)),
            ]);
            if let Value::Map(ref mut entries) = stats {
                entries.push(("last_good_version".to_string(), Value::U64(swap.last_good_version)));
                if let Some(kind) = swap.last_error_kind {
                    entries.push(("last_error_kind".to_string(), Value::Str(kind)));
                }
                if let Some(kind) = swap.last_rejection_kind {
                    entries.push(("last_rejection_kind".to_string(), Value::Str(kind)));
                }
            }
            let _ =
                out.send(Outgoing::Line(protocol::render_ok(vec![("stats".to_string(), stats)])));
            true
        }
        WireRequest::Control(Control::Ping) => {
            let _ = out.send(Outgoing::Line(protocol::render_ok(vec![(
                "pong".to_string(),
                Value::Bool(true),
            )])));
            true
        }
        WireRequest::Control(Control::Reload(path)) => {
            let line = match service.store().reload(&path) {
                Ok(version) => protocol::render_ok(vec![
                    ("model_version".to_string(), Value::U64(version)),
                    ("source".to_string(), Value::Str(path)),
                ]),
                Err(msg) => protocol::render_error(None, "reload_failed", &msg),
            };
            let _ = out.send(Outgoing::Line(line));
            true
        }
        WireRequest::Control(Control::Shutdown) => {
            let _ = out.send(Outgoing::Line(protocol::render_ok(vec![(
                "shutting_down".to_string(),
                Value::Bool(true),
            )])));
            handle.shutdown();
            false
        }
    }
}
