//! The policy abstraction the server batches over.

/// A frozen policy that maps state vectors to portfolio weight vectors.
///
/// Implementations must be safe to call from multiple batcher threads at
/// once (`&self`, `Send + Sync`) and deterministic in `(state, seed)`:
/// the same state and seed must produce bitwise the same weights no
/// matter how the sample is grouped into a batch. The PR 1 batched SNN
/// kernels guarantee exactly this (per-sample RNGs), which is what makes
/// dynamic micro-batching invisible to callers.
pub trait InferenceBackend: Send + Sync {
    /// Short human-readable backend name (e.g. `"snn-float"`).
    fn name(&self) -> &str;

    /// Expected state-vector length.
    fn state_dim(&self) -> usize;

    /// Length of the produced weight vector (`num_assets + 1`).
    fn action_dim(&self) -> usize;

    /// Runs one batch: `states` holds `seeds.len()` rows of
    /// [`state_dim`](Self::state_dim) values flattened row-major, sample
    /// `b` is evaluated with seed `seeds[b]`. Returns one weight vector
    /// per sample, in order.
    fn infer_batch(&self, states: &[f64], seeds: &[u64]) -> Vec<Vec<f64>>;

    /// Per-layer firing rates observed during the most recent batched
    /// forward, for the health drift monitor. `None` (the default) means
    /// the backend does not expose spiking internals; spiking backends
    /// override it.
    fn layer_firing_rates(&self) -> Option<Vec<f64>> {
        None
    }

    /// Builds a state vector from a raw OHLC window, for protocol clients
    /// that ship candles instead of features. `candles_flat` holds
    /// `[open, high, low, close]` per asset per period, assets
    /// consecutive within a period, oldest period first;
    /// `prev_weights` is the previous portfolio vector
    /// (`num_assets + 1`, cash first).
    ///
    /// # Errors
    ///
    /// The default implementation rejects window requests; backends with
    /// a state builder override it and report shape mismatches.
    fn state_from_window(
        &self,
        candles_flat: &[f64],
        num_assets: usize,
        prev_weights: &[f64],
    ) -> Result<Vec<f64>, String> {
        let _ = (candles_flat, num_assets, prev_weights);
        Err("this backend does not accept raw OHLC windows".to_string())
    }
}
