//! The in-process serving engine: admission queue, dynamic micro-batcher,
//! deadlines, shedding, boundary validation, graceful drain.
//!
//! Requests enter through [`Service::submit`] (or the blocking
//! [`Service::call`]) into a bounded `std::sync::mpsc` queue. Batcher
//! workers drain the queue up to [`BatchPolicy::max_batch`] requests or
//! [`BatchPolicy::max_wait_us`] microseconds — whichever comes first —
//! run one batched forward on the current model, validate every outgoing
//! weight vector, and fan results back out over per-request reply
//! channels. A full queue sheds immediately ([`ShedReason::QueueFull`]);
//! a request whose deadline expires while queued is shed at dispatch time
//! ([`ShedReason::DeadlineExceeded`]) rather than wasting a batch slot.
//! [`Service::shutdown`] closes admission, drains every queued request,
//! and joins the workers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spikefolio_telemetry::{labels, Recorder};

use crate::lock;
use crate::store::ModelStore;

/// Relative tolerance before a weight sum triggers renormalization.
/// Softmax output sums to 1 within a few ULP; anything past this is a
/// backend defect worth counting, not rounding noise.
const SIMPLEX_TOL: f64 = 1e-6;
/// Most negative component accepted (clamped to zero) before the vector
/// is rejected outright.
const NEG_TOL: f64 = -1e-9;

/// Micro-batch formation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest batch a worker dispatches.
    pub max_batch: usize,
    /// Longest a worker waits (µs) for the batch to fill after the first
    /// request arrives. `0` means "dispatch whatever is already queued".
    pub max_wait_us: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self { max_batch: 32, max_wait_us: 2_000 }
    }
}

/// Service construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Batch formation policy.
    pub batch: BatchPolicy,
    /// Admission queue capacity; a full queue sheds.
    pub queue_capacity: usize,
    /// Batcher worker threads. Forced to 1 in deterministic mode.
    pub workers: usize,
    /// Deterministic single-worker mode: one worker, and the protocol
    /// layer omits timing fields so identical request streams render
    /// bitwise-identical responses.
    pub deterministic: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            batch: BatchPolicy::default(),
            queue_capacity: 256,
            workers: 1,
            deterministic: false,
        }
    }
}

/// One inference request.
#[derive(Debug, Clone)]
pub struct InferenceRequest {
    /// Caller-chosen id, echoed back in the response.
    pub id: u64,
    /// State vector; must match the serving model's `state_dim`.
    pub state: Vec<f64>,
    /// Seed for the policy's stochastic encoder. Same `(model, state,
    /// seed)` always yields bitwise the same weights.
    pub seed: u64,
    /// Absolute deadline; the request is shed if still queued past it.
    pub deadline: Option<Instant>,
}

/// One served response.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Portfolio weight vector (cash first), validated finite and
    /// on-simplex.
    pub weights: Vec<f64>,
    /// Version of the model that answered.
    pub model_version: u64,
    /// Size of the micro-batch this request rode in.
    pub batch_size: usize,
    /// Time spent queued before dispatch (µs).
    pub queue_us: u64,
    /// Wall time of the batched forward (µs, whole batch).
    pub infer_us: u64,
    /// Whether the weight vector needed renormalization at the boundary.
    pub renormalized: bool,
}

/// Why a request was shed without being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission queue was full.
    QueueFull,
    /// The deadline expired before dispatch.
    DeadlineExceeded,
    /// The service is shutting down.
    ShuttingDown,
}

/// A request that produced no weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Load-shedding: the request was never run.
    Shed(ShedReason),
    /// The request (or the model's output for it) was invalid.
    Invalid(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shed(ShedReason::QueueFull) => write!(f, "shed: admission queue full"),
            ServeError::Shed(ShedReason::DeadlineExceeded) => write!(f, "shed: deadline exceeded"),
            ServeError::Shed(ShedReason::ShuttingDown) => write!(f, "shed: shutting down"),
            ServeError::Invalid(msg) => write!(f, "invalid: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Point-in-time view of the service counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Requests admitted into the queue.
    pub requests: u64,
    /// Responses served with weights.
    pub served: u64,
    /// Sheds: queue full at admission.
    pub shed_queue_full: u64,
    /// Sheds: deadline expired while queued.
    pub shed_deadline: u64,
    /// Rejected at the boundary: bad dimension / non-finite input.
    pub invalid_input: u64,
    /// Rejected at the boundary: non-finite model output.
    pub nonfinite_output: u64,
    /// Outputs renormalized back onto the simplex.
    pub renormalized: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Samples served across all batches.
    pub batched_samples: u64,
    /// Largest micro-batch dispatched.
    pub max_batch: u64,
    /// Requests currently queued.
    pub queue_depth: u64,
    /// Peak queue depth observed.
    pub queue_depth_peak: u64,
    /// Total wall time spent inside batched forwards (seconds).
    pub batch_wall_s: f64,
    /// `batch size → dispatch count` histogram.
    pub batch_hist: Vec<(usize, u64)>,
}

/// Shared atomic counters; workers update them lock-free except for the
/// wall-clock accumulator and histogram.
#[derive(Default)]
struct ServeStats {
    requests: AtomicU64,
    served: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_deadline: AtomicU64,
    invalid_input: AtomicU64,
    nonfinite_output: AtomicU64,
    renormalized: AtomicU64,
    batches: AtomicU64,
    batched_samples: AtomicU64,
    max_batch: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_peak: AtomicU64,
    batch_wall: Mutex<f64>,
    batch_hist: Mutex<BTreeMap<usize, u64>>,
}

impl ServeStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            invalid_input: self.invalid_input.load(Ordering::Relaxed),
            nonfinite_output: self.nonfinite_output.load(Ordering::Relaxed),
            renormalized: self.renormalized.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_samples: self.batched_samples.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            batch_wall_s: *lock(&self.batch_wall),
            batch_hist: lock(&self.batch_hist).iter().map(|(&k, &v)| (k, v)).collect(),
        }
    }
}

/// One queued unit of work.
struct Job {
    request: InferenceRequest,
    enqueued: Instant,
    reply: SyncSender<Result<InferenceResponse, ServeError>>,
}

/// The serving engine. Construct with [`Service::start`]; share via `Arc`.
pub struct Service {
    tx: Mutex<Option<SyncSender<Job>>>,
    stats: Arc<ServeStats>,
    store: Arc<ModelStore>,
    config: ServiceConfig,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service").field("config", &self.config).finish()
    }
}

impl Service {
    /// Starts the batcher workers and returns the running service.
    pub fn start(store: Arc<ModelStore>, mut config: ServiceConfig) -> Arc<Self> {
        if config.deterministic {
            config.workers = 1;
        }
        config.workers = config.workers.max(1);
        config.batch.max_batch = config.batch.max_batch.max(1);
        config.queue_capacity = config.queue_capacity.max(1);
        let (tx, rx) = sync_channel::<Job>(config.queue_capacity);
        let queue_rx = Arc::new(Mutex::new(rx));
        let service = Arc::new(Self {
            tx: Mutex::new(Some(tx)),
            stats: Arc::new(ServeStats::default()),
            store,
            config,
            workers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let rx = Arc::clone(&queue_rx);
            let stats = Arc::clone(&service.stats);
            let store = Arc::clone(&service.store);
            let policy = config.batch;
            let handle = std::thread::Builder::new()
                .name(format!("serve-batcher-{i}"))
                .spawn(move || worker_loop(&rx, &stats, &store, policy));
            if let Ok(h) = handle {
                handles.push(h);
            }
        }
        *lock(&service.workers) = handles;
        service
    }

    /// The configuration the service is running with (after
    /// deterministic-mode normalization).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The model store behind this service.
    pub fn store(&self) -> &Arc<ModelStore> {
        &self.store
    }

    /// Validates and enqueues a request; the returned channel yields the
    /// response (or shed/invalid error) exactly once.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] for malformed input,
    /// [`ServeError::Shed`] when the queue is full or the service is
    /// shutting down.
    pub fn submit(
        &self,
        request: InferenceRequest,
    ) -> Result<Receiver<Result<InferenceResponse, ServeError>>, ServeError> {
        let model = self.store.current();
        let dim = model.backend.state_dim();
        if request.state.len() != dim {
            self.stats.invalid_input.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid(format!(
                "state has {} values, model expects {dim}",
                request.state.len()
            )));
        }
        if !request.state.iter().all(|v| v.is_finite()) {
            self.stats.invalid_input.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid("state contains non-finite values".to_string()));
        }
        let (reply_tx, reply_rx) = sync_channel(1);
        let job = Job { request, enqueued: Instant::now(), reply: reply_tx };
        let guard = lock(&self.tx);
        let Some(tx) = guard.as_ref() else {
            return Err(ServeError::Shed(ShedReason::ShuttingDown));
        };
        match tx.try_send(job) {
            Ok(()) => {
                self.stats.requests.fetch_add(1, Ordering::Relaxed);
                let depth = self.stats.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
                self.stats.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
                Ok(reply_rx)
            }
            Err(TrySendError::Full(_)) => {
                self.stats.shed_queue_full.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Shed(ShedReason::QueueFull))
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::Shed(ShedReason::ShuttingDown)),
        }
    }

    /// Blocking convenience: [`submit`](Self::submit) then wait.
    ///
    /// # Errors
    ///
    /// Everything [`submit`](Self::submit) returns, plus
    /// [`ShedReason::ShuttingDown`] if the service stops before replying.
    pub fn call(&self, request: InferenceRequest) -> Result<InferenceResponse, ServeError> {
        let rx = self.submit(request)?;
        rx.recv().unwrap_or(Err(ServeError::Shed(ShedReason::ShuttingDown)))
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Dumps all counters, the queue-depth peak gauge, and the aggregate
    /// per-batch span into `rec`. Observe-only; typically called once at
    /// shutdown against a JSONL sink.
    pub fn flush_telemetry(&self, rec: &mut dyn Recorder) {
        let snap = self.stats.snapshot();
        let (swaps, swap_failures) = self.store.swap_counts();
        rec.counter(labels::COUNTER_SERVE_REQUESTS, snap.requests);
        rec.counter(labels::COUNTER_SERVE_SERVED, snap.served);
        rec.counter(labels::COUNTER_SERVE_SHED_QUEUE_FULL, snap.shed_queue_full);
        rec.counter(labels::COUNTER_SERVE_SHED_DEADLINE, snap.shed_deadline);
        rec.counter(labels::COUNTER_SERVE_INVALID_INPUT, snap.invalid_input);
        rec.counter(labels::COUNTER_SERVE_NONFINITE_OUTPUT, snap.nonfinite_output);
        rec.counter(labels::COUNTER_SERVE_RENORMALIZED, snap.renormalized);
        rec.counter(labels::COUNTER_SERVE_BATCHES, snap.batches);
        rec.counter(labels::COUNTER_SERVE_SWAPS, swaps);
        rec.counter(labels::COUNTER_SERVE_SWAP_FAILURES, swap_failures);
        rec.gauge(labels::GAUGE_SERVE_QUEUE_DEPTH, snap.queue_depth_peak as f64);
        if snap.batches > 0 {
            rec.span(labels::SPAN_SERVE_BATCH, snap.batch_wall_s);
        }
    }

    /// Graceful drain: closes admission (new submits shed with
    /// [`ShedReason::ShuttingDown`]), lets the workers serve everything
    /// already queued, and joins them. Idempotent.
    pub fn shutdown(&self) {
        lock(&self.tx).take();
        let handles: Vec<JoinHandle<()>> = lock(&self.workers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Collects one micro-batch: blocks for the first job, then fills up to
/// `max_batch` within `max_wait_us`. Returns `None` when the queue is
/// closed and empty.
fn collect_batch(rx: &Mutex<Receiver<Job>>, policy: BatchPolicy) -> Option<Vec<Job>> {
    let rx = lock(rx);
    let mut jobs = Vec::with_capacity(policy.max_batch);
    match rx.recv() {
        Ok(job) => jobs.push(job),
        Err(_) => return None,
    }
    if policy.max_wait_us == 0 {
        while jobs.len() < policy.max_batch {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        return Some(jobs);
    }
    let window = Duration::from_micros(policy.max_wait_us);
    let opened = Instant::now();
    while jobs.len() < policy.max_batch {
        let elapsed = opened.elapsed();
        if elapsed >= window {
            break;
        }
        match rx.recv_timeout(window - elapsed) {
            Ok(job) => jobs.push(job),
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
        }
    }
    Some(jobs)
}

fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    stats: &ServeStats,
    store: &ModelStore,
    policy: BatchPolicy,
) {
    while let Some(jobs) = collect_batch(rx, policy) {
        stats.queue_depth.fetch_sub(jobs.len() as u64, Ordering::Relaxed);
        run_batch(jobs, stats, store);
    }
}

/// Dispatches one collected batch: sheds expired jobs, runs the rest on
/// the current model, validates and fans out the results.
fn run_batch(jobs: Vec<Job>, stats: &ServeStats, store: &ModelStore) {
    let model = store.current();
    let backend = model.backend.as_ref();
    let dim = backend.state_dim();
    let now = Instant::now();
    let mut live = Vec::with_capacity(jobs.len());
    for job in jobs {
        if job.request.deadline.is_some_and(|d| d <= now) {
            stats.shed_deadline.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.try_send(Err(ServeError::Shed(ShedReason::DeadlineExceeded)));
        } else if job.request.state.len() != dim {
            // A hot swap cannot change dims, but stay defensive: a shape
            // mismatch must never reach `infer_batch` as a panic.
            stats.invalid_input.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.try_send(Err(ServeError::Invalid(format!(
                "state has {} values, model expects {dim}",
                job.request.state.len()
            ))));
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }

    let batch = live.len();
    let mut states = Vec::with_capacity(batch * dim);
    let mut seeds = Vec::with_capacity(batch);
    for job in &live {
        states.extend_from_slice(&job.request.state);
        seeds.push(job.request.seed);
    }
    let t0 = Instant::now();
    let mut actions = backend.infer_batch(&states, &seeds);
    let infer_s = t0.elapsed().as_secs_f64();
    let infer_us = (infer_s * 1e6) as u64;

    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats.batched_samples.fetch_add(batch as u64, Ordering::Relaxed);
    stats.max_batch.fetch_max(batch as u64, Ordering::Relaxed);
    *lock(&stats.batch_wall) += infer_s;
    *lock(&stats.batch_hist).entry(batch).or_insert(0) += 1;

    for (job, weights) in live.into_iter().zip(actions.drain(..)) {
        let queue_us = (job.enqueued.elapsed().as_secs_f64() * 1e6) as u64;
        let reply = match validate_weights(weights) {
            Ok((weights, renormalized)) => {
                stats.served.fetch_add(1, Ordering::Relaxed);
                if renormalized {
                    stats.renormalized.fetch_add(1, Ordering::Relaxed);
                }
                Ok(InferenceResponse {
                    id: job.request.id,
                    weights,
                    model_version: model.version,
                    batch_size: batch,
                    queue_us,
                    infer_us,
                    renormalized,
                })
            }
            Err(msg) => {
                stats.nonfinite_output.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Invalid(msg))
            }
        };
        let _ = job.reply.try_send(reply);
    }
}

/// Serving-boundary output validation: weights must be finite,
/// non-negative, and sum to 1. Tiny negatives are clamped, an off-simplex
/// sum is renormalized (reported via the bool), anything non-finite or
/// degenerate is rejected so it never leaves the service.
fn validate_weights(mut weights: Vec<f64>) -> Result<(Vec<f64>, bool), String> {
    if weights.is_empty() {
        return Err("model produced an empty weight vector".to_string());
    }
    let mut renormalized = false;
    for w in &mut weights {
        if !w.is_finite() {
            return Err("model produced non-finite weights".to_string());
        }
        if *w < 0.0 {
            if *w < NEG_TOL {
                return Err(format!("model produced negative weight {w}"));
            }
            *w = 0.0;
            renormalized = true;
        }
    }
    let sum: f64 = weights.iter().sum();
    if !sum.is_finite() || sum <= 0.0 {
        return Err(format!("weight sum {sum} is not renormalizable"));
    }
    if renormalized || (sum - 1.0).abs() > SIMPLEX_TOL {
        if (sum - 1.0).abs() > SIMPLEX_TOL {
            renormalized = true;
        }
        for w in &mut weights {
            *w /= sum;
        }
    }
    Ok((weights, renormalized))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::backend::InferenceBackend;
    use crate::store::ModelLoader;

    /// Deterministic test backend: weight `i` is proportional to
    /// `state[i % dim] + seed`, softmax-free but normalized.
    struct EchoBackend {
        dim: usize,
        actions: usize,
        delay: Duration,
    }

    impl InferenceBackend for EchoBackend {
        fn name(&self) -> &str {
            "echo"
        }
        fn state_dim(&self) -> usize {
            self.dim
        }
        fn action_dim(&self) -> usize {
            self.actions
        }
        fn infer_batch(&self, states: &[f64], seeds: &[u64]) -> Vec<Vec<f64>> {
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            seeds
                .iter()
                .enumerate()
                .map(|(b, &seed)| {
                    let row = &states[b * self.dim..(b + 1) * self.dim];
                    let raw: Vec<f64> = (0..self.actions)
                        .map(|i| row[i % self.dim].abs() + seed as f64 + 1.0)
                        .collect();
                    let sum: f64 = raw.iter().sum();
                    raw.into_iter().map(|v| v / sum).collect()
                })
                .collect()
        }
    }

    fn echo_loader(dim: usize, actions: usize, delay_ms: u64) -> Box<dyn ModelLoader> {
        Box::new(move |_: &str| -> Result<Box<dyn InferenceBackend>, String> {
            Ok(Box::new(EchoBackend { dim, actions, delay: Duration::from_millis(delay_ms) }))
        })
    }

    fn service(delay_ms: u64, cfg: ServiceConfig) -> Arc<Service> {
        let store = ModelStore::open(echo_loader(4, 3, delay_ms), "echo").unwrap();
        Service::start(Arc::new(store), cfg)
    }

    fn req(id: u64) -> InferenceRequest {
        InferenceRequest { id, state: vec![0.1, 0.2, 0.3, 0.4], seed: id, deadline: None }
    }

    #[test]
    fn serves_a_single_request() {
        let svc = service(0, ServiceConfig::default());
        let resp = svc.call(req(7)).unwrap();
        assert_eq!(resp.id, 7);
        assert_eq!(resp.model_version, 1);
        assert_eq!(resp.weights.len(), 3);
        let sum: f64 = resp.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        svc.shutdown();
        assert_eq!(svc.stats().served, 1);
    }

    #[test]
    fn rejects_bad_dimension_and_nonfinite_state() {
        let svc = service(0, ServiceConfig::default());
        let mut bad = req(1);
        bad.state.pop();
        assert!(matches!(svc.call(bad), Err(ServeError::Invalid(_))));
        let mut nan = req(2);
        nan.state[0] = f64::NAN;
        assert!(matches!(svc.call(nan), Err(ServeError::Invalid(_))));
        assert_eq!(svc.stats().invalid_input, 2);
    }

    #[test]
    fn sheds_when_queue_is_full() {
        let cfg = ServiceConfig {
            queue_capacity: 2,
            batch: BatchPolicy { max_batch: 1, max_wait_us: 0 },
            ..ServiceConfig::default()
        };
        // 50 ms per batch: the burst below cannot drain in time.
        let svc = service(50, cfg);
        let mut pending = Vec::new();
        let mut shed = 0;
        for i in 0..12 {
            match svc.submit(req(i)) {
                Ok(rx) => pending.push(rx),
                Err(ServeError::Shed(ShedReason::QueueFull)) => shed += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(shed > 0, "burst should overflow a capacity-2 queue");
        for rx in pending {
            assert!(rx.recv().unwrap().is_ok());
        }
        assert_eq!(svc.stats().shed_queue_full, shed);
    }

    #[test]
    fn sheds_expired_deadlines_at_dispatch() {
        let svc = service(0, ServiceConfig::default());
        let mut r = req(1);
        r.deadline = Some(Instant::now() - Duration::from_millis(1));
        match svc.call(r) {
            Err(ServeError::Shed(ShedReason::DeadlineExceeded)) => {}
            other => panic!("expected deadline shed, got {other:?}"),
        }
        assert_eq!(svc.stats().shed_deadline, 1);
    }

    #[test]
    fn batches_concurrent_requests() {
        let cfg = ServiceConfig {
            batch: BatchPolicy { max_batch: 16, max_wait_us: 20_000 },
            ..ServiceConfig::default()
        };
        // 20 ms per batch so the follow-up burst queues behind batch one.
        let svc = service(20, cfg);
        let receivers: Vec<_> = (0..12).map(|i| svc.submit(req(i)).unwrap()).collect();
        for rx in receivers {
            assert!(rx.recv().unwrap().is_ok());
        }
        let stats = svc.stats();
        assert_eq!(stats.served, 12);
        assert!(stats.max_batch > 1, "expected batching, saw max batch {}", stats.max_batch);
        assert!(stats.batches < 12, "expected fewer batches than requests");
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let cfg = ServiceConfig {
            batch: BatchPolicy { max_batch: 4, max_wait_us: 0 },
            ..ServiceConfig::default()
        };
        let svc = service(10, cfg);
        let receivers: Vec<_> = (0..8).map(|i| svc.submit(req(i)).unwrap()).collect();
        svc.shutdown();
        for rx in receivers {
            assert!(rx.recv().unwrap().is_ok(), "queued request lost in shutdown");
        }
        assert!(matches!(svc.call(req(99)), Err(ServeError::Shed(ShedReason::ShuttingDown))));
        assert_eq!(svc.stats().served, 8);
    }

    #[test]
    fn deterministic_mode_forces_single_worker() {
        let cfg = ServiceConfig { workers: 8, deterministic: true, ..ServiceConfig::default() };
        let svc = service(0, cfg);
        assert_eq!(svc.config().workers, 1);
    }

    #[test]
    fn validate_accepts_simplex() {
        let (w, renorm) = validate_weights(vec![0.25, 0.5, 0.25]).unwrap();
        assert_eq!(w, vec![0.25, 0.5, 0.25]);
        assert!(!renorm);
    }

    #[test]
    fn validate_renormalizes_off_simplex() {
        let (w, renorm) = validate_weights(vec![0.5, 0.5, 0.5]).unwrap();
        assert!(renorm);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validate_clamps_tiny_negative_and_renormalizes() {
        let (w, renorm) = validate_weights(vec![-1e-12, 0.6, 0.4]).unwrap();
        assert!(renorm);
        assert_eq!(w[0], 0.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_nonfinite_and_degenerate() {
        assert!(validate_weights(vec![f64::NAN, 0.5]).is_err());
        assert!(validate_weights(vec![f64::INFINITY, 0.5]).is_err());
        assert!(validate_weights(vec![0.0, 0.0]).is_err());
        assert!(validate_weights(vec![-0.5, 1.5]).is_err());
        assert!(validate_weights(Vec::new()).is_err());
    }

    #[test]
    fn flush_telemetry_reports_counters() {
        let svc = service(0, ServiceConfig::default());
        svc.call(req(1)).unwrap();
        svc.shutdown();
        let mut rec = spikefolio_telemetry::MemoryRecorder::default();
        svc.flush_telemetry(&mut rec);
        assert_eq!(rec.counter_total(labels::COUNTER_SERVE_SERVED), 1);
        assert_eq!(rec.counter_total(labels::COUNTER_SERVE_REQUESTS), 1);
        assert_eq!(rec.span_total(labels::SPAN_SERVE_BATCH).1, 1);
    }
}
