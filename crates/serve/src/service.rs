//! The in-process serving engine: admission queue, dynamic micro-batcher,
//! deadlines, shedding, boundary validation, graceful drain.
//!
//! Requests enter through [`Service::submit`] (or the blocking
//! [`Service::call`]) into a bounded `std::sync::mpsc` queue. Batcher
//! workers drain the queue up to [`BatchPolicy::max_batch`] requests or
//! [`BatchPolicy::max_wait_us`] microseconds — whichever comes first —
//! run one batched forward on the current model, validate every outgoing
//! weight vector, and fan results back out over per-request reply
//! channels. A full queue sheds immediately ([`ShedReason::QueueFull`]);
//! a request whose deadline expires while queued is shed at dispatch time
//! ([`ShedReason::DeadlineExceeded`]) rather than wasting a batch slot.
//! [`Service::shutdown`] closes admission, drains every queued request,
//! and joins the workers.
//!
//! Observability: every request is timed through the
//! [`MetricsRegistry`](crate::metrics::MetricsRegistry) stages (accept →
//! queue-wait → batch-form → backend-infer; the server front end adds
//! parse and render), carries a correlation id minted at admission (or
//! earlier, at parse), and can be sampled 1-in-N into a
//! [`ChromeTraceRecorder`] so a single request's spans load in Perfetto.
//! A health monitor compares live output entropy and per-layer firing
//! rates against a baseline probed whenever a checkpoint becomes live.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spikefolio_profile::ChromeTraceRecorder;
use spikefolio_telemetry::{labels, Record, Recorder};

use crate::lock;
use crate::metrics::{
    probe_baseline, weight_entropy, HealthConfig, MetricsRegistry, MetricsSnapshot, Stage,
};
use crate::store::ModelStore;

/// Relative tolerance before a weight sum triggers renormalization.
/// Softmax output sums to 1 within a few ULP; anything past this is a
/// backend defect worth counting, not rounding noise.
const SIMPLEX_TOL: f64 = 1e-6;
/// Most negative component accepted (clamped to zero) before the vector
/// is rejected outright.
const NEG_TOL: f64 = -1e-9;

/// Micro-batch formation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest batch a worker dispatches.
    pub max_batch: usize,
    /// Longest a worker waits (µs) for the batch to fill after the first
    /// request arrives. `0` means "dispatch whatever is already queued".
    pub max_wait_us: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self { max_batch: 32, max_wait_us: 2_000 }
    }
}

/// Service construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Batch formation policy.
    pub batch: BatchPolicy,
    /// Admission queue capacity; a full queue sheds.
    pub queue_capacity: usize,
    /// Batcher worker threads. Forced to 1 in deterministic mode.
    pub workers: usize,
    /// Deterministic single-worker mode: one worker, and the protocol
    /// layer omits timing fields (and correlation ids) so identical
    /// request streams render bitwise-identical responses.
    pub deterministic: bool,
    /// Health watchdog configuration (SLO, budgets, drift threshold,
    /// baseline probe).
    pub health: HealthConfig,
    /// Request-trace sampling interval: every N-th correlation id is
    /// exported through the chrome-trace recorder. `0` disables tracing
    /// (no recorder is created at all).
    pub trace_sample: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            batch: BatchPolicy::default(),
            queue_capacity: 256,
            workers: 1,
            deterministic: false,
            health: HealthConfig::default(),
            trace_sample: 0,
        }
    }
}

/// One inference request.
#[derive(Debug, Clone)]
pub struct InferenceRequest {
    /// Caller-chosen id, echoed back in the response.
    pub id: u64,
    /// State vector; must match the serving model's `state_dim`.
    pub state: Vec<f64>,
    /// Seed for the policy's stochastic encoder. Same `(model, state,
    /// seed)` always yields bitwise the same weights.
    pub seed: u64,
    /// Absolute deadline; the request is shed if still queued past it.
    pub deadline: Option<Instant>,
    /// Correlation id. `0` means "unset": [`Service::submit`] mints one
    /// from the registry; the TCP front end mints at parse so the id
    /// covers the whole server-side path.
    pub corr: u64,
}

/// One served response.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Correlation id the request travelled under.
    pub corr: u64,
    /// Portfolio weight vector (cash first), validated finite and
    /// on-simplex.
    pub weights: Vec<f64>,
    /// Version of the model that answered.
    pub model_version: u64,
    /// Size of the micro-batch this request rode in.
    pub batch_size: usize,
    /// Time spent queued before dispatch (µs).
    pub queue_us: u64,
    /// Wall time of the batched forward (µs, whole batch).
    pub infer_us: u64,
    /// Whether the weight vector needed renormalization at the boundary.
    pub renormalized: bool,
}

/// Why a request was shed without being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission queue was full.
    QueueFull,
    /// The deadline expired before dispatch.
    DeadlineExceeded,
    /// The service is shutting down.
    ShuttingDown,
}

/// A request that produced no weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Load-shedding: the request was never run.
    Shed(ShedReason),
    /// The request (or the model's output for it) was invalid.
    Invalid(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shed(ShedReason::QueueFull) => write!(f, "shed: admission queue full"),
            ServeError::Shed(ShedReason::DeadlineExceeded) => write!(f, "shed: deadline exceeded"),
            ServeError::Shed(ShedReason::ShuttingDown) => write!(f, "shed: shutting down"),
            ServeError::Invalid(msg) => write!(f, "invalid: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Point-in-time view of the service counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Requests admitted into the queue.
    pub requests: u64,
    /// Responses served with weights.
    pub served: u64,
    /// Sheds: queue full at admission.
    pub shed_queue_full: u64,
    /// Sheds: deadline expired while queued.
    pub shed_deadline: u64,
    /// Rejected at the boundary: bad dimension / non-finite input.
    pub invalid_input: u64,
    /// Rejected at the boundary: non-finite model output.
    pub nonfinite_output: u64,
    /// Outputs renormalized back onto the simplex.
    pub renormalized: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Samples served across all batches.
    pub batched_samples: u64,
    /// Largest micro-batch dispatched.
    pub max_batch: u64,
    /// Requests currently queued.
    pub queue_depth: u64,
    /// Peak queue depth observed.
    pub queue_depth_peak: u64,
    /// Total wall time spent inside batched forwards (seconds).
    pub batch_wall_s: f64,
    /// `batch size → dispatch count` histogram.
    pub batch_hist: Vec<(usize, u64)>,
}

/// One queued unit of work.
struct Job {
    request: InferenceRequest,
    enqueued: Instant,
    reply: SyncSender<Result<InferenceResponse, ServeError>>,
}

/// Everything a batcher worker needs, bundled so the thread spawn stays
/// readable.
struct WorkerCtx {
    metrics: Arc<MetricsRegistry>,
    store: Arc<ModelStore>,
    policy: BatchPolicy,
    health: HealthConfig,
    trace: Option<Arc<Mutex<ChromeTraceRecorder>>>,
    trace_sample: u64,
    baselined: Arc<AtomicU64>,
}

/// The serving engine. Construct with [`Service::start`]; share via `Arc`.
pub struct Service {
    tx: Mutex<Option<SyncSender<Job>>>,
    metrics: Arc<MetricsRegistry>,
    store: Arc<ModelStore>,
    config: ServiceConfig,
    workers: Mutex<Vec<JoinHandle<()>>>,
    trace: Option<Arc<Mutex<ChromeTraceRecorder>>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service").field("config", &self.config).finish()
    }
}

impl Service {
    /// Starts the batcher workers and returns the running service. The
    /// health baseline is probed from the initial model before any
    /// traffic is admitted.
    pub fn start(store: Arc<ModelStore>, mut config: ServiceConfig) -> Arc<Self> {
        if config.deterministic {
            config.workers = 1;
        }
        config.workers = config.workers.max(1);
        config.batch.max_batch = config.batch.max_batch.max(1);
        config.queue_capacity = config.queue_capacity.max(1);
        let metrics = Arc::new(MetricsRegistry::new());
        let trace =
            (config.trace_sample > 0).then(|| Arc::new(Mutex::new(ChromeTraceRecorder::new())));

        let model = store.current();
        metrics.health().set_baseline(probe_baseline(
            model.backend.as_ref(),
            &config.health,
            model.version,
        ));
        let baselined = Arc::new(AtomicU64::new(model.version));
        drop(model);

        let (tx, rx) = sync_channel::<Job>(config.queue_capacity);
        let queue_rx = Arc::new(Mutex::new(rx));
        let service = Arc::new(Self {
            tx: Mutex::new(Some(tx)),
            metrics,
            store,
            config,
            workers: Mutex::new(Vec::new()),
            trace,
        });
        let mut handles = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let rx = Arc::clone(&queue_rx);
            let ctx = WorkerCtx {
                metrics: Arc::clone(&service.metrics),
                store: Arc::clone(&service.store),
                policy: config.batch,
                health: config.health,
                trace: service.trace.as_ref().map(Arc::clone),
                trace_sample: config.trace_sample,
                baselined: Arc::clone(&baselined),
            };
            let handle = std::thread::Builder::new()
                .name(format!("serve-batcher-{i}"))
                .spawn(move || worker_loop(&rx, &ctx));
            if let Ok(h) = handle {
                handles.push(h);
            }
        }
        *lock(&service.workers) = handles;
        service
    }

    /// The configuration the service is running with (after
    /// deterministic-mode normalization).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The model store behind this service.
    pub fn store(&self) -> &Arc<ModelStore> {
        &self.store
    }

    /// The metrics registry — the server front end observes its parse and
    /// render stages and mints correlation ids from it.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Validates and enqueues a request; the returned channel yields the
    /// response (or shed/invalid error) exactly once. A request arriving
    /// with `corr == 0` gets a correlation id minted here.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] for malformed input,
    /// [`ServeError::Shed`] when the queue is full or the service is
    /// shutting down.
    pub fn submit(
        &self,
        request: InferenceRequest,
    ) -> Result<Receiver<Result<InferenceResponse, ServeError>>, ServeError> {
        let accept_t0 = Instant::now();
        let mut request = request;
        if request.corr == 0 {
            request.corr = self.metrics.mint_corr();
        }
        let model = self.store.current();
        let dim = model.backend.state_dim();
        if request.state.len() != dim {
            self.metrics.invalid_input.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid(format!(
                "state has {} values, model expects {dim}",
                request.state.len()
            )));
        }
        if !request.state.iter().all(|v| v.is_finite()) {
            self.metrics.invalid_input.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid("state contains non-finite values".to_string()));
        }
        let (reply_tx, reply_rx) = sync_channel(1);
        let job = Job { request, enqueued: Instant::now(), reply: reply_tx };
        let guard = lock(&self.tx);
        let Some(tx) = guard.as_ref() else {
            return Err(ServeError::Shed(ShedReason::ShuttingDown));
        };
        match tx.try_send(job) {
            Ok(()) => {
                self.metrics.requests.fetch_add(1, Ordering::Relaxed);
                let depth = self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
                self.metrics.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
                self.metrics.observe_stage(Stage::Accept, accept_t0.elapsed());
                Ok(reply_rx)
            }
            Err(TrySendError::Full(_)) => {
                self.metrics.shed_queue_full.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Shed(ShedReason::QueueFull))
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::Shed(ShedReason::ShuttingDown)),
        }
    }

    /// Blocking convenience: [`submit`](Self::submit) then wait.
    ///
    /// # Errors
    ///
    /// Everything [`submit`](Self::submit) returns, plus
    /// [`ShedReason::ShuttingDown`] if the service stops before replying.
    pub fn call(&self, request: InferenceRequest) -> Result<InferenceResponse, ServeError> {
        let rx = self.submit(request)?;
        rx.recv().unwrap_or(Err(ServeError::Shed(ShedReason::ShuttingDown)))
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        let m = &self.metrics;
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        StatsSnapshot {
            requests: c(&m.requests),
            served: c(&m.served),
            shed_queue_full: c(&m.shed_queue_full),
            shed_deadline: c(&m.shed_deadline),
            invalid_input: c(&m.invalid_input),
            nonfinite_output: c(&m.nonfinite_output),
            renormalized: c(&m.renormalized),
            batches: c(&m.batches),
            batched_samples: c(&m.batched_samples),
            max_batch: c(&m.max_batch),
            queue_depth: c(&m.queue_depth),
            queue_depth_peak: c(&m.queue_depth_peak),
            batch_wall_s: *lock(&m.batch_wall),
            batch_hist: lock(&m.batch_hist).iter().map(|(&k, &v)| (k, v)).collect(),
        }
    }

    /// Freezes the full observatory: stage histograms, per-version
    /// metrics, swap status, and the health watchdog verdict (which is
    /// evaluated — and the degraded flag updated — as part of taking the
    /// snapshot).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let model = self.store.current();
        self.metrics.snapshot(
            &self.config.health,
            model.backend.name().to_string(),
            model.version,
            self.store.swap_status(),
            (self.config.trace_sample > 0).then_some(self.config.trace_sample),
        )
    }

    /// Chrome-trace JSON of the sampled request traces, or `None` when
    /// tracing is disabled (`trace_sample == 0`).
    pub fn trace_json(&self) -> Option<String> {
        self.trace.as_ref().map(|t| lock(t).to_chrome_json())
    }

    /// Dumps all counters, the queue-depth peak gauge, the aggregate
    /// per-batch span, and a `serve_health` record into `rec`.
    /// Observe-only; typically called once at shutdown against a JSONL
    /// sink.
    pub fn flush_telemetry(&self, rec: &mut dyn Recorder) {
        let snap = self.stats();
        let m = self.metrics_snapshot();
        rec.counter(labels::COUNTER_SERVE_REQUESTS, snap.requests);
        rec.counter(labels::COUNTER_SERVE_SERVED, snap.served);
        rec.counter(labels::COUNTER_SERVE_SHED_QUEUE_FULL, snap.shed_queue_full);
        rec.counter(labels::COUNTER_SERVE_SHED_DEADLINE, snap.shed_deadline);
        rec.counter(labels::COUNTER_SERVE_INVALID_INPUT, snap.invalid_input);
        rec.counter(labels::COUNTER_SERVE_NONFINITE_OUTPUT, snap.nonfinite_output);
        rec.counter(labels::COUNTER_SERVE_RENORMALIZED, snap.renormalized);
        rec.counter(labels::COUNTER_SERVE_BATCHES, snap.batches);
        rec.counter(labels::COUNTER_SERVE_SWAPS, m.swap.swaps);
        rec.counter(labels::COUNTER_SERVE_SWAP_FAILURES, m.swap.failures);
        rec.counter(labels::COUNTER_SERVE_SWAP_REJECTED, m.swap.rejected);
        rec.counter(
            labels::COUNTER_SERVE_PARSE_ERRORS,
            self.metrics.parse_errors.load(Ordering::Relaxed),
        );
        rec.counter(labels::COUNTER_SERVE_OVER_SLO, self.metrics.over_slo.load(Ordering::Relaxed));
        rec.counter(labels::COUNTER_SERVE_TRACES_SAMPLED, m.traces_sampled);
        rec.counter(labels::COUNTER_SERVE_HEALTH_DEGRADED, u64::from(m.health.degraded));
        rec.gauge(labels::GAUGE_SERVE_QUEUE_DEPTH, snap.queue_depth_peak as f64);
        rec.gauge(labels::GAUGE_SERVE_HEALTH_DRIFT, m.health.drift_score);
        rec.gauge(labels::GAUGE_SERVE_HEALTH_BURN, m.health.burn_rate);
        rec.gauge(labels::GAUGE_SERVE_HEALTH_SHED, m.health.shed_rate);
        if snap.batches > 0 {
            rec.span(labels::SPAN_SERVE_BATCH, snap.batch_wall_s);
        }
        let mut record = Record::new("serve_health")
            .field("degraded", m.health.degraded)
            .field("drift_score", m.health.drift_score)
            .field("entropy_drift", m.health.entropy_drift)
            .field("rate_drift", m.health.rate_drift)
            .field("burn_rate", m.health.burn_rate)
            .field("shed_rate", m.health.shed_rate)
            .field("model_version", m.model_version);
        if let Some(e) = m.health.live_entropy {
            record = record.field("live_entropy", e);
        }
        if let Some(e) = m.health.baseline_entropy {
            record = record.field("baseline_entropy", e);
        }
        rec.emit(record);
    }

    /// Graceful drain: closes admission (new submits shed with
    /// [`ShedReason::ShuttingDown`]), lets the workers serve everything
    /// already queued, and joins them. Idempotent.
    pub fn shutdown(&self) {
        lock(&self.tx).take();
        let handles: Vec<JoinHandle<()>> = lock(&self.workers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Collects one micro-batch: blocks for the first job, then fills up to
/// `max_batch` within `max_wait_us`. Returns the jobs plus the formation
/// time (first arrival → dispatch); `None` when the queue is closed and
/// empty.
fn collect_batch(rx: &Mutex<Receiver<Job>>, policy: BatchPolicy) -> Option<(Vec<Job>, Duration)> {
    let rx = lock(rx);
    let mut jobs = Vec::with_capacity(policy.max_batch);
    match rx.recv() {
        Ok(job) => jobs.push(job),
        Err(_) => return None,
    }
    let opened = Instant::now();
    if policy.max_wait_us == 0 {
        while jobs.len() < policy.max_batch {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        return Some((jobs, opened.elapsed()));
    }
    let window = Duration::from_micros(policy.max_wait_us);
    while jobs.len() < policy.max_batch {
        let elapsed = opened.elapsed();
        if elapsed >= window {
            break;
        }
        match rx.recv_timeout(window - elapsed) {
            Ok(job) => jobs.push(job),
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
        }
    }
    Some((jobs, opened.elapsed()))
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, ctx: &WorkerCtx) {
    while let Some((jobs, form)) = collect_batch(rx, ctx.policy) {
        ctx.metrics.queue_depth.fetch_sub(jobs.len() as u64, Ordering::Relaxed);
        run_batch(jobs, form, ctx);
    }
}

/// Re-probes the health baseline when a hot swap changed the live model
/// version since the last probe. `compare_exchange` makes exactly one
/// worker probe each new version, covering swaps done directly on the
/// store (bypassing any service API).
fn maybe_rebaseline(ctx: &WorkerCtx, version: u64, backend: &dyn crate::InferenceBackend) {
    let seen = ctx.baselined.load(Ordering::Acquire);
    if version != seen
        && ctx
            .baselined
            .compare_exchange(seen, version, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    {
        ctx.metrics.health().set_baseline(probe_baseline(backend, &ctx.health, version));
    }
}

/// Dispatches one collected batch: sheds expired jobs, runs the rest on
/// the current model, validates and fans out the results, and feeds every
/// observability signal (stage histograms, per-version metrics, health
/// EWMAs, sampled request traces).
fn run_batch(jobs: Vec<Job>, form: Duration, ctx: &WorkerCtx) {
    let metrics = &ctx.metrics;
    let model = ctx.store.current();
    let backend = model.backend.as_ref();
    maybe_rebaseline(ctx, model.version, backend);
    let dim = backend.state_dim();
    let now = Instant::now();
    let mut live = Vec::with_capacity(jobs.len());
    for job in jobs {
        if job.request.deadline.is_some_and(|d| d <= now) {
            metrics.shed_deadline.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.try_send(Err(ServeError::Shed(ShedReason::DeadlineExceeded)));
        } else if job.request.state.len() != dim {
            // A hot swap cannot change dims, but stay defensive: a shape
            // mismatch must never reach `infer_batch` as a panic.
            metrics.invalid_input.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.try_send(Err(ServeError::Invalid(format!(
                "state has {} values, model expects {dim}",
                job.request.state.len()
            ))));
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }

    let batch = live.len();
    let dispatch = Instant::now();
    let queue_waits: Vec<Duration> =
        live.iter().map(|job| dispatch.duration_since(job.enqueued)).collect();
    for wait in &queue_waits {
        metrics.observe_stage(Stage::QueueWait, *wait);
        metrics.observe_stage(Stage::BatchForm, form);
    }
    let sampled: Vec<bool> = live
        .iter()
        .map(|job| ctx.trace_sample > 0 && job.request.corr % ctx.trace_sample == 0)
        .collect();
    // Queue-wait spans are recorded at dispatch so their reconstructed
    // interval ends exactly where the infer span begins.
    if sampled.iter().any(|&s| s) {
        if let Some(trace) = &ctx.trace {
            let mut t = lock(trace);
            for (job, (wait, &is_sampled)) in
                live.iter().zip(queue_waits.iter().zip(sampled.iter()))
            {
                if is_sampled {
                    let corr = job.request.corr;
                    t.span_on_track(
                        &format!("serve/req/{corr:x}/queue_wait"),
                        wait.as_secs_f64(),
                        corr,
                    );
                }
            }
            t.span_on_track("serve/batch_form", form.as_secs_f64(), 1);
        }
    }

    let mut states = Vec::with_capacity(batch * dim);
    let mut seeds = Vec::with_capacity(batch);
    for job in &live {
        states.extend_from_slice(&job.request.state);
        seeds.push(job.request.seed);
    }
    let t0 = Instant::now();
    let mut actions = backend.infer_batch(&states, &seeds);
    let infer = t0.elapsed();
    let infer_s = infer.as_secs_f64();
    let infer_us = (infer_s * 1e6) as u64;

    metrics.batches.fetch_add(1, Ordering::Relaxed);
    metrics.batched_samples.fetch_add(batch as u64, Ordering::Relaxed);
    metrics.max_batch.fetch_max(batch as u64, Ordering::Relaxed);
    *lock(&metrics.batch_wall) += infer_s;
    *lock(&metrics.batch_hist).entry(batch).or_insert(0) += 1;
    if let Some(rates) = backend.layer_firing_rates() {
        metrics.health().observe_rates(&rates);
    }
    let version_metrics = metrics.version_metrics(model.version, backend.name());

    if sampled.iter().any(|&s| s) {
        if let Some(trace) = &ctx.trace {
            let mut t = lock(trace);
            t.span_on_track("serve/batch_infer", infer_s, 1);
            for (job, &is_sampled) in live.iter().zip(sampled.iter()) {
                if is_sampled {
                    let corr = job.request.corr;
                    t.span_on_track(&format!("serve/req/{corr:x}/backend_infer"), infer_s, corr);
                    // The parent span covers enqueue → now; export-time
                    // left-edge snapping pins it over its children.
                    t.span_on_track(
                        &format!("serve/req/{corr:x}"),
                        job.enqueued.elapsed().as_secs_f64(),
                        corr,
                    );
                    metrics.count_trace_sample();
                }
            }
        }
    }

    for ((job, weights), wait) in live.into_iter().zip(actions.drain(..)).zip(queue_waits) {
        metrics.observe_stage(Stage::BackendInfer, infer);
        let queue_us = (wait.as_secs_f64() * 1e6) as u64;
        let reply = match validate_weights(weights) {
            Ok((weights, renormalized)) => {
                metrics.served.fetch_add(1, Ordering::Relaxed);
                if renormalized {
                    metrics.renormalized.fetch_add(1, Ordering::Relaxed);
                }
                if ctx.health.latency_slo_us > 0 && queue_us + infer_us > ctx.health.latency_slo_us
                {
                    metrics.over_slo.fetch_add(1, Ordering::Relaxed);
                }
                version_metrics.served.fetch_add(1, Ordering::Relaxed);
                version_metrics.infer.observe(infer);
                metrics.health().observe_entropy(weight_entropy(&weights));
                Ok(InferenceResponse {
                    id: job.request.id,
                    corr: job.request.corr,
                    weights,
                    model_version: model.version,
                    batch_size: batch,
                    queue_us,
                    infer_us,
                    renormalized,
                })
            }
            Err(msg) => {
                metrics.nonfinite_output.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Invalid(msg))
            }
        };
        let _ = job.reply.try_send(reply);
    }
}

/// Serving-boundary output validation: weights must be finite,
/// non-negative, and sum to 1. Tiny negatives are clamped, an off-simplex
/// sum is renormalized (reported via the bool), anything non-finite or
/// degenerate is rejected so it never leaves the service.
fn validate_weights(mut weights: Vec<f64>) -> Result<(Vec<f64>, bool), String> {
    if weights.is_empty() {
        return Err("model produced an empty weight vector".to_string());
    }
    let mut renormalized = false;
    for w in &mut weights {
        if !w.is_finite() {
            return Err("model produced non-finite weights".to_string());
        }
        if *w < 0.0 {
            if *w < NEG_TOL {
                return Err(format!("model produced negative weight {w}"));
            }
            *w = 0.0;
            renormalized = true;
        }
    }
    let sum: f64 = weights.iter().sum();
    if !sum.is_finite() || sum <= 0.0 {
        return Err(format!("weight sum {sum} is not renormalizable"));
    }
    if renormalized || (sum - 1.0).abs() > SIMPLEX_TOL {
        if (sum - 1.0).abs() > SIMPLEX_TOL {
            renormalized = true;
        }
        for w in &mut weights {
            *w /= sum;
        }
    }
    Ok((weights, renormalized))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::backend::InferenceBackend;
    use crate::store::ModelLoader;

    /// Deterministic test backend: weight `i` is proportional to
    /// `state[i % dim] + seed`, softmax-free but normalized.
    struct EchoBackend {
        dim: usize,
        actions: usize,
        delay: Duration,
    }

    impl InferenceBackend for EchoBackend {
        fn name(&self) -> &str {
            "echo"
        }
        fn state_dim(&self) -> usize {
            self.dim
        }
        fn action_dim(&self) -> usize {
            self.actions
        }
        fn infer_batch(&self, states: &[f64], seeds: &[u64]) -> Vec<Vec<f64>> {
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            seeds
                .iter()
                .enumerate()
                .map(|(b, &seed)| {
                    let row = &states[b * self.dim..(b + 1) * self.dim];
                    let raw: Vec<f64> = (0..self.actions)
                        .map(|i| row[i % self.dim].abs() + seed as f64 + 1.0)
                        .collect();
                    let sum: f64 = raw.iter().sum();
                    raw.into_iter().map(|v| v / sum).collect()
                })
                .collect()
        }
    }

    fn echo_loader(dim: usize, actions: usize, delay_ms: u64) -> Box<dyn ModelLoader> {
        Box::new(move |_: &str| -> Result<Box<dyn InferenceBackend>, String> {
            Ok(Box::new(EchoBackend { dim, actions, delay: Duration::from_millis(delay_ms) }))
        })
    }

    fn service(delay_ms: u64, cfg: ServiceConfig) -> Arc<Service> {
        let store = ModelStore::open(echo_loader(4, 3, delay_ms), "echo").unwrap();
        Service::start(Arc::new(store), cfg)
    }

    fn req(id: u64) -> InferenceRequest {
        InferenceRequest { id, state: vec![0.1, 0.2, 0.3, 0.4], seed: id, deadline: None, corr: 0 }
    }

    #[test]
    fn serves_a_single_request() {
        let svc = service(0, ServiceConfig::default());
        let resp = svc.call(req(7)).unwrap();
        assert_eq!(resp.id, 7);
        assert_eq!(resp.model_version, 1);
        assert_eq!(resp.weights.len(), 3);
        assert!(resp.corr > 0, "submit must mint a correlation id");
        let sum: f64 = resp.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        svc.shutdown();
        assert_eq!(svc.stats().served, 1);
    }

    #[test]
    fn rejects_bad_dimension_and_nonfinite_state() {
        let svc = service(0, ServiceConfig::default());
        let mut bad = req(1);
        bad.state.pop();
        assert!(matches!(svc.call(bad), Err(ServeError::Invalid(_))));
        let mut nan = req(2);
        nan.state[0] = f64::NAN;
        assert!(matches!(svc.call(nan), Err(ServeError::Invalid(_))));
        assert_eq!(svc.stats().invalid_input, 2);
    }

    #[test]
    fn sheds_when_queue_is_full() {
        let cfg = ServiceConfig {
            queue_capacity: 2,
            batch: BatchPolicy { max_batch: 1, max_wait_us: 0 },
            ..ServiceConfig::default()
        };
        // 50 ms per batch: the burst below cannot drain in time.
        let svc = service(50, cfg);
        let mut pending = Vec::new();
        let mut shed = 0;
        for i in 0..12 {
            match svc.submit(req(i)) {
                Ok(rx) => pending.push(rx),
                Err(ServeError::Shed(ShedReason::QueueFull)) => shed += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(shed > 0, "burst should overflow a capacity-2 queue");
        for rx in pending {
            assert!(rx.recv().unwrap().is_ok());
        }
        assert_eq!(svc.stats().shed_queue_full, shed);
    }

    #[test]
    fn sheds_expired_deadlines_at_dispatch() {
        let svc = service(0, ServiceConfig::default());
        let mut r = req(1);
        r.deadline = Some(Instant::now() - Duration::from_millis(1));
        match svc.call(r) {
            Err(ServeError::Shed(ShedReason::DeadlineExceeded)) => {}
            other => panic!("expected deadline shed, got {other:?}"),
        }
        assert_eq!(svc.stats().shed_deadline, 1);
    }

    #[test]
    fn batches_concurrent_requests() {
        let cfg = ServiceConfig {
            batch: BatchPolicy { max_batch: 16, max_wait_us: 20_000 },
            ..ServiceConfig::default()
        };
        // 20 ms per batch so the follow-up burst queues behind batch one.
        let svc = service(20, cfg);
        let receivers: Vec<_> = (0..12).map(|i| svc.submit(req(i)).unwrap()).collect();
        for rx in receivers {
            assert!(rx.recv().unwrap().is_ok());
        }
        let stats = svc.stats();
        assert_eq!(stats.served, 12);
        assert!(stats.max_batch > 1, "expected batching, saw max batch {}", stats.max_batch);
        assert!(stats.batches < 12, "expected fewer batches than requests");
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let cfg = ServiceConfig {
            batch: BatchPolicy { max_batch: 4, max_wait_us: 0 },
            ..ServiceConfig::default()
        };
        let svc = service(10, cfg);
        let receivers: Vec<_> = (0..8).map(|i| svc.submit(req(i)).unwrap()).collect();
        svc.shutdown();
        for rx in receivers {
            assert!(rx.recv().unwrap().is_ok(), "queued request lost in shutdown");
        }
        assert!(matches!(svc.call(req(99)), Err(ServeError::Shed(ShedReason::ShuttingDown))));
        assert_eq!(svc.stats().served, 8);
    }

    #[test]
    fn deterministic_mode_forces_single_worker() {
        let cfg = ServiceConfig { workers: 8, deterministic: true, ..ServiceConfig::default() };
        let svc = service(0, cfg);
        assert_eq!(svc.config().workers, 1);
    }

    #[test]
    fn validate_accepts_simplex() {
        let (w, renorm) = validate_weights(vec![0.25, 0.5, 0.25]).unwrap();
        assert_eq!(w, vec![0.25, 0.5, 0.25]);
        assert!(!renorm);
    }

    #[test]
    fn validate_renormalizes_off_simplex() {
        let (w, renorm) = validate_weights(vec![0.5, 0.5, 0.5]).unwrap();
        assert!(renorm);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validate_clamps_tiny_negative_and_renormalizes() {
        let (w, renorm) = validate_weights(vec![-1e-12, 0.6, 0.4]).unwrap();
        assert!(renorm);
        assert_eq!(w[0], 0.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_nonfinite_and_degenerate() {
        assert!(validate_weights(vec![f64::NAN, 0.5]).is_err());
        assert!(validate_weights(vec![f64::INFINITY, 0.5]).is_err());
        assert!(validate_weights(vec![0.0, 0.0]).is_err());
        assert!(validate_weights(vec![-0.5, 1.5]).is_err());
        assert!(validate_weights(Vec::new()).is_err());
    }

    #[test]
    fn flush_telemetry_reports_counters() {
        let svc = service(0, ServiceConfig::default());
        svc.call(req(1)).unwrap();
        svc.shutdown();
        let mut rec = spikefolio_telemetry::MemoryRecorder::default();
        svc.flush_telemetry(&mut rec);
        assert_eq!(rec.counter_total(labels::COUNTER_SERVE_SERVED), 1);
        assert_eq!(rec.counter_total(labels::COUNTER_SERVE_REQUESTS), 1);
        assert_eq!(rec.span_total(labels::SPAN_SERVE_BATCH).1, 1);
        assert_eq!(rec.counter_total(labels::COUNTER_SERVE_HEALTH_DEGRADED), 0);
    }

    #[test]
    fn service_stages_count_once_per_request() {
        let svc = service(0, ServiceConfig::default());
        for i in 0..9 {
            svc.call(req(i)).unwrap();
        }
        svc.shutdown();
        let snap = svc.metrics_snapshot();
        for (stage, hist) in &snap.stages {
            let expected = match stage {
                Stage::Parse | Stage::Render => 0, // server front-end stages
                _ => 9,
            };
            assert_eq!(
                hist.count,
                expected,
                "stage {} observed {} times, expected {expected}",
                stage.name(),
                hist.count
            );
        }
        assert_eq!(snap.versions.len(), 1);
        assert_eq!(snap.versions[0].served, 9);
        assert_eq!(snap.versions[0].infer.count, 9);
    }

    #[test]
    fn correlation_ids_are_distinct_and_echoed() {
        let svc = service(0, ServiceConfig::default());
        let a = svc.call(req(1)).unwrap();
        let b = svc.call(req(2)).unwrap();
        assert_ne!(a.corr, b.corr);
        // A pre-minted id is carried through untouched.
        let mut r = req(3);
        r.corr = 0xC0FFEE;
        assert_eq!(svc.call(r).unwrap().corr, 0xC0FFEE);
    }

    #[test]
    fn trace_sampling_exports_request_spans() {
        let cfg = ServiceConfig { trace_sample: 2, ..ServiceConfig::default() };
        let svc = service(0, cfg);
        for i in 0..8 {
            svc.call(req(i)).unwrap();
        }
        svc.shutdown();
        let snap = svc.metrics_snapshot();
        // Corr ids 1..=8: exactly 2, 4, 6, 8 are sampled.
        assert_eq!(snap.traces_sampled, 4);
        assert_eq!(snap.trace_sample, Some(2));
        let json = svc.trace_json().expect("tracing enabled");
        assert!(json.contains("serve/req/2/queue_wait"), "missing queue span: {json}");
        assert!(json.contains("serve/req/2/backend_infer"));
        assert!(json.contains("serve/batch_infer"));
        // Unsampled corr 3 must not appear as its own track.
        assert!(!json.contains("serve/req/3\""));
    }

    #[test]
    fn tracing_disabled_has_no_recorder() {
        let svc = service(0, ServiceConfig::default());
        svc.call(req(1)).unwrap();
        assert!(svc.trace_json().is_none());
        assert_eq!(svc.metrics_snapshot().traces_sampled, 0);
    }

    #[test]
    fn slo_burn_trips_degraded_with_slow_backend() {
        let cfg = ServiceConfig {
            health: HealthConfig { latency_slo_us: 100, ..HealthConfig::default() },
            ..ServiceConfig::default()
        };
        // Every request takes ≥ 5 ms against a 100 µs SLO.
        let svc = service(5, cfg);
        for i in 0..10 {
            svc.call(req(i)).unwrap();
        }
        let snap = svc.metrics_snapshot();
        assert!(snap.health.degraded, "burned SLO must degrade: {:?}", snap.health);
        assert!(snap.health.reasons.contains(&"latency_burn"));
        assert!(snap.health.burn_rate > 1.0);
        assert!(svc.registry().health().is_degraded());
    }

    #[test]
    fn hot_swap_rebaselines_health() {
        let svc = service(0, ServiceConfig::default());
        svc.call(req(1)).unwrap();
        assert_eq!(svc.metrics_snapshot().health.baseline_version, Some(1));
        svc.store().reload("echo").unwrap();
        svc.call(req(2)).unwrap();
        svc.shutdown();
        let snap = svc.metrics_snapshot();
        assert_eq!(snap.health.baseline_version, Some(2), "swap must re-probe the baseline");
        assert_eq!(snap.versions.len(), 2, "both versions keep their metrics");
    }
}
