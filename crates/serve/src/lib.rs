//! Batching policy-inference serving: the paper's end product is a frozen
//! SDP policy answering "given this price window and the previous weights,
//! what portfolio vector now?" — this crate turns such a policy into a
//! concurrent network service without leaving the standard library.
//!
//! The crate is deliberately generic: it knows nothing about checkpoints,
//! SNNs, or Loihi. A policy enters as a [`InferenceBackend`] trait object
//! (the core crate provides the float-SNN and Loihi-quantized
//! implementations), a checkpoint source enters as a [`ModelLoader`], and
//! everything above that — hot swap, micro-batching, admission control,
//! the wire protocol, load generation — lives here and is tested with
//! plain fake backends.
//!
//! Layering:
//!
//! * [`store`] — [`ModelStore`]: the current model behind an
//!   `RwLock<Arc<…>>` with validate-then-swap reloads and rollback on
//!   failure.
//! * [`service`] — [`Service`]: bounded admission queue, dynamic
//!   micro-batcher workers (`max_batch` / `max_wait_us`), deadlines,
//!   shedding, graceful drain, and the serving-boundary weight validation.
//! * [`protocol`] — the newline-delimited JSON request/response schema
//!   (`spikefolio.serve.v1`).
//! * [`server`] — the `std::net::TcpListener` front end.
//! * [`loadgen`] — closed- and open-loop load generation with latency
//!   percentiles, batch-size distribution, and a bitwise determinism
//!   check.
//!
//! Determinism: every request carries a seed, and the batched SNN kernels
//! are batch-composition invariant (PR 1), so served weights depend only
//! on `(model, state, seed)` — never on how concurrent requests happened
//! to be grouped into batches. With a single worker the full response
//! stream is bitwise reproducible.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod backend;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod service;
pub mod store;

pub use backend::InferenceBackend;
pub use loadgen::{run_loadgen, LatencySummary, LoadReport, LoadgenOptions, ServerStage};
pub use metrics::{
    HealthConfig, HealthReport, HistogramSnapshot, LatencyHistogram, MetricsRegistry,
    MetricsSnapshot, Stage, METRICS_SCHEMA,
};
pub use protocol::SERVE_SCHEMA;
pub use server::{Server, ServerHandle, ServerOptions};
pub use service::{
    BatchPolicy, InferenceRequest, InferenceResponse, ServeError, Service, ServiceConfig,
    ShedReason, StatsSnapshot,
};
pub use store::{LoadedModel, ModelLoader, ModelStore, SwapStatus};

/// Locks a mutex, recovering the guard from a poisoned lock — serving
/// must keep answering even if some thread panicked mid-update.
pub(crate) fn lock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
