//! The `spikefolio.serve.v1` newline-delimited JSON wire protocol.
//!
//! One JSON object per line in each direction. Inference request:
//!
//! ```json
//! {"id":1,"state":[...],"seed":9,"deadline_ms":50}
//! {"id":2,"window":[...],"assets":11,"prev_weights":[...],"seed":9}
//! ```
//!
//! `state` is a ready feature vector; `window` ships raw candles as
//! `[open, high, low, close]` per asset per period (assets consecutive
//! within a period, oldest period first) and is turned into a state by
//! the backend's `StateBuilder`. Control verbs:
//!
//! ```json
//! {"cmd":"info"} {"cmd":"stats"} {"cmd":"ping"}
//! {"cmd":"metrics"} {"cmd":"metrics","format":"prometheus"}
//! {"cmd":"reload","path":"model.ckpt"} {"cmd":"shutdown"}
//! ```
//!
//! `metrics` returns the schema-versioned `spikefolio.metrics.v1`
//! snapshot (stage latency histograms, per-version metrics, swap status,
//! health verdict) under a `metrics` key; the Prometheus format variant
//! embeds the text exposition as a JSON string under `text`.
//!
//! Successful inference response (deterministic mode omits the timing /
//! batch / correlation fields so identical request streams render bitwise
//! identical lines):
//!
//! ```json
//! {"id":1,"ok":true,"weights":[...],"model_version":2,
//!  "renormalized":false,"batch":4,"queue_us":120,"infer_us":900,
//!  "corr":17}
//! ```
//!
//! Errors: `{"id":1,"ok":false,"error":"queue_full","message":"..."}`
//! with `error` one of `parse`, `invalid`, `queue_full`, `deadline`,
//! `shutting_down`, `reload_failed`.

use spikefolio_telemetry::value::{parse, Value};

use crate::service::{InferenceResponse, ServeError, ShedReason};

/// Schema tag carried by `info` responses and loadgen reports.
pub const SERVE_SCHEMA: &str = "spikefolio.serve.v1";

/// The payload of an inference request.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A ready state vector.
    State(Vec<f64>),
    /// A raw OHLC window to run through the backend's state builder.
    Window {
        /// `[open, high, low, close]` × assets × periods, oldest first.
        candles: Vec<f64>,
        /// Number of risky assets in the window.
        num_assets: usize,
        /// Previous portfolio vector (`num_assets + 1`, cash first).
        prev_weights: Vec<f64>,
    },
}

/// A parsed inference request line.
#[derive(Debug, Clone, PartialEq)]
pub struct WireInfer {
    /// Caller id, echoed back.
    pub id: u64,
    /// State or window payload.
    pub payload: Payload,
    /// Encoder seed (defaults to 0).
    pub seed: u64,
    /// Relative deadline in milliseconds, if any.
    pub deadline_ms: Option<u64>,
}

/// A parsed control line.
#[derive(Debug, Clone, PartialEq)]
pub enum Control {
    /// Model / schema / dimensions probe.
    Info,
    /// Counter snapshot.
    Stats,
    /// Full `spikefolio.metrics.v1` observability snapshot; `prometheus`
    /// selects the text exposition instead of the JSON document.
    Metrics {
        /// Render as Prometheus text (embedded as a JSON string).
        prometheus: bool,
    },
    /// Liveness probe.
    Ping,
    /// Hot-swap to the checkpoint at the given path.
    Reload(String),
    /// Stop accepting connections and drain.
    Shutdown,
}

/// Any parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// An inference request.
    Infer(WireInfer),
    /// A control verb.
    Control(Control),
}

/// A request line that could not be parsed; `id` is echoed when it was
/// recoverable so the client can correlate the error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseFail {
    /// The request id, when one could be read.
    pub id: Option<u64>,
    /// What was wrong.
    pub message: String,
}

fn f64_list(v: &Value, what: &str) -> Result<Vec<f64>, String> {
    let items = v.as_list().ok_or_else(|| format!("{what} must be an array of numbers"))?;
    items
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| format!("{what} must contain only numbers")))
        .collect()
}

/// Parses one request line.
///
/// # Errors
///
/// [`ParseFail`] with the offending detail and the request id when
/// present.
pub fn parse_request(line: &str) -> Result<WireRequest, ParseFail> {
    let value =
        parse(line).map_err(|e| ParseFail { id: None, message: format!("bad JSON: {e}") })?;
    let id = value.get("id").and_then(Value::as_u64);
    let fail = |message: String| ParseFail { id, message };

    if let Some(cmd) = value.get("cmd").and_then(Value::as_str) {
        let control = match cmd {
            "info" => Control::Info,
            "stats" => Control::Stats,
            "metrics" => {
                let prometheus = match value.get("format").and_then(Value::as_str) {
                    None | Some("json") => false,
                    Some("prometheus") => true,
                    Some(other) => {
                        return Err(fail(format!(
                            "unknown metrics format {other:?} (json | prometheus)"
                        )))
                    }
                };
                Control::Metrics { prometheus }
            }
            "ping" => Control::Ping,
            "shutdown" => Control::Shutdown,
            "reload" => {
                let path = value
                    .get("path")
                    .and_then(Value::as_str)
                    .ok_or_else(|| fail("reload needs a \"path\" string".to_string()))?;
                Control::Reload(path.to_string())
            }
            other => return Err(fail(format!("unknown cmd {other:?}"))),
        };
        return Ok(WireRequest::Control(control));
    }

    let id = id.ok_or_else(|| ParseFail {
        id: None,
        message: "inference request needs a non-negative integer \"id\"".to_string(),
    })?;
    let fail = |message: String| ParseFail { id: Some(id), message };

    let payload = if let Some(state) = value.get("state") {
        Payload::State(f64_list(state, "state").map_err(fail)?)
    } else if let Some(window) = value.get("window") {
        let candles = f64_list(window, "window").map_err(fail)?;
        let num_assets = value
            .get("assets")
            .and_then(Value::as_u64)
            .ok_or_else(|| fail("window requests need an \"assets\" count".to_string()))?
            as usize;
        let prev_weights = match value.get("prev_weights") {
            Some(v) => f64_list(v, "prev_weights").map_err(fail)?,
            None => Vec::new(),
        };
        Payload::Window { candles, num_assets, prev_weights }
    } else {
        return Err(fail("request needs a \"state\" or \"window\" payload".to_string()));
    };

    let seed = value.get("seed").and_then(Value::as_u64).unwrap_or(0);
    let deadline_ms = value.get("deadline_ms").and_then(Value::as_u64);
    Ok(WireRequest::Infer(WireInfer { id, payload, seed, deadline_ms }))
}

/// Renders a served response. In `deterministic` mode the `batch`,
/// `queue_us`, `infer_us`, and `corr` fields are omitted so the line
/// depends only on `(model, state, seed)` — correlation ids reflect
/// cross-connection arrival order, which is exactly what determinism
/// must not leak.
pub fn render_response(resp: &InferenceResponse, deterministic: bool) -> String {
    let mut pairs = vec![
        ("id".to_string(), Value::U64(resp.id)),
        ("ok".to_string(), Value::Bool(true)),
        ("weights".to_string(), Value::List(resp.weights.iter().map(|&w| Value::F64(w)).collect())),
        ("model_version".to_string(), Value::U64(resp.model_version)),
        ("renormalized".to_string(), Value::Bool(resp.renormalized)),
    ];
    if !deterministic {
        pairs.push(("batch".to_string(), Value::U64(resp.batch_size as u64)));
        pairs.push(("queue_us".to_string(), Value::U64(resp.queue_us)));
        pairs.push(("infer_us".to_string(), Value::U64(resp.infer_us)));
        pairs.push(("corr".to_string(), Value::U64(resp.corr)));
    }
    Value::Map(pairs).to_json()
}

/// Wire name for each error class.
pub fn error_kind(err: &ServeError) -> &'static str {
    match err {
        ServeError::Shed(ShedReason::QueueFull) => "queue_full",
        ServeError::Shed(ShedReason::DeadlineExceeded) => "deadline",
        ServeError::Shed(ShedReason::ShuttingDown) => "shutting_down",
        ServeError::Invalid(_) => "invalid",
    }
}

/// Renders an error line.
pub fn render_error(id: Option<u64>, kind: &str, message: &str) -> String {
    let id_value = id.map_or(Value::Null, Value::U64);
    Value::Map(vec![
        ("id".to_string(), id_value),
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Str(kind.to_string())),
        ("message".to_string(), Value::Str(message.to_string())),
    ])
    .to_json()
}

/// Renders a simple `{"ok":true,...}` control acknowledgement from
/// prebuilt fields.
pub fn render_ok(extra: Vec<(String, Value)>) -> String {
    let mut pairs = vec![("ok".to_string(), Value::Bool(true))];
    pairs.extend(extra);
    Value::Map(pairs).to_json()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn parses_state_request_with_defaults() {
        let req = parse_request(r#"{"id":3,"state":[1.0,2.5,-0.5]}"#).unwrap();
        match req {
            WireRequest::Infer(inf) => {
                assert_eq!(inf.id, 3);
                assert_eq!(inf.seed, 0);
                assert_eq!(inf.deadline_ms, None);
                assert_eq!(inf.payload, Payload::State(vec![1.0, 2.5, -0.5]));
            }
            other => panic!("expected infer, got {other:?}"),
        }
    }

    #[test]
    fn parses_window_request() {
        let req = parse_request(
            r#"{"id":9,"window":[1,2,3,4,5,6,7,8],"assets":1,"prev_weights":[0.5,0.5],"seed":7,"deadline_ms":20}"#,
        )
        .unwrap();
        match req {
            WireRequest::Infer(inf) => {
                assert_eq!(inf.seed, 7);
                assert_eq!(inf.deadline_ms, Some(20));
                match inf.payload {
                    Payload::Window { candles, num_assets, prev_weights } => {
                        assert_eq!(candles.len(), 8);
                        assert_eq!(num_assets, 1);
                        assert_eq!(prev_weights, vec![0.5, 0.5]);
                    }
                    other => panic!("expected window, got {other:?}"),
                }
            }
            other => panic!("expected infer, got {other:?}"),
        }
    }

    #[test]
    fn parses_control_verbs() {
        assert_eq!(
            parse_request(r#"{"cmd":"info"}"#).unwrap(),
            WireRequest::Control(Control::Info)
        );
        assert_eq!(
            parse_request(r#"{"cmd":"ping"}"#).unwrap(),
            WireRequest::Control(Control::Ping)
        );
        assert_eq!(
            parse_request(r#"{"cmd":"reload","path":"m.ckpt"}"#).unwrap(),
            WireRequest::Control(Control::Reload("m.ckpt".to_string()))
        );
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#).unwrap(),
            WireRequest::Control(Control::Shutdown)
        );
    }

    #[test]
    fn parses_metrics_verb_with_formats() {
        assert_eq!(
            parse_request(r#"{"cmd":"metrics"}"#).unwrap(),
            WireRequest::Control(Control::Metrics { prometheus: false })
        );
        assert_eq!(
            parse_request(r#"{"cmd":"metrics","format":"json"}"#).unwrap(),
            WireRequest::Control(Control::Metrics { prometheus: false })
        );
        assert_eq!(
            parse_request(r#"{"cmd":"metrics","format":"prometheus"}"#).unwrap(),
            WireRequest::Control(Control::Metrics { prometheus: true })
        );
        let err = parse_request(r#"{"cmd":"metrics","format":"xml"}"#).unwrap_err();
        assert!(err.message.contains("unknown metrics format"), "{}", err.message);
    }

    #[test]
    fn parse_failures_carry_the_id_when_readable() {
        let err = parse_request(r#"{"id":5,"state":"nope"}"#).unwrap_err();
        assert_eq!(err.id, Some(5));
        assert!(err.message.contains("state"));
        let err = parse_request("not json").unwrap_err();
        assert_eq!(err.id, None);
        let err = parse_request(r#"{"id":1}"#).unwrap_err();
        assert!(err.message.contains("payload"));
        let err = parse_request(r#"{"cmd":"nope"}"#).unwrap_err();
        assert!(err.message.contains("unknown cmd"));
    }

    #[test]
    fn response_rendering_round_trips_weights_exactly() {
        let resp = InferenceResponse {
            id: 11,
            corr: 17,
            weights: vec![0.1, 0.2, 0.7],
            model_version: 4,
            batch_size: 8,
            queue_us: 120,
            infer_us: 900,
            renormalized: false,
        };
        let line = render_response(&resp, false);
        let v = parse(&line).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(11));
        assert_eq!(v.get("model_version").and_then(Value::as_u64), Some(4));
        assert_eq!(v.get("batch").and_then(Value::as_u64), Some(8));
        assert_eq!(v.get("corr").and_then(Value::as_u64), Some(17));
        let weights = v.get("weights").and_then(Value::as_list).unwrap();
        for (got, want) in weights.iter().zip(&resp.weights) {
            assert_eq!(got.as_f64().unwrap().to_bits(), want.to_bits());
        }
    }

    #[test]
    fn deterministic_rendering_omits_timing() {
        let resp = InferenceResponse {
            id: 1,
            corr: 99,
            weights: vec![1.0],
            model_version: 1,
            batch_size: 3,
            queue_us: 5,
            infer_us: 6,
            renormalized: false,
        };
        let line = render_response(&resp, true);
        assert!(!line.contains("batch"));
        assert!(!line.contains("queue_us"));
        assert!(!line.contains("infer_us"));
        assert!(!line.contains("corr"));
        assert!(line.contains("model_version"));
    }

    #[test]
    fn error_rendering_is_parseable() {
        let line = render_error(Some(2), "queue_full", "shed: admission queue full");
        let v = parse(&line).unwrap();
        assert_eq!(v.get("error").and_then(Value::as_str), Some("queue_full"));
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(2));
        let line = render_error(None, "parse", "bad JSON");
        assert!(parse(&line).is_ok());
    }

    #[test]
    fn error_kinds_cover_all_variants() {
        assert_eq!(error_kind(&ServeError::Shed(ShedReason::QueueFull)), "queue_full");
        assert_eq!(error_kind(&ServeError::Shed(ShedReason::DeadlineExceeded)), "deadline");
        assert_eq!(error_kind(&ServeError::Shed(ShedReason::ShuttingDown)), "shutting_down");
        assert_eq!(error_kind(&ServeError::Invalid("x".into())), "invalid");
    }
}
