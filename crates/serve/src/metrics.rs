//! The serving observatory: a lock-free metrics registry threaded through
//! every stage of the request path, plus the model-health monitors that
//! decide whether the live policy is still trustworthy.
//!
//! Three layers live here:
//!
//! * [`LatencyHistogram`] — HDR-style log-linear latency histogram over
//!   nanosecond durations. Eight sub-buckets per octave (`SUB_BITS = 3`)
//!   bound the relative quantile error at 12.5%; every operation on the
//!   hot path is a relaxed atomic, and two histograms merge exactly
//!   (bucket-wise addition loses nothing relative to observing into one).
//! * [`MetricsRegistry`] — the per-service registry: one histogram per
//!   [`Stage`] (accept, parse, queue-wait, batch-form, backend-infer,
//!   render), the admission/shed/validation counters, per-model-version
//!   serving metrics, the correlation-id mint, and the trace-sampling
//!   tally. The per-request path touches only atomics; per-batch
//!   bookkeeping (batch-size histogram, firing-rate EWMA) takes short
//!   uncontended mutexes.
//! * [`HealthMonitor`] — drift + SLO watchdog. A baseline (output-weight
//!   entropy and per-layer firing rates) is probed when a checkpoint
//!   becomes live; live serving folds the same signals into EWMAs; the
//!   watchdog compares them and combines the drift score with latency
//!   burn rate and shed rate into a `degraded` flag readable via the
//!   `metrics` verb.
//!
//! [`MetricsSnapshot`] freezes the whole registry into the schema-versioned
//! `spikefolio.metrics.v1` JSON document and also renders a
//! Prometheus-style text exposition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spikefolio_telemetry::value::Value;

use crate::backend::InferenceBackend;
use crate::lock;
use crate::store::SwapStatus;

/// Schema tag on every `metrics` snapshot.
pub const METRICS_SCHEMA: &str = "spikefolio.metrics.v1";

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per power-of-two octave,
/// bounding the relative width of any bucket at 1/8 = 12.5%.
const SUB_BITS: u32 = 3;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Bucket count covering the full `u64` nanosecond range: the first
/// octave stores values `< 8` exactly, then `(63 - 3 + 1)` octaves of 8.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_COUNT as usize;

/// Maps a nanosecond duration to its histogram bucket.
#[must_use]
pub fn bucket_index(ns: u64) -> usize {
    if ns < SUB_COUNT {
        return ns as usize;
    }
    let octave = 63 - ns.leading_zeros();
    let group = (octave - SUB_BITS + 1) as usize;
    let sub = ((ns >> (octave - SUB_BITS)) & (SUB_COUNT - 1)) as usize;
    (group << SUB_BITS) + sub
}

/// Inclusive `(lower, upper)` nanosecond bounds of a bucket.
#[must_use]
pub fn bucket_bounds_ns(index: usize) -> (u64, u64) {
    if index < SUB_COUNT as usize {
        return (index as u64, index as u64);
    }
    let group = (index >> SUB_BITS) as u32;
    let sub = (index as u64) & (SUB_COUNT - 1);
    let shift = group - 1;
    let lower = (SUB_COUNT + sub) << shift;
    // `lower + 2^shift - 1`, ordered so the top bucket (upper bound
    // exactly `u64::MAX`) does not overflow the intermediate sum.
    let upper = (lower - 1) + (1u64 << shift);
    (lower, upper)
}

/// Lock-free log-bucketed latency histogram (nanosecond resolution).
///
/// `observe` is a handful of relaxed atomic adds; `merge_from` is exact:
/// the merged bucket counts equal those of a histogram that observed both
/// input streams directly.
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        buckets.resize_with(NUM_BUCKETS, || AtomicU64::new(0));
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one duration in nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records one duration.
    pub fn observe(&self, d: Duration) {
        self.observe_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact merge: adds every bucket of `other` into `self`.
    pub fn merge_from(&self, other: &Self) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_ns.fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_ns.fetch_max(other.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Freezes the histogram into a point-in-time snapshot.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((bucket_bounds_ns(i).1, n));
            }
        }
        HistogramSnapshot::from_buckets(
            buckets,
            self.count.load(Ordering::Relaxed),
            self.sum_ns.load(Ordering::Relaxed),
            self.max_ns.load(Ordering::Relaxed),
        )
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram").field("count", &self.count()).finish()
    }
}

/// Frozen view of a [`LatencyHistogram`] with derived quantiles (µs).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations.
    pub count: u64,
    /// Mean duration (µs).
    pub mean_us: f64,
    /// Median (µs, bucket upper bound — ≤ 12.5% above the true value).
    pub p50_us: f64,
    /// 95th percentile (µs).
    pub p95_us: f64,
    /// 99th percentile (µs).
    pub p99_us: f64,
    /// 99.9th percentile (µs).
    pub p999_us: f64,
    /// Exact maximum (µs).
    pub max_us: f64,
    /// Non-empty buckets as `(upper_bound_ns, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    fn from_buckets(buckets: Vec<(u64, u64)>, count: u64, sum_ns: u64, max_ns: u64) -> Self {
        let pct = |q: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let rank = ((q / 100.0 * count as f64).ceil() as u64).clamp(1, count);
            let mut cum = 0u64;
            for &(upper, n) in &buckets {
                cum += n;
                if cum >= rank {
                    // The bucket bound can overshoot the true maximum by
                    // the bucket width; the exact max caps it.
                    return upper.min(max_ns) as f64 / 1e3;
                }
            }
            max_ns as f64 / 1e3
        };
        Self {
            count,
            mean_us: if count == 0 { 0.0 } else { sum_ns as f64 / count as f64 / 1e3 },
            p50_us: pct(50.0),
            p95_us: pct(95.0),
            p99_us: pct(99.0),
            p999_us: pct(99.9),
            max_us: max_ns as f64 / 1e3,
            buckets,
        }
    }

    /// JSON form used inside the `spikefolio.metrics.v1` snapshot.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("count".to_string(), Value::U64(self.count)),
            ("mean_us".to_string(), Value::F64(self.mean_us)),
            ("p50_us".to_string(), Value::F64(self.p50_us)),
            ("p95_us".to_string(), Value::F64(self.p95_us)),
            ("p99_us".to_string(), Value::F64(self.p99_us)),
            ("p999_us".to_string(), Value::F64(self.p999_us)),
            ("max_us".to_string(), Value::F64(self.max_us)),
        ])
    }
}

/// The six instrumented stages of a request's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Admission into the service queue (`Service::submit`).
    Accept,
    /// NDJSON parse of an inference line (server front end).
    Parse,
    /// Time between enqueue and batch dispatch.
    QueueWait,
    /// Time the micro-batch spent forming (first arrival → dispatch).
    BatchForm,
    /// Wall time of the batched backend forward.
    BackendInfer,
    /// Response rendering + write on the connection writer.
    Render,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Accept,
        Stage::Parse,
        Stage::QueueWait,
        Stage::BatchForm,
        Stage::BackendInfer,
        Stage::Render,
    ];

    /// Stable snake_case name used in snapshots and exposition.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Accept => "accept",
            Stage::Parse => "parse",
            Stage::QueueWait => "queue_wait",
            Stage::BatchForm => "batch_form",
            Stage::BackendInfer => "backend_infer",
            Stage::Render => "render",
        }
    }

    fn idx(self) -> usize {
        match self {
            Stage::Accept => 0,
            Stage::Parse => 1,
            Stage::QueueWait => 2,
            Stage::BatchForm => 3,
            Stage::BackendInfer => 4,
            Stage::Render => 5,
        }
    }
}

/// Per-model-version serving metrics (kept across hot swaps so a rollback
/// is visible as two populated versions).
#[derive(Debug)]
pub struct VersionMetrics {
    /// Model version this entry tracks.
    pub version: u64,
    /// Backend name at the time the version went live.
    pub backend: String,
    /// Responses served by this version.
    pub served: AtomicU64,
    /// Batched-forward wall time, attributed per request.
    pub infer: LatencyHistogram,
}

/// Health/SLO watchdog configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Per-request latency SLO (queue + infer, µs). `0` disables the
    /// latency burn monitor.
    pub latency_slo_us: u64,
    /// Fraction of requests allowed over the SLO before the burn rate
    /// reaches 1.0.
    pub burn_budget: f64,
    /// Fraction of admissions allowed to shed before the shed burn
    /// reaches 1.0.
    pub shed_budget: f64,
    /// Drift score above which the model is flagged degraded.
    pub drift_threshold: f64,
    /// Batch size of the baseline probe run at checkpoint load.
    pub probe_samples: usize,
    /// Seed for the deterministic probe states.
    pub probe_seed: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            latency_slo_us: 50_000,
            burn_budget: 0.05,
            shed_budget: 0.05,
            drift_threshold: 0.25,
            probe_samples: 4,
            probe_seed: 0xBA5E,
        }
    }
}

/// Reference signals captured when a checkpoint becomes live.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthBaseline {
    /// Model version the baseline was probed from.
    pub version: u64,
    /// Mean output-weight entropy (nats) over the probe batch.
    pub entropy: f64,
    /// Per-layer firing rates reported by the backend, if it exposes them.
    pub firing_rates: Option<Vec<f64>>,
}

/// Point-in-time health verdict included in the `metrics` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Whether any monitor tripped.
    pub degraded: bool,
    /// Which monitors tripped (`latency_burn`, `shed_rate`, `drift`).
    pub reasons: Vec<&'static str>,
    /// `(over-SLO fraction) / burn_budget`; ≥ 1.0 means the budget is burned.
    pub burn_rate: f64,
    /// Shed admissions / total admissions.
    pub shed_rate: f64,
    /// `max(entropy drift, firing-rate drift)`.
    pub drift_score: f64,
    /// Relative drift of live output entropy vs the baseline.
    pub entropy_drift: f64,
    /// Mean relative per-layer firing-rate drift vs the baseline.
    pub rate_drift: f64,
    /// Baseline entropy, if a baseline has been recorded.
    pub baseline_entropy: Option<f64>,
    /// Live entropy EWMA, if any responses were served.
    pub live_entropy: Option<f64>,
    /// Version the current baseline was probed from.
    pub baseline_version: Option<u64>,
}

/// EWMA smoothing factor for the live drift signals.
const EWMA_ALPHA: f64 = 0.1;
/// Firing-rate denominators are floored here so near-silent layers do not
/// produce unbounded relative drift.
const RATE_FLOOR: f64 = 0.01;

/// Drift + SLO monitor. Per-request entropy folding is an atomic CAS on
/// the f64 bits; rate folding is per-batch behind a short mutex.
#[derive(Default)]
pub struct HealthMonitor {
    degraded: AtomicBool,
    /// EWMA of served output entropy, stored as f64 bits (0 = unset; an
    /// entropy of exactly +0.0 is indistinguishable but harmless).
    live_entropy_bits: AtomicU64,
    state: Mutex<HealthState>,
}

#[derive(Default)]
struct HealthState {
    baseline: Option<HealthBaseline>,
    live_rates: Option<Vec<f64>>,
}

impl HealthMonitor {
    /// Installs a freshly probed baseline and resets the live EWMAs so a
    /// swapped-in model is judged against its own reference.
    pub fn set_baseline(&self, baseline: HealthBaseline) {
        let mut st = lock(&self.state);
        st.baseline = Some(baseline);
        st.live_rates = None;
        drop(st);
        self.live_entropy_bits.store(0, Ordering::Relaxed);
        self.degraded.store(false, Ordering::Relaxed);
    }

    /// Folds one served response's output entropy into the live EWMA.
    pub fn observe_entropy(&self, entropy: f64) {
        if !entropy.is_finite() {
            return;
        }
        let mut cur = self.live_entropy_bits.load(Ordering::Relaxed);
        loop {
            let next = if cur == 0 {
                entropy
            } else {
                let prev = f64::from_bits(cur);
                prev + EWMA_ALPHA * (entropy - prev)
            };
            match self.live_entropy_bits.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Folds one batch's per-layer firing rates into the live EWMA.
    pub fn observe_rates(&self, rates: &[f64]) {
        if rates.is_empty() {
            return;
        }
        let mut st = lock(&self.state);
        match &mut st.live_rates {
            Some(live) if live.len() == rates.len() => {
                for (l, &r) in live.iter_mut().zip(rates) {
                    *l += EWMA_ALPHA * (r - *l);
                }
            }
            slot => *slot = Some(rates.to_vec()),
        }
    }

    /// Whether the last evaluation flagged the service degraded.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Runs the watchdog against current counters and updates the
    /// degraded flag. `served`/`over_slo` gate the latency burn,
    /// `requests`/`sheds` the shed burn.
    pub fn evaluate(
        &self,
        cfg: &HealthConfig,
        served: u64,
        over_slo: u64,
        requests: u64,
        sheds: u64,
    ) -> HealthReport {
        let st = lock(&self.state);
        let baseline = st.baseline.clone();
        let live_rates = st.live_rates.clone();
        drop(st);
        let bits = self.live_entropy_bits.load(Ordering::Relaxed);
        let live_entropy = if bits == 0 { None } else { Some(f64::from_bits(bits)) };

        let entropy_drift = match (&baseline, live_entropy) {
            (Some(b), Some(live)) => (live - b.entropy).abs() / b.entropy.abs().max(1e-6),
            _ => 0.0,
        };
        let rate_drift = match (&baseline, &live_rates) {
            (Some(b), Some(live)) => match &b.firing_rates {
                Some(base) if base.len() == live.len() && !base.is_empty() => {
                    let total: f64 = base
                        .iter()
                        .zip(live)
                        .map(|(&b, &l)| (l - b).abs() / b.abs().max(RATE_FLOOR))
                        .sum();
                    total / base.len() as f64
                }
                _ => 0.0,
            },
            _ => 0.0,
        };
        let drift_score = entropy_drift.max(rate_drift);

        let burn_rate = if cfg.latency_slo_us > 0 && served > 0 && cfg.burn_budget > 0.0 {
            (over_slo as f64 / served as f64) / cfg.burn_budget
        } else {
            0.0
        };
        let shed_rate = if requests > 0 { sheds as f64 / requests as f64 } else { 0.0 };
        let shed_burn = if cfg.shed_budget > 0.0 { shed_rate / cfg.shed_budget } else { 0.0 };

        let mut reasons = Vec::new();
        if burn_rate > 1.0 {
            reasons.push("latency_burn");
        }
        if shed_burn > 1.0 {
            reasons.push("shed_rate");
        }
        if drift_score > cfg.drift_threshold {
            reasons.push("drift");
        }
        let degraded = !reasons.is_empty();
        self.degraded.store(degraded, Ordering::Relaxed);
        HealthReport {
            degraded,
            reasons,
            burn_rate,
            shed_rate,
            drift_score,
            entropy_drift,
            rate_drift,
            baseline_entropy: baseline.as_ref().map(|b| b.entropy),
            live_entropy,
            baseline_version: baseline.as_ref().map(|b| b.version),
        }
    }
}

impl std::fmt::Debug for HealthMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthMonitor").field("degraded", &self.is_degraded()).finish()
    }
}

/// Shannon entropy (nats) of a weight vector. Weights are assumed
/// non-negative and ~simplex (the serving boundary guarantees it); zero
/// components contribute zero.
#[must_use]
pub fn weight_entropy(weights: &[f64]) -> f64 {
    weights.iter().filter(|&&w| w > 0.0).map(|&w| -w * w.ln()).sum()
}

/// Runs the deterministic baseline probe against a backend: a seeded
/// batch of `probe_samples` states drawn uniformly from `[0.9, 1.1)`
/// (price-relative scale), whose outputs define the entropy baseline and
/// whose forward populates the backend's firing-rate observation.
#[must_use]
pub fn probe_baseline(
    backend: &dyn InferenceBackend,
    cfg: &HealthConfig,
    version: u64,
) -> HealthBaseline {
    let dim = backend.state_dim();
    let samples = cfg.probe_samples.max(1);
    let mut rng = StdRng::seed_from_u64(cfg.probe_seed);
    let mut states = Vec::with_capacity(samples * dim);
    for _ in 0..samples * dim {
        states.push(rng.gen_range(0.9..1.1));
    }
    let seeds: Vec<u64> = (0..samples as u64).map(|i| cfg.probe_seed.wrapping_add(i)).collect();
    let outputs = backend.infer_batch(&states, &seeds);
    let mut total = 0.0;
    let mut n = 0usize;
    for out in &outputs {
        let e = weight_entropy(out);
        if e.is_finite() {
            total += e;
            n += 1;
        }
    }
    let entropy = if n > 0 { total / n as f64 } else { 0.0 };
    HealthBaseline { version, entropy, firing_rates: backend.layer_firing_rates() }
}

/// The per-service metrics registry. Every per-request operation is a
/// relaxed atomic; snapshotting walks the structures without stopping
/// the world.
pub struct MetricsRegistry {
    started: Instant,
    stages: [LatencyHistogram; 6],
    next_corr: AtomicU64,
    traces_sampled: AtomicU64,
    /// Requests admitted into the queue.
    pub(crate) requests: AtomicU64,
    /// Responses served with weights.
    pub(crate) served: AtomicU64,
    /// Sheds: queue full at admission.
    pub(crate) shed_queue_full: AtomicU64,
    /// Sheds: deadline expired while queued.
    pub(crate) shed_deadline: AtomicU64,
    /// Boundary rejects: bad dimension / non-finite input.
    pub(crate) invalid_input: AtomicU64,
    /// Boundary rejects: non-finite model output.
    pub(crate) nonfinite_output: AtomicU64,
    /// Outputs renormalized back onto the simplex.
    pub(crate) renormalized: AtomicU64,
    /// Micro-batches executed.
    pub(crate) batches: AtomicU64,
    /// Samples served across all batches.
    pub(crate) batched_samples: AtomicU64,
    /// Largest micro-batch dispatched.
    pub(crate) max_batch: AtomicU64,
    /// Requests currently queued.
    pub(crate) queue_depth: AtomicU64,
    /// Peak queue depth observed.
    pub(crate) queue_depth_peak: AtomicU64,
    /// Inference lines that failed to parse at the server front end.
    pub(crate) parse_errors: AtomicU64,
    /// Served responses whose queue+infer time exceeded the latency SLO.
    pub(crate) over_slo: AtomicU64,
    pub(crate) batch_wall: Mutex<f64>,
    pub(crate) batch_hist: Mutex<BTreeMap<usize, u64>>,
    versions: Mutex<BTreeMap<u64, Arc<VersionMetrics>>>,
    health: HealthMonitor,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A fresh registry; `started` anchors the uptime gauge.
    #[must_use]
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            stages: std::array::from_fn(|_| LatencyHistogram::new()),
            next_corr: AtomicU64::new(1),
            traces_sampled: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            invalid_input: AtomicU64::new(0),
            nonfinite_output: AtomicU64::new(0),
            renormalized: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_samples: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_depth_peak: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
            over_slo: AtomicU64::new(0),
            batch_wall: Mutex::new(0.0),
            batch_hist: Mutex::new(BTreeMap::new()),
            versions: Mutex::new(BTreeMap::new()),
            health: HealthMonitor::default(),
        }
    }

    /// The histogram for one stage.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> &LatencyHistogram {
        &self.stages[stage.idx()]
    }

    /// Records one stage duration.
    pub fn observe_stage(&self, stage: Stage, d: Duration) {
        self.stage(stage).observe(d);
    }

    /// Mints the next correlation id (monotonic, starts at 1; 0 means
    /// "unset").
    pub fn mint_corr(&self) -> u64 {
        self.next_corr.fetch_add(1, Ordering::Relaxed)
    }

    /// Counts one request-trace sample export.
    pub fn count_trace_sample(&self) {
        self.traces_sampled.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one front-end parse failure.
    pub fn count_parse_error(&self) {
        self.parse_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// The per-version metrics entry, created on first use.
    pub fn version_metrics(&self, version: u64, backend: &str) -> Arc<VersionMetrics> {
        let mut map = lock(&self.versions);
        Arc::clone(map.entry(version).or_insert_with(|| {
            Arc::new(VersionMetrics {
                version,
                backend: backend.to_string(),
                served: AtomicU64::new(0),
                infer: LatencyHistogram::new(),
            })
        }))
    }

    /// The health monitor.
    #[must_use]
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// Seconds since the registry was created.
    #[must_use]
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Named counters in a stable order (snapshot + Prometheus share it).
    #[must_use]
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        vec![
            ("requests", c(&self.requests)),
            ("served", c(&self.served)),
            ("shed_queue_full", c(&self.shed_queue_full)),
            ("shed_deadline", c(&self.shed_deadline)),
            ("invalid_input", c(&self.invalid_input)),
            ("nonfinite_output", c(&self.nonfinite_output)),
            ("renormalized", c(&self.renormalized)),
            ("batches", c(&self.batches)),
            ("batched_samples", c(&self.batched_samples)),
            ("parse_errors", c(&self.parse_errors)),
            ("over_slo", c(&self.over_slo)),
            ("traces_sampled", c(&self.traces_sampled)),
        ]
    }

    /// Freezes the registry into a full snapshot. `swap` and the serving
    /// identity come from the caller (the service owns the store), as does
    /// the trace-sampling interval.
    #[must_use]
    pub fn snapshot(
        &self,
        cfg: &HealthConfig,
        backend: String,
        model_version: u64,
        swap: SwapStatus,
        trace_sample: Option<u64>,
    ) -> MetricsSnapshot {
        let served = self.served.load(Ordering::Relaxed);
        let over_slo = self.over_slo.load(Ordering::Relaxed);
        let requests = self.requests.load(Ordering::Relaxed);
        let sheds = self.shed_queue_full.load(Ordering::Relaxed)
            + self.shed_deadline.load(Ordering::Relaxed);
        let health = self.health.evaluate(cfg, served, over_slo, requests, sheds);
        let versions: Vec<VersionSnapshot> = lock(&self.versions)
            .values()
            .map(|v| VersionSnapshot {
                version: v.version,
                backend: v.backend.clone(),
                served: v.served.load(Ordering::Relaxed),
                infer: v.infer.snapshot(),
            })
            .collect();
        MetricsSnapshot {
            uptime_s: self.uptime_s(),
            backend,
            model_version,
            counters: self.counters(),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            batch_wall_s: *lock(&self.batch_wall),
            batch_hist: lock(&self.batch_hist).iter().map(|(&k, &v)| (k, v)).collect(),
            stages: Stage::ALL.map(|s| (s, self.stage(s).snapshot())).to_vec(),
            versions,
            swap,
            health,
            slo_us: cfg.latency_slo_us,
            trace_sample,
            traces_sampled: self.traces_sampled.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("requests", &self.requests.load(Ordering::Relaxed))
            .finish()
    }
}

/// Frozen per-version metrics inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionSnapshot {
    /// Model version.
    pub version: u64,
    /// Backend name when the version went live.
    pub backend: String,
    /// Responses served by this version.
    pub served: u64,
    /// Per-request infer latency under this version.
    pub infer: HistogramSnapshot,
}

/// Escapes a Prometheus label value: backslash, double quote, and
/// newline must be backslash-escaped per the text exposition format.
fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// The full `spikefolio.metrics.v1` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Seconds the service has been up.
    pub uptime_s: f64,
    /// Live backend name.
    pub backend: String,
    /// Live model version.
    pub model_version: u64,
    /// Named monotonic counters.
    pub counters: Vec<(&'static str, u64)>,
    /// Requests currently queued.
    pub queue_depth: u64,
    /// Peak queue depth.
    pub queue_depth_peak: u64,
    /// Largest micro-batch dispatched.
    pub max_batch: u64,
    /// Total wall time inside batched forwards (seconds).
    pub batch_wall_s: f64,
    /// `batch size → dispatch count`.
    pub batch_hist: Vec<(usize, u64)>,
    /// Per-stage latency, pipeline order.
    pub stages: Vec<(Stage, HistogramSnapshot)>,
    /// Per-model-version serving metrics.
    pub versions: Vec<VersionSnapshot>,
    /// Hot-swap status from the model store.
    pub swap: SwapStatus,
    /// Watchdog verdict.
    pub health: HealthReport,
    /// The latency SLO the watchdog judges against (µs).
    pub slo_us: u64,
    /// Request-trace sampling interval (`None` when tracing is off).
    pub trace_sample: Option<u64>,
    /// Request traces exported so far.
    pub traces_sampled: u64,
}

impl MetricsSnapshot {
    /// The `metrics` payload of the NDJSON response: everything under one
    /// schema-versioned map.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let counters = self.counters.iter().map(|&(k, v)| (k.to_string(), Value::U64(v))).collect();
        let gauges = vec![
            ("queue_depth".to_string(), Value::U64(self.queue_depth)),
            ("queue_depth_peak".to_string(), Value::U64(self.queue_depth_peak)),
            ("max_batch".to_string(), Value::U64(self.max_batch)),
            ("batch_wall_s".to_string(), Value::F64(self.batch_wall_s)),
        ];
        let stages = self
            .stages
            .iter()
            .map(|(s, h)| (s.name().to_string(), h.to_value()))
            .collect::<Vec<_>>();
        let batch_hist = self
            .batch_hist
            .iter()
            .map(|&(size, n)| {
                Value::Map(vec![
                    ("batch".to_string(), Value::U64(size as u64)),
                    ("count".to_string(), Value::U64(n)),
                ])
            })
            .collect();
        let versions = self
            .versions
            .iter()
            .map(|v| {
                Value::Map(vec![
                    ("version".to_string(), Value::U64(v.version)),
                    ("backend".to_string(), Value::Str(v.backend.clone())),
                    ("served".to_string(), Value::U64(v.served)),
                    ("infer".to_string(), v.infer.to_value()),
                ])
            })
            .collect();
        let swap = Value::Map(vec![
            ("swaps".to_string(), Value::U64(self.swap.swaps)),
            ("failures".to_string(), Value::U64(self.swap.failures)),
            ("last_good_version".to_string(), Value::U64(self.swap.last_good_version)),
            (
                "last_error_kind".to_string(),
                match &self.swap.last_error_kind {
                    Some(k) => Value::Str(k.clone()),
                    None => Value::Null,
                },
            ),
            (
                "last_error".to_string(),
                match &self.swap.last_error {
                    Some(m) => Value::Str(m.clone()),
                    None => Value::Null,
                },
            ),
            ("rejected".to_string(), Value::U64(self.swap.rejected)),
            (
                "rejected_by_kind".to_string(),
                Value::Map(
                    self.swap
                        .rejected_by_kind
                        .iter()
                        .map(|(k, n)| (k.clone(), Value::U64(*n)))
                        .collect(),
                ),
            ),
            (
                "last_rejection_kind".to_string(),
                match &self.swap.last_rejection_kind {
                    Some(k) => Value::Str(k.clone()),
                    None => Value::Null,
                },
            ),
            (
                "last_rejection".to_string(),
                match &self.swap.last_rejection {
                    Some(m) => Value::Str(m.clone()),
                    None => Value::Null,
                },
            ),
        ]);
        let h = &self.health;
        let opt_f = |v: Option<f64>| v.map_or(Value::Null, Value::F64);
        let health = Value::Map(vec![
            ("degraded".to_string(), Value::Bool(h.degraded)),
            (
                "reasons".to_string(),
                Value::List(h.reasons.iter().map(|r| Value::Str((*r).to_string())).collect()),
            ),
            ("burn_rate".to_string(), Value::F64(h.burn_rate)),
            ("shed_rate".to_string(), Value::F64(h.shed_rate)),
            ("drift_score".to_string(), Value::F64(h.drift_score)),
            ("entropy_drift".to_string(), Value::F64(h.entropy_drift)),
            ("rate_drift".to_string(), Value::F64(h.rate_drift)),
            ("baseline_entropy".to_string(), opt_f(h.baseline_entropy)),
            ("live_entropy".to_string(), opt_f(h.live_entropy)),
            ("baseline_version".to_string(), h.baseline_version.map_or(Value::Null, Value::U64)),
            ("slo_us".to_string(), Value::U64(self.slo_us)),
        ]);
        let trace = Value::Map(vec![
            ("sample_every".to_string(), self.trace_sample.map_or(Value::Null, Value::U64)),
            ("sampled".to_string(), Value::U64(self.traces_sampled)),
        ]);
        Value::Map(vec![
            ("uptime_s".to_string(), Value::F64(self.uptime_s)),
            ("backend".to_string(), Value::Str(self.backend.clone())),
            ("model_version".to_string(), Value::U64(self.model_version)),
            ("counters".to_string(), Value::Map(counters)),
            ("gauges".to_string(), Value::Map(gauges)),
            ("stages".to_string(), Value::Map(stages)),
            ("batch_hist".to_string(), Value::List(batch_hist)),
            ("versions".to_string(), Value::List(versions)),
            ("swap".to_string(), swap),
            ("health".to_string(), health),
            ("trace".to_string(), trace),
        ])
    }

    /// Prometheus-style text exposition of the same data.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for &(name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE spikefolio_serve_{name}_total counter");
            let _ = writeln!(out, "spikefolio_serve_{name}_total {v}");
        }
        let gauges: [(&str, f64); 6] = [
            ("queue_depth", self.queue_depth as f64),
            ("queue_depth_peak", self.queue_depth_peak as f64),
            ("max_batch", self.max_batch as f64),
            ("uptime_seconds", self.uptime_s),
            ("degraded", if self.health.degraded { 1.0 } else { 0.0 }),
            ("drift_score", self.health.drift_score),
        ];
        for (name, v) in gauges {
            let _ = writeln!(out, "# TYPE spikefolio_serve_{name} gauge");
            let _ = writeln!(out, "spikefolio_serve_{name} {v}");
        }
        // Swap counters come from the model store rather than the
        // registry; `swap_rejected` (gate said no) is deliberately a
        // different series from `swap_failures` (reload IO/validation
        // broke mid-swap).
        let swap_counters: [(&str, u64); 2] =
            [("swaps", self.swap.swaps), ("swap_failures", self.swap.failures)];
        for (name, v) in swap_counters {
            let _ = writeln!(out, "# TYPE spikefolio_serve_{name}_total counter");
            let _ = writeln!(out, "spikefolio_serve_{name}_total {v}");
        }
        // Gate rejections are labeled by the gate stage that said no, so
        // a dashboard can tell an integrity rot from a reward regression
        // without scraping logs.
        let _ = writeln!(out, "# TYPE spikefolio_serve_swap_rejected_total counter");
        if self.swap.rejected_by_kind.is_empty() {
            let _ = writeln!(out, "spikefolio_serve_swap_rejected_total {}", self.swap.rejected);
        } else {
            for (kind, n) in &self.swap.rejected_by_kind {
                let _ = writeln!(
                    out,
                    "spikefolio_serve_swap_rejected_total{{reason=\"{}\"}} {n}",
                    escape_label_value(kind)
                );
            }
        }
        let _ = writeln!(out, "# TYPE spikefolio_serve_model_version gauge");
        let _ = writeln!(out, "spikefolio_serve_model_version {}", self.model_version);
        let _ = writeln!(out, "# TYPE spikefolio_serve_stage_latency_seconds histogram");
        for (stage, h) in &self.stages {
            let name = stage.name();
            let mut cum = 0u64;
            for &(upper_ns, n) in &h.buckets {
                cum += n;
                let _ = writeln!(
                    out,
                    "spikefolio_serve_stage_latency_seconds_bucket{{stage=\"{name}\",le=\"{}\"}} {cum}",
                    upper_ns as f64 / 1e9
                );
            }
            let _ = writeln!(
                out,
                "spikefolio_serve_stage_latency_seconds_bucket{{stage=\"{name}\",le=\"+Inf\"}} {}",
                h.count
            );
            let _ = writeln!(
                out,
                "spikefolio_serve_stage_latency_seconds_sum{{stage=\"{name}\"}} {}",
                h.mean_us * h.count as f64 / 1e6
            );
            let _ = writeln!(
                out,
                "spikefolio_serve_stage_latency_seconds_count{{stage=\"{name}\"}} {}",
                h.count
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_contain_values() {
        let mut values: Vec<u64> = Vec::new();
        for shift in 0u32..64 {
            for off in [0u64, 1, 3] {
                values.push((1u64 << shift).saturating_add(off << shift.saturating_sub(2)));
            }
        }
        values.sort_unstable();
        let mut prev = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index not monotone at {v}");
            prev = idx;
            let (lo, hi) = bucket_bounds_ns(idx);
            assert!(lo <= v && v <= hi, "value {v} outside bucket [{lo}, {hi}]");
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for v in [8u64, 100, 1_000, 12_345, 1_000_000, 987_654_321, u64::MAX / 3] {
            let (lo, hi) = bucket_bounds_ns(bucket_index(v));
            let width = (hi - lo) as f64;
            assert!(width / lo as f64 <= 0.125 + 1e-12, "bucket too wide at {v}");
        }
    }

    #[test]
    fn exact_values_below_eight() {
        for v in 0..8u64 {
            assert_eq!(bucket_bounds_ns(bucket_index(v)), (v, v));
        }
    }

    #[test]
    fn histogram_counts_and_percentiles() {
        let h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.observe(Duration::from_micros(us));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.max_us, 1000.0);
        // Quantiles land within one bucket width (12.5%) of the truth.
        assert!((snap.p50_us - 500.0).abs() / 500.0 <= 0.125 + 1e-9, "p50 {}", snap.p50_us);
        assert!((snap.p99_us - 990.0).abs() / 990.0 <= 0.125 + 1e-9, "p99 {}", snap.p99_us);
        assert!(snap.p50_us <= snap.p95_us);
        assert!(snap.p95_us <= snap.p99_us);
        assert!(snap.p99_us <= snap.p999_us);
        assert!(snap.p999_us <= snap.max_us + 1e-9);
        assert!((snap.mean_us - 500.5).abs() < 1.0);
    }

    #[test]
    fn merge_is_exact() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let both = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = i * i * 37 + 5;
            a.observe_ns(v);
            both.observe_ns(v);
        }
        for i in 0..300u64 {
            let v = i * 1_000_003 + 12;
            b.observe_ns(v);
            both.observe_ns(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), both.snapshot());
    }

    #[test]
    fn percentile_of_single_observation_is_exact() {
        let h = LatencyHistogram::new();
        h.observe(Duration::from_micros(123));
        let snap = h.snapshot();
        // The bucket bound overshoots but the exact max caps every quantile.
        assert_eq!(snap.p50_us, 123.0);
        assert_eq!(snap.p999_us, 123.0);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p99_us, 0.0);
        assert_eq!(snap.max_us, 0.0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn weight_entropy_matches_uniform() {
        let e = weight_entropy(&[0.25; 4]);
        assert!((e - (4.0f64).ln()).abs() < 1e-12);
        assert_eq!(weight_entropy(&[1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn corr_ids_are_monotonic_from_one() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.mint_corr(), 1);
        assert_eq!(reg.mint_corr(), 2);
        assert_eq!(reg.mint_corr(), 3);
    }

    #[test]
    fn health_trips_on_latency_burn() {
        let m = HealthMonitor::default();
        let cfg = HealthConfig::default();
        // 10% of requests over SLO against a 5% budget.
        let r = m.evaluate(&cfg, 100, 10, 100, 0);
        assert!(r.degraded);
        assert!(r.reasons.contains(&"latency_burn"));
        assert!(r.burn_rate > 1.0);
        assert!(m.is_degraded());
        // Back under budget: the flag clears.
        let r = m.evaluate(&cfg, 1000, 10, 1000, 0);
        assert!(!r.degraded);
        assert!(!m.is_degraded());
    }

    #[test]
    fn health_trips_on_shed_rate() {
        let m = HealthMonitor::default();
        let r = m.evaluate(&HealthConfig::default(), 80, 0, 100, 20);
        assert!(r.degraded);
        assert!(r.reasons.contains(&"shed_rate"));
        assert!((r.shed_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn health_trips_on_entropy_drift() {
        let m = HealthMonitor::default();
        let cfg = HealthConfig::default();
        m.set_baseline(HealthBaseline { version: 1, entropy: 1.0, firing_rates: None });
        for _ in 0..200 {
            m.observe_entropy(2.0);
        }
        let r = m.evaluate(&cfg, 10, 0, 10, 0);
        assert!(r.degraded, "entropy 1.0 -> 2.0 must trip drift: {r:?}");
        assert!(r.reasons.contains(&"drift"));
        assert!(r.drift_score > cfg.drift_threshold);
        // A fresh baseline resets the live EWMA and clears the flag.
        m.set_baseline(HealthBaseline { version: 2, entropy: 2.0, firing_rates: None });
        let r = m.evaluate(&cfg, 10, 0, 10, 0);
        assert!(!r.degraded, "rebaseline must clear drift: {r:?}");
    }

    #[test]
    fn health_trips_on_firing_rate_drift() {
        let m = HealthMonitor::default();
        let cfg = HealthConfig::default();
        m.set_baseline(HealthBaseline {
            version: 1,
            entropy: 1.0,
            firing_rates: Some(vec![0.2, 0.1]),
        });
        for _ in 0..200 {
            m.observe_entropy(1.0);
            m.observe_rates(&[0.4, 0.1]);
        }
        let r = m.evaluate(&cfg, 10, 0, 10, 0);
        assert!(r.rate_drift > 0.4, "layer 0 doubled: {r:?}");
        assert!(r.degraded);
    }

    #[test]
    fn probe_baseline_is_deterministic() {
        struct Fixed;
        impl InferenceBackend for Fixed {
            fn name(&self) -> &str {
                "fixed"
            }
            fn state_dim(&self) -> usize {
                3
            }
            fn action_dim(&self) -> usize {
                2
            }
            fn infer_batch(&self, states: &[f64], _seeds: &[u64]) -> Vec<Vec<f64>> {
                states.chunks(3).map(|c| vec![c[0] / (c[0] + c[1]), c[1] / (c[0] + c[1])]).collect()
            }
        }
        let cfg = HealthConfig::default();
        let a = probe_baseline(&Fixed, &cfg, 1);
        let b = probe_baseline(&Fixed, &cfg, 1);
        assert_eq!(a, b);
        assert!(a.entropy > 0.0 && a.entropy < (2.0f64).ln() + 1e-9);
    }

    fn sample_snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.requests.fetch_add(3, Ordering::Relaxed);
        reg.served.fetch_add(3, Ordering::Relaxed);
        for s in Stage::ALL {
            reg.observe_stage(s, Duration::from_micros(250));
        }
        let vm = reg.version_metrics(1, "echo");
        vm.served.fetch_add(3, Ordering::Relaxed);
        vm.infer.observe(Duration::from_micros(200));
        reg.snapshot(
            &HealthConfig::default(),
            "echo".to_string(),
            1,
            SwapStatus {
                swaps: 1,
                failures: 1,
                last_good_version: 1,
                last_error_kind: Some("load_failed".to_string()),
                last_error: Some("boom".to_string()),
                rejected: 2,
                last_rejection_kind: Some("drift".to_string()),
                last_rejection: Some("entropy drift 0.4 over bound 0.25".to_string()),
                rejected_by_kind: vec![("drift".to_string(), 1), ("validation".to_string(), 1)],
            },
            Some(64),
        )
    }

    #[test]
    fn snapshot_value_has_schema_shape() {
        let v = sample_snapshot().to_value();
        let stages = v.get("stages").expect("stages");
        for s in Stage::ALL {
            let h = stages.get(s.name()).unwrap_or_else(|| panic!("stage {}", s.name()));
            assert_eq!(h.get("count").and_then(Value::as_u64), Some(1));
        }
        assert_eq!(
            v.get("swap").and_then(|s| s.get("last_error_kind")).and_then(Value::as_str),
            Some("load_failed")
        );
        assert_eq!(v.get("swap").and_then(|s| s.get("rejected")).and_then(Value::as_u64), Some(2));
        assert_eq!(
            v.get("swap").and_then(|s| s.get("last_rejection_kind")).and_then(Value::as_str),
            Some("drift")
        );
        let by_kind = v.get("swap").and_then(|s| s.get("rejected_by_kind")).expect("by-kind map");
        assert_eq!(by_kind.get("drift").and_then(Value::as_u64), Some(1));
        assert_eq!(by_kind.get("validation").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v.get("trace").and_then(|t| t.get("sample_every")).and_then(Value::as_u64),
            Some(64)
        );
        assert!(v.get("health").and_then(|h| h.get("degraded")).is_some());
        // The whole document must survive a JSON round trip (NDJSON line).
        let line = v.to_json();
        let parsed = spikefolio_telemetry::value::parse(&line).expect("snapshot JSON reparses");
        assert_eq!(
            parsed.get("counters").and_then(|c| c.get("requests")).and_then(Value::as_u64),
            Some(3)
        );
    }

    #[test]
    fn label_values_escape_prometheus_metacharacters() {
        assert_eq!(escape_label_value("drift"), "drift");
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        // A hostile kind renders as one well-formed sample line.
        let mut snap = sample_snapshot();
        snap.swap.rejected_by_kind = vec![("bad\"kind\n".to_string(), 3)];
        let text = snap.render_prometheus();
        assert!(
            text.contains("spikefolio_serve_swap_rejected_total{reason=\"bad\\\"kind\\n\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let text = sample_snapshot().render_prometheus();
        assert!(text.contains("spikefolio_serve_requests_total 3"));
        assert!(text.contains("# TYPE spikefolio_serve_stage_latency_seconds histogram"));
        assert!(
            text.contains("stage=\"queue_wait\",le=\"+Inf\"}} 1") || {
                // `write!` escapes nothing; the literal line uses single braces.
                text.contains("stage=\"queue_wait\",le=\"+Inf\"} 1")
            }
        );
        assert!(text.contains("spikefolio_serve_degraded 0"));
        assert!(text.contains("spikefolio_serve_swap_rejected_total{reason=\"drift\"} 1"));
        assert!(text.contains("spikefolio_serve_swap_rejected_total{reason=\"validation\"} 1"));
        assert!(text.contains("spikefolio_serve_swaps_total 1"));
        // Cumulative bucket counts must be monotone per stage.
        let mut last = 0u64;
        for line in text.lines() {
            if line.starts_with("spikefolio_serve_stage_latency_seconds_bucket{stage=\"accept\"") {
                let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(n >= last);
                last = n;
            }
        }
        assert_eq!(last, 1);
    }
}
