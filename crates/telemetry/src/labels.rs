//! Canonical hierarchical label constants shared by all instrumented
//! crates, so run logs stay greppable and the summarizer can rely on
//! exact names.

/// Span: one whole training epoch.
pub const SPAN_TRAIN_EPOCH: &str = "train/epoch";
/// Span: phase 1 of a training step — sampling periods and building
/// states.
pub const SPAN_TRAIN_SAMPLE: &str = "train/epoch/sample";
/// Span: batched SNN forward passes of a training step.
pub const SPAN_TRAIN_FORWARD: &str = "train/epoch/forward_batch";
/// Span: batched STBP backward passes of a training step.
pub const SPAN_TRAIN_BACKWARD: &str = "train/epoch/backward_batch";
/// Span: gradient accumulation + optimizer apply of a training step.
pub const SPAN_TRAIN_APPLY: &str = "train/epoch/apply";
/// Span: checkpoint write (serialize + IO + retries) of a guarded epoch.
pub const SPAN_TRAIN_CHECKPOINT: &str = "train/epoch/checkpoint";
/// Span: one backtester decision + portfolio step.
pub const SPAN_BACKTEST_STEP: &str = "backtest/step";
/// Span: population encoding of one state (off-chip path).
pub const SPAN_ENCODE: &str = "encode";
/// Span: one chip-model inference (quantized spiking body).
pub const SPAN_CHIP_INFER: &str = "loihi/infer";

/// Span: population-encoding section of a batched SNN forward pass.
pub const SPAN_PROFILE_SNN_ENCODE: &str = "profile/snn/encode";
/// Span: LIF timestep loop (eqs. 5–7) of a batched SNN forward pass.
pub const SPAN_PROFILE_SNN_LIF: &str = "profile/snn/lif_forward";
/// Span: one batched STBP backward pass (eqs. 11–13).
pub const SPAN_PROFILE_SNN_STBP: &str = "profile/snn/stbp_backward";
/// Span: eq. (14) weight quantization during a Loihi deployment.
pub const SPAN_PROFILE_LOIHI_QUANTIZE: &str = "profile/loihi/quantize";

/// Gauge: micro-batches in flight per training step.
pub const GAUGE_QUEUE_MICRO_BATCHES: &str = "train/queue/micro_batches";
/// Gauge: worker threads serving the micro-batch queue.
pub const GAUGE_QUEUE_WORKERS: &str = "train/queue/workers";
/// Gauge: micro-batch queue occupancy (micro-batches per worker).
pub const GAUGE_QUEUE_OCCUPANCY: &str = "train/queue/occupancy";

/// Counter: spikes injected into the chip (encoder output).
pub const COUNTER_LOIHI_INPUT_SPIKES: &str = "loihi/input_spikes";
/// Counter: spikes fired by on-chip neurons.
pub const COUNTER_LOIHI_NEURON_SPIKES: &str = "loihi/neuron_spikes";
/// Counter: on-chip synaptic operations.
pub const COUNTER_LOIHI_SYNOPS: &str = "loihi/synops";
/// Counter: on-chip compartment updates.
pub const COUNTER_LOIHI_NEURON_UPDATES: &str = "loihi/neuron_updates";
/// Counter: algorithmic timesteps executed on chip.
pub const COUNTER_LOIHI_TIMESTEPS: &str = "loihi/timesteps";
/// Counter: quantized inferences executed.
pub const COUNTER_LOIHI_INFERENCES: &str = "loihi/inferences";
/// Counter: weights clamped to full scale during quantization.
pub const COUNTER_LOIHI_SATURATED_WEIGHTS: &str = "loihi/saturated_weights";

/// Counter: successful recoveries (rollback + retry) of guarded training.
pub const COUNTER_RESILIENCE_RECOVERIES: &str = "resilience/recoveries";
/// Counter: epochs discarded by the `Skip` guard policy.
pub const COUNTER_RESILIENCE_EPOCHS_SKIPPED: &str = "resilience/epochs_skipped";
/// Counter: corrupted checkpoints detected at load time.
pub const COUNTER_RESILIENCE_CORRUPTIONS: &str = "resilience/corruption_detected";
/// Counter: transient checkpoint IO failures absorbed by retry/backoff.
pub const COUNTER_RESILIENCE_IO_RETRIES: &str = "resilience/io_retries";
/// Counter: market candles repaired by the sanitizer.
pub const COUNTER_SANITIZE_REPAIRS: &str = "sanitize/repairs";

/// Span: one micro-batch dispatched by the inference server (collect +
/// forward + fan-out).
pub const SPAN_SERVE_BATCH: &str = "serve/batch";
/// Gauge: requests waiting in the inference server's admission queue.
pub const GAUGE_SERVE_QUEUE_DEPTH: &str = "serve/queue/depth";
/// Counter: inference requests admitted into the queue.
pub const COUNTER_SERVE_REQUESTS: &str = "serve/requests";
/// Counter: inference responses successfully served.
pub const COUNTER_SERVE_SERVED: &str = "serve/served";
/// Counter: requests shed because the admission queue was full.
pub const COUNTER_SERVE_SHED_QUEUE_FULL: &str = "serve/shed/queue_full";
/// Counter: requests shed because their deadline expired before dispatch.
pub const COUNTER_SERVE_SHED_DEADLINE: &str = "serve/shed/deadline";
/// Counter: requests rejected at the boundary (bad dimension or
/// non-finite state input).
pub const COUNTER_SERVE_INVALID_INPUT: &str = "serve/invalid_input";
/// Counter: decoder outputs rejected because they were non-finite.
pub const COUNTER_SERVE_NONFINITE_OUTPUT: &str = "serve/nonfinite_output";
/// Counter: decoder outputs renormalized back onto the simplex before
/// leaving the service.
pub const COUNTER_SERVE_RENORMALIZED: &str = "serve/renormalized";
/// Counter: micro-batches executed by the server.
pub const COUNTER_SERVE_BATCHES: &str = "serve/batches";
/// Counter: successful hot checkpoint swaps.
pub const COUNTER_SERVE_SWAPS: &str = "serve/swaps";
/// Counter: rejected hot-swap attempts (old model kept serving).
pub const COUNTER_SERVE_SWAP_FAILURES: &str = "serve/swap_failures";
/// Counter: candidate models the validation gate turned away before any
/// swap was attempted (integrity / validation / drift rejections).
pub const COUNTER_SERVE_SWAP_REJECTED: &str = "serve/swap_rejected";
/// Counter: inference lines the server front end failed to parse.
pub const COUNTER_SERVE_PARSE_ERRORS: &str = "serve/parse_errors";
/// Counter: served responses whose queue+infer latency exceeded the SLO.
pub const COUNTER_SERVE_OVER_SLO: &str = "serve/over_slo";
/// Counter: request traces sampled into the chrome-trace exporter.
pub const COUNTER_SERVE_TRACES_SAMPLED: &str = "serve/traces_sampled";
/// Counter: snapshots taken while the health watchdog flagged the
/// service degraded (0 = healthy for the whole run).
pub const COUNTER_SERVE_HEALTH_DEGRADED: &str = "serve/health/degraded";
/// Gauge: model-health drift score (max of entropy and firing-rate
/// drift) at flush time.
pub const GAUGE_SERVE_HEALTH_DRIFT: &str = "serve/health/drift_score";
/// Gauge: latency SLO burn rate (over-SLO fraction / budget) at flush.
pub const GAUGE_SERVE_HEALTH_BURN: &str = "serve/health/burn_rate";
/// Gauge: shed fraction of admitted requests at flush time.
pub const GAUGE_SERVE_HEALTH_SHED: &str = "serve/health/shed_rate";

/// Counter: live-desk rounds completed (one feed poll → train →
/// gate → swap/quarantine cycle each).
pub const COUNTER_DESK_ROUNDS: &str = "desk/rounds";
/// Counter: candidate checkpoints that passed the gate and were
/// hot-swapped into serving.
pub const COUNTER_DESK_PROMOTIONS: &str = "desk/promotions";
/// Counter: candidate checkpoints quarantined (gate rejection or
/// unrecoverable fault) while serving stayed on last-good.
pub const COUNTER_DESK_QUARANTINES: &str = "desk/quarantines";
/// Counter: pipeline faults the desk absorbed and recovered from
/// (trainer retries, candidate heals, swap IO retries, feed re-polls).
pub const COUNTER_DESK_RECOVERIES: &str = "desk/recoveries";
/// Counter: feed polls that returned no new data (stall watchdog ticks).
pub const COUNTER_DESK_FEED_STALLS: &str = "desk/feed_stalls";
/// Counter: non-fatal feed anomalies the tail recovered from on its own
/// (e.g. a torn line that completed but stayed malformed and was dropped).
pub const COUNTER_DESK_FEED_WARNINGS: &str = "desk/feed_warnings";

/// Counter: dense multiply–accumulates an equivalent ANN forward pass
/// would execute for the same workload (`Σ_k in_k · out_k · T` per
/// sample) — the denominator of the effective-sparsity gauge.
pub const COUNTER_OPS_DENSE_MACS: &str = "profile/ops/dense_macs";
/// Counter: spike-driven synaptic operations actually executed (every
/// input spike fanned out across one layer's synapses).
pub const COUNTER_OPS_SYNOPS: &str = "profile/ops/synops";
/// Gauge: effective synaptic sparsity, `1 − synops / dense_macs`, over
/// the records of one observation window.
pub const GAUGE_OPS_SPARSITY: &str = "profile/ops/sparsity";
