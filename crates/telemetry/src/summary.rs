//! Run-log readback: parse a JSONL run log and aggregate it into a
//! [`RunSummary`] (reward series, spike activity, phase timings, counter
//! totals).
//!
//! The reader is tolerant by design: unknown record kinds and fields are
//! ignored, so logs written by newer schema revisions (which may only add
//! fields) still summarize.

use crate::sink::SCHEMA;
use crate::value::{parse, Value};
use std::collections::BTreeMap;
use std::io::{self, BufRead};
use std::path::Path;

/// One training epoch as read back from the log.
///
/// `wall_s` and `grad_norm` were added to the epoch record after the
/// first schema revision shipped, so both are optional: logs written by
/// older writers summarize with those fields absent rather than
/// fabricating zeros.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPoint {
    /// Epoch index.
    pub epoch: u64,
    /// Mean sample reward of the epoch (eq. 1 summand).
    pub reward: f64,
    /// Wall-clock seconds the epoch took, if the writer recorded it.
    pub wall_s: Option<f64>,
    /// Mean global gradient L2 norm over the epoch's steps, if recorded.
    pub grad_norm: Option<f64>,
}

/// Reward-curve statistics of one agent's epoch series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewardStats {
    /// Number of epochs.
    pub epochs: usize,
    /// First epoch's reward.
    pub first: f64,
    /// Final epoch's reward.
    pub last: f64,
    /// Best epoch's reward.
    pub best: f64,
    /// Mean reward across epochs.
    pub mean: f64,
    /// Mean wall-clock seconds per epoch, over epochs that recorded it
    /// (`None` when no epoch did — e.g. an old-schema log).
    pub mean_wall_s: Option<f64>,
    /// Mean gradient norm, over epochs that recorded it.
    pub mean_grad_norm: Option<f64>,
}

/// Spike-event totals summed over every epoch record in the log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpikeTotals {
    /// Forward samples (inferences) the totals cover.
    pub samples: u64,
    /// Encoder spikes.
    pub encoder_spikes: u64,
    /// LIF neuron spikes.
    pub neuron_spikes: u64,
    /// Synaptic operations.
    pub synops: u64,
    /// Neuron-update operations.
    pub neuron_updates: u64,
}

/// One completed backtest as read back from its `backtest_end` record.
#[derive(Debug, Clone, PartialEq)]
pub struct BacktestSummary {
    /// Policy display name.
    pub policy: String,
    /// Decision steps taken.
    pub steps: u64,
    /// Final accumulated portfolio value.
    pub final_value: f64,
    /// Total one-way turnover.
    pub turnover: f64,
}

/// One live-desk round as read back from its `desk_round` record.
#[derive(Debug, Clone, PartialEq)]
pub struct DeskRoundPoint {
    /// Round index.
    pub round: u64,
    /// Round outcome (`"promoted"`, `"rejected:<kind>"`, ...).
    pub outcome: String,
    /// Model version serving after the round resolved.
    pub served_version: u64,
    /// Candidate out-of-sample reward at the gate.
    pub candidate_reward: f64,
    /// Incumbent out-of-sample reward at the gate.
    pub incumbent_reward: f64,
    /// Fine-tune wall-clock seconds, if the writer recorded it.
    pub wall_s: Option<f64>,
}

/// One evaluated stress-matrix cell as read back from its
/// `scenario_cell` record.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCellPoint {
    /// Universe name (`"crypto"`, `"equity"`, ...).
    pub universe: String,
    /// Stress-scenario name (`"calm"`, `"flash-crash"`, ...).
    pub scenario: String,
    /// Strategy display name (`"SDP"`, `"DDPG"`, `"ONS"`, ...).
    pub strategy: String,
    /// Cumulative log-return reward of the cell's backtest.
    pub reward: f64,
    /// Final accumulated portfolio value of the cell's backtest.
    pub final_value: f64,
    /// Backtest wall-clock seconds, if the writer recorded it. This lives
    /// only in telemetry: the scorecard document itself is
    /// bitwise-deterministic and carries no timings.
    pub wall_s: Option<f64>,
}

/// Aggregated view of one run log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSummary {
    /// Records read (including `run_end`).
    pub records: usize,
    /// Lines that failed to parse or carried a different schema.
    pub skipped_lines: usize,
    /// Epoch series keyed by agent label (`"sdp"`, `"drl"`, `"eiie"`).
    pub epochs: BTreeMap<String, Vec<EpochPoint>>,
    /// Sample-weighted mean firing rate per LIF layer (spiking epochs
    /// only; empty when the log has none).
    pub firing_rates: Vec<f64>,
    /// Sample-weighted mean encoder spike rate.
    pub encoder_rate: f64,
    /// Spike-event totals over all epoch records.
    pub spike_totals: SpikeTotals,
    /// Simulation length `T` reported by the epoch records, if any.
    pub timesteps: Option<u64>,
    /// Span totals: label → (seconds, count).
    pub spans: BTreeMap<String, (f64, u64)>,
    /// Counter totals: label → count.
    pub counters: BTreeMap<String, u64>,
    /// Completed backtests, in log order.
    pub backtests: Vec<BacktestSummary>,
    /// Live-desk rounds, in log order (empty for non-desk runs).
    pub desk_rounds: Vec<DeskRoundPoint>,
    /// Live-desk quarantine tallies keyed by gate kind
    /// (`"integrity"`, `"validation"`, `"drift"`, ...).
    pub desk_quarantines_by_kind: BTreeMap<String, u64>,
    /// Stress-matrix cells, in log order (empty for non-scenario runs).
    pub scenario_cells: Vec<ScenarioCellPoint>,
}

impl RunSummary {
    /// Reward-curve statistics for one agent's epoch series.
    pub fn reward_stats(&self, agent: &str) -> Option<RewardStats> {
        let pts = self.epochs.get(agent)?;
        let (first, last) = (pts.first()?, pts.last()?);
        let present_mean = |get: fn(&EpochPoint) -> Option<f64>| {
            let vals: Vec<f64> = pts.iter().filter_map(get).collect();
            if vals.is_empty() {
                None
            } else {
                Some(vals.iter().sum::<f64>() / vals.len() as f64)
            }
        };
        Some(RewardStats {
            epochs: pts.len(),
            first: first.reward,
            last: last.reward,
            best: pts.iter().map(|p| p.reward).fold(f64::NEG_INFINITY, f64::max),
            mean: pts.iter().map(|p| p.reward).sum::<f64>() / pts.len() as f64,
            mean_wall_s: present_mean(|p| p.wall_s),
            mean_grad_norm: present_mean(|p| p.grad_norm),
        })
    }

    /// Mean per-inference spike events `(encoder, neuron, synops,
    /// updates)`, if any samples were recorded.
    pub fn mean_events_per_inference(&self) -> Option<(f64, f64, f64, f64)> {
        let n = self.spike_totals.samples;
        if n == 0 {
            return None;
        }
        let n = n as f64;
        Some((
            self.spike_totals.encoder_spikes as f64 / n,
            self.spike_totals.neuron_spikes as f64 / n,
            self.spike_totals.synops as f64 / n,
            self.spike_totals.neuron_updates as f64 / n,
        ))
    }
}

/// Parses and aggregates a JSONL run log from a reader.
///
/// Lines that are not valid JSON or not stamped with the expected schema
/// are counted in [`RunSummary::skipped_lines`] rather than failing the
/// whole summary.
///
/// # Errors
///
/// Propagates I/O errors from the reader.
pub fn summarize_lines(reader: impl BufRead) -> io::Result<RunSummary> {
    let mut s = RunSummary::default();
    // Firing-rate accumulation: Σ rate·samples per layer, ÷ Σ samples.
    let mut rate_weight = 0.0_f64;
    let mut rate_sums: Vec<f64> = Vec::new();
    let mut encoder_rate_sum = 0.0_f64;
    let mut counter_deltas: BTreeMap<String, u64> = BTreeMap::new();
    let mut end_totals: Option<BTreeMap<String, u64>> = None;

    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = parse(&line) else {
            s.skipped_lines += 1;
            continue;
        };
        if v.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
            s.skipped_lines += 1;
            continue;
        }
        s.records += 1;

        if let Some(Value::Map(spans)) = v.get("spans") {
            for (label, span) in spans {
                let slot = s.spans.entry(label.clone()).or_insert((0.0, 0));
                slot.0 += span.get("s").and_then(Value::as_f64).unwrap_or(0.0);
                slot.1 += span.get("n").and_then(Value::as_u64).unwrap_or(0);
            }
        }
        if let Some(Value::Map(counters)) = v.get("counters") {
            for (label, c) in counters {
                *counter_deltas.entry(label.clone()).or_insert(0) += c.as_u64().unwrap_or(0);
            }
        }

        match v.get("kind").and_then(Value::as_str) {
            Some("epoch") => {
                let agent = v.get("agent").and_then(Value::as_str).unwrap_or("unknown").to_owned();
                s.epochs.entry(agent).or_default().push(EpochPoint {
                    epoch: v.get("epoch").and_then(Value::as_u64).unwrap_or(0),
                    reward: v.get("reward").and_then(Value::as_f64).unwrap_or(f64::NAN),
                    wall_s: v.get("wall_s").and_then(Value::as_f64),
                    grad_norm: v.get("grad_norm").and_then(Value::as_f64),
                });
                let samples = v.get("samples").and_then(Value::as_u64).unwrap_or(0);
                if let Some(rates) = v.get("firing_rates").and_then(Value::as_list) {
                    let w = samples as f64;
                    if rate_sums.len() < rates.len() {
                        rate_sums.resize(rates.len(), 0.0);
                    }
                    for (sum, r) in rate_sums.iter_mut().zip(rates) {
                        *sum += r.as_f64().unwrap_or(0.0) * w;
                    }
                    encoder_rate_sum +=
                        v.get("encoder_rate").and_then(Value::as_f64).unwrap_or(0.0) * w;
                    rate_weight += w;
                }
                if let Some(spikes) = v.get("spikes") {
                    let g = |k: &str| spikes.get(k).and_then(Value::as_u64).unwrap_or(0);
                    s.spike_totals.samples += samples;
                    s.spike_totals.encoder_spikes += g("encoder");
                    s.spike_totals.neuron_spikes += g("neuron");
                    s.spike_totals.synops += g("synops");
                    s.spike_totals.neuron_updates += g("updates");
                }
                if s.timesteps.is_none() {
                    s.timesteps = v.get("timesteps").and_then(Value::as_u64);
                }
            }
            Some("desk_round") => s.desk_rounds.push(DeskRoundPoint {
                round: v.get("round").and_then(Value::as_u64).unwrap_or(0),
                outcome: v.get("outcome").and_then(Value::as_str).unwrap_or("unknown").to_owned(),
                served_version: v.get("served_version").and_then(Value::as_u64).unwrap_or(0),
                candidate_reward: v
                    .get("candidate_reward")
                    .and_then(Value::as_f64)
                    .unwrap_or(f64::NAN),
                incumbent_reward: v
                    .get("incumbent_reward")
                    .and_then(Value::as_f64)
                    .unwrap_or(f64::NAN),
                wall_s: v.get("wall_s").and_then(Value::as_f64),
            }),
            Some("desk_quarantine") => {
                // The gate kind is a *field* also named "kind", so it lands
                // as the second "kind" entry after the record kind itself.
                let gate_kind = match &v {
                    Value::Map(fields) => {
                        fields.iter().rfind(|(k, _)| k == "kind").and_then(|(_, fv)| fv.as_str())
                    }
                    _ => None,
                };
                let kind = gate_kind.unwrap_or("unknown").to_owned();
                *s.desk_quarantines_by_kind.entry(kind).or_insert(0) += 1;
            }
            Some("scenario_cell") => s.scenario_cells.push(ScenarioCellPoint {
                universe: v.get("universe").and_then(Value::as_str).unwrap_or("unknown").to_owned(),
                scenario: v.get("scenario").and_then(Value::as_str).unwrap_or("unknown").to_owned(),
                strategy: v.get("strategy").and_then(Value::as_str).unwrap_or("unknown").to_owned(),
                reward: v.get("reward").and_then(Value::as_f64).unwrap_or(f64::NAN),
                final_value: v.get("final_value").and_then(Value::as_f64).unwrap_or(f64::NAN),
                wall_s: v.get("wall_s").and_then(Value::as_f64),
            }),
            Some("backtest_end") => s.backtests.push(BacktestSummary {
                policy: v.get("policy").and_then(Value::as_str).unwrap_or("policy").to_owned(),
                steps: v.get("steps").and_then(Value::as_u64).unwrap_or(0),
                final_value: v.get("final_value").and_then(Value::as_f64).unwrap_or(f64::NAN),
                turnover: v.get("turnover").and_then(Value::as_f64).unwrap_or(f64::NAN),
            }),
            Some("run_end") => {
                if let Some(Value::Map(totals)) = v.get("counter_totals") {
                    end_totals = Some(
                        totals.iter().map(|(k, c)| (k.clone(), c.as_u64().unwrap_or(0))).collect(),
                    );
                }
            }
            _ => {}
        }
    }

    // Prefer the authoritative run_end totals; fall back to summed deltas
    // (e.g. a truncated log without its final record).
    s.counters = end_totals.unwrap_or(counter_deltas);
    if rate_weight > 0.0 {
        s.firing_rates = rate_sums.iter().map(|r| r / rate_weight).collect();
        s.encoder_rate = encoder_rate_sum / rate_weight;
    }
    Ok(s)
}

/// Parses and aggregates the JSONL run log at `path`.
///
/// # Errors
///
/// Propagates I/O errors; malformed lines are skipped, not fatal (see
/// [`summarize_lines`]).
pub fn summarize_file(path: impl AsRef<Path>) -> io::Result<RunSummary> {
    let f = std::fs::File::open(path)?;
    summarize_lines(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::sink::JsonlSink;
    use crate::value::Value;
    use crate::Recorder;

    fn sample_log() -> Vec<u8> {
        let mut sink = JsonlSink::new(Vec::new());
        for (e, reward) in [0.1_f64, 0.3].iter().enumerate() {
            sink.counter("loihi/synops", 1000);
            sink.span("train/epoch/forward_batch", 0.5);
            sink.emit(
                Record::new("epoch")
                    .field("agent", "sdp")
                    .field("epoch", e as u64)
                    .field("reward", *reward)
                    .field("wall_s", 1.5)
                    .field("grad_norm", 0.2)
                    .field("samples", 100u64)
                    .field("timesteps", 5u64)
                    .field("firing_rates", vec![0.2, 0.4])
                    .field("encoder_rate", 0.1)
                    .field(
                        "spikes",
                        Value::Map(vec![
                            ("encoder".into(), Value::U64(50)),
                            ("neuron".into(), Value::U64(30)),
                            ("synops".into(), Value::U64(1000)),
                            ("updates".into(), Value::U64(70)),
                        ]),
                    ),
            );
        }
        sink.emit(
            Record::new("backtest_end")
                .field("policy", "SDP")
                .field("steps", 20u64)
                .field("final_value", 1.25)
                .field("turnover", 3.0),
        );
        sink.finish().unwrap()
    }

    #[test]
    fn summary_aggregates_epochs_spans_and_counters() {
        let log = sample_log();
        let s = summarize_lines(&log[..]).unwrap();
        assert_eq!(s.records, 4);
        assert_eq!(s.skipped_lines, 0);
        let stats = s.reward_stats("sdp").unwrap();
        assert_eq!(stats.epochs, 2);
        assert_eq!(stats.first, 0.1);
        assert_eq!(stats.last, 0.3);
        assert_eq!(stats.best, 0.3);
        assert!((stats.mean - 0.2).abs() < 1e-12);
        assert_eq!(stats.mean_wall_s, Some(1.5));
        assert_eq!(stats.mean_grad_norm, Some(0.2));
        assert_eq!(s.firing_rates, vec![0.2, 0.4]);
        assert_eq!(s.encoder_rate, 0.1);
        assert_eq!(s.spike_totals.samples, 200);
        assert_eq!(s.spike_totals.synops, 2000);
        assert_eq!(s.timesteps, Some(5));
        assert_eq!(s.counters.get("loihi/synops"), Some(&2000));
        assert_eq!(s.spans.get("train/epoch/forward_batch"), Some(&(1.0, 2)));
        assert_eq!(s.backtests.len(), 1);
        assert_eq!(s.backtests[0].policy, "SDP");
        let (enc, neu, syn, upd) = s.mean_events_per_inference().unwrap();
        assert_eq!((enc, neu, syn, upd), (0.5, 0.3, 10.0, 0.7));
    }

    #[test]
    fn malformed_and_foreign_lines_are_skipped() {
        let mut log = b"not json\n{\"schema\":\"other.v9\",\"kind\":\"epoch\"}\n".to_vec();
        log.extend_from_slice(&sample_log());
        let s = summarize_lines(&log[..]).unwrap();
        assert_eq!(s.skipped_lines, 2);
        assert_eq!(s.records, 4);
    }

    #[test]
    fn truncated_log_falls_back_to_counter_deltas() {
        let log = sample_log();
        // Drop the final run_end line.
        let text = String::from_utf8(log).unwrap();
        let truncated: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        let s = summarize_lines(truncated.as_bytes()).unwrap();
        assert_eq!(s.counters.get("loihi/synops"), Some(&2000));
    }

    #[test]
    fn mixed_version_log_tolerates_epochs_without_wall_or_grad_fields() {
        // An old-schema epoch record (no wall_s / grad_norm / grad_norms)
        // followed by a current-schema one in the same log.
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(
            Record::new("epoch")
                .field("agent", "sdp")
                .field("epoch", 0u64)
                .field("reward", 0.1)
                .field("samples", 50u64),
        );
        sink.emit(
            Record::new("epoch")
                .field("agent", "sdp")
                .field("epoch", 1u64)
                .field("reward", 0.3)
                .field("wall_s", 2.0)
                .field("grad_norm", 0.4)
                .field("grad_norms", vec![0.3, 0.5])
                .field("samples", 50u64),
        );
        let log = sink.finish().unwrap();

        let s = summarize_lines(&log[..]).unwrap();
        let pts = &s.epochs["sdp"];
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].wall_s, None);
        assert_eq!(pts[0].grad_norm, None);
        assert_eq!(pts[1].wall_s, Some(2.0));
        assert_eq!(pts[1].grad_norm, Some(0.4));

        // Stats average only the epochs that carried the field, and reward
        // stats are unaffected by the missing ones.
        let stats = s.reward_stats("sdp").unwrap();
        assert_eq!(stats.epochs, 2);
        assert_eq!(stats.mean_wall_s, Some(2.0));
        assert_eq!(stats.mean_grad_norm, Some(0.4));
        assert!((stats.mean - 0.2).abs() < 1e-12);
    }

    #[test]
    fn all_old_schema_epochs_leave_wall_and_grad_stats_absent() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(
            Record::new("epoch").field("agent", "sdp").field("epoch", 0u64).field("reward", 0.2),
        );
        let log = sink.finish().unwrap();
        let s = summarize_lines(&log[..]).unwrap();
        let stats = s.reward_stats("sdp").unwrap();
        assert_eq!(stats.mean_wall_s, None);
        assert_eq!(stats.mean_grad_norm, None);
    }

    #[test]
    fn desk_records_aggregate_into_rounds_and_quarantine_tallies() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(
            Record::new("desk_round")
                .field("round", 0u64)
                .field("outcome", "promoted")
                .field("served_version", 2u64)
                .field("candidate_reward", 0.12)
                .field("incumbent_reward", 0.10)
                .field("wall_s", 1.25),
        );
        sink.emit(
            Record::new("desk_quarantine")
                .field("round", 1u64)
                .field("kind", "drift")
                .field("reason", "entropy drifted"),
        );
        sink.emit(
            Record::new("desk_round")
                .field("round", 1u64)
                .field("outcome", "rejected:drift")
                .field("served_version", 2u64)
                .field("candidate_reward", 0.08)
                .field("incumbent_reward", 0.10),
        );
        sink.emit(
            Record::new("desk_quarantine")
                .field("round", 2u64)
                .field("kind", "drift")
                .field("reason", "entropy drifted again"),
        );
        let log = sink.finish().unwrap();

        let s = summarize_lines(&log[..]).unwrap();
        assert_eq!(s.desk_rounds.len(), 2);
        assert_eq!(s.desk_rounds[0].round, 0);
        assert_eq!(s.desk_rounds[0].outcome, "promoted");
        assert_eq!(s.desk_rounds[0].served_version, 2);
        assert_eq!(s.desk_rounds[0].wall_s, Some(1.25));
        assert_eq!(s.desk_rounds[1].outcome, "rejected:drift");
        assert_eq!(s.desk_rounds[1].wall_s, None);
        assert_eq!(s.desk_quarantines_by_kind.get("drift"), Some(&2));
        assert_eq!(s.desk_quarantines_by_kind.len(), 1);
    }

    #[test]
    fn scenario_cell_records_aggregate_in_log_order() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(
            Record::new("scenario_cell")
                .field("universe", "crypto")
                .field("scenario", "flash-crash")
                .field("strategy", "SDP")
                .field("reward", -0.12)
                .field("final_value", 0.89)
                .field("wall_s", 0.03),
        );
        sink.emit(
            Record::new("scenario_cell")
                .field("universe", "crypto")
                .field("scenario", "flash-crash")
                .field("strategy", "Buy and Hold")
                .field("reward", -0.25)
                .field("final_value", 0.78),
        );
        let log = sink.finish().unwrap();

        let s = summarize_lines(&log[..]).unwrap();
        assert_eq!(s.scenario_cells.len(), 2);
        assert_eq!(s.scenario_cells[0].universe, "crypto");
        assert_eq!(s.scenario_cells[0].scenario, "flash-crash");
        assert_eq!(s.scenario_cells[0].strategy, "SDP");
        assert_eq!(s.scenario_cells[0].reward, -0.12);
        assert_eq!(s.scenario_cells[0].final_value, 0.89);
        assert_eq!(s.scenario_cells[0].wall_s, Some(0.03));
        assert_eq!(s.scenario_cells[1].strategy, "Buy and Hold");
        assert_eq!(s.scenario_cells[1].wall_s, None);
    }

    #[test]
    fn empty_log_summarizes_to_defaults() {
        let s = summarize_lines(&b""[..]).unwrap();
        assert_eq!(s.records, 0);
        assert!(s.reward_stats("sdp").is_none());
        assert!(s.mean_events_per_inference().is_none());
    }
}
