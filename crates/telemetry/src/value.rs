//! A minimal JSON value model with a writer and parser.
//!
//! The workspace builds offline (the `serde` dependency is a no-op shim),
//! so run logs are written and read with this self-contained
//! implementation. It covers exactly the JSON subset the telemetry schema
//! uses: objects, arrays, strings, numbers, booleans, and null.
//!
//! Non-finite floats are not representable in JSON and serialize as
//! `null`; finite floats round-trip exactly (shortest-representation
//! formatting).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the schema's counters and indices).
    U64(u64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    List(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a [`Value::Map`] (None for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `U64` and `F64` both convert.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(u) => Some(u as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// Integer view (exact `U64` only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(u) => Some(u),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(u) => {
                let _ = write!(out, "{u}");
            }
            Value::F64(f) => write_f64(out, *f),
            Value::Str(s) => write_escaped(out, s),
            Value::List(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Map(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<u64> for Value {
    fn from(u: u64) -> Self {
        Value::U64(u)
    }
}
impl From<usize> for Value {
    fn from(u: usize) -> Self {
        Value::U64(u as u64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::F64(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::List(v.into_iter().map(Value::F64).collect())
    }
}
impl From<Vec<u64>> for Value {
    fn from(v: Vec<u64>) -> Self {
        Value::List(v.into_iter().map(Value::U64).collect())
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{}` is Rust's shortest round-trip representation, but bare
        // integers like `2` must stay floats on re-read; the schema treats
        // U64 and F64 interchangeably via `as_f64`, so this is fine.
        let _ = write!(out, "{f}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        let mut integral = true;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            integral = false; // negative values live in F64
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "invalid \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_owned())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos - 1)),
                    }
                }
                c => {
                    // Re-decode the UTF-8 sequence starting at `c`.
                    let len = utf8_len(c);
                    let end = self.pos - 1 + len;
                    if end > self.bytes.len() {
                        return Err("invalid utf-8 in string".into());
                    }
                    let chunk = std::str::from_utf8(&self.bytes[self.pos - 1..end])
                        .map_err(|_| "invalid utf-8 in string".to_owned())?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::List(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::List(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (v, json) in [
            (Value::Null, "null"),
            (Value::Bool(true), "true"),
            (Value::U64(42), "42"),
            (Value::F64(-1.5), "-1.5"),
            (Value::Str("a\"b\\c\nd".into()), "\"a\\\"b\\\\c\\nd\""),
        ] {
            assert_eq!(v.to_json(), json);
            assert_eq!(parse(json).unwrap(), v);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1e-12, 123456.789, f64::MIN_POSITIVE, -2.5e300] {
            let json = Value::F64(f).to_json();
            let back = parse(&json).unwrap().as_f64().unwrap();
            assert_eq!(back, f, "{json}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::F64(f64::NAN).to_json(), "null");
        assert_eq!(Value::F64(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Map(vec![
            ("k".into(), Value::List(vec![Value::U64(1), Value::F64(2.5), Value::Null])),
            ("s".into(), Value::Str("x".into())),
            ("m".into(), Value::Map(vec![("inner".into(), Value::Bool(false))])),
        ]);
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn map_accessors_work() {
        let v = parse(r#"{"a": 3, "b": [1.5, 2], "c": "hi"}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("b").and_then(Value::as_list).map(<[Value]>::len), Some(2));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("hi"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_list).map(<[Value]>::len), Some(2));
    }
}
