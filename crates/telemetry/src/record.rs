//! The structured record emitted once per observation unit.

use crate::value::Value;

/// One self-describing observation record (a training epoch, a backtest
/// step, a deployment summary, …).
///
/// Built fluently:
///
/// ```
/// use spikefolio_telemetry::Record;
///
/// let r = Record::new("epoch").field("epoch", 3u64).field("reward", 0.12);
/// assert_eq!(r.kind(), "epoch");
/// assert_eq!(r.get("epoch").and_then(|v| v.as_u64()), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    kind: String,
    fields: Vec<(String, Value)>,
}

impl Record {
    /// Creates an empty record of the given kind (`"epoch"`,
    /// `"backtest_step"`, …).
    pub fn new(kind: &str) -> Self {
        Self { kind: kind.to_owned(), fields: Vec::new() }
    }

    /// The record kind.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Adds a field (builder style). Keys keep insertion order in the
    /// serialized record.
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.fields.push((key.to_owned(), value.into()));
        self
    }

    /// Adds a field only when `value` is `Some`.
    pub fn opt_field(self, key: &str, value: Option<impl Into<Value>>) -> Self {
        match value {
            Some(v) => self.field(key, v),
            None => self,
        }
    }

    /// Looks up a field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The fields in insertion order.
    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }

    /// Consumes the record into its fields.
    pub fn into_fields(self) -> Vec<(String, Value)> {
        self.fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_preserves_order_and_lookup() {
        let r = Record::new("k")
            .field("a", 1u64)
            .field("b", "text")
            .opt_field("c", Some(2.5))
            .opt_field("d", None::<f64>);
        assert_eq!(r.fields().len(), 3);
        assert_eq!(r.fields()[0].0, "a");
        assert_eq!(r.get("b").and_then(|v| v.as_str()), Some("text"));
        assert_eq!(r.get("d"), None);
    }
}
