//! Run telemetry for `spikefolio`: structured training/inference
//! instrumentation with append-only JSONL run logs.
//!
//! The crate is deliberately small and dependency-free. Three primitives
//! cover everything the trainer, backtester, and Loihi deployment path
//! need to observe:
//!
//! * **counters** — monotonic event totals (`loihi/synops`, …),
//! * **gauges** — point-in-time values (`train/queue/occupancy`, …),
//! * **spans** — wall-clock durations under hierarchical labels
//!   (`train/epoch/forward_batch`, `backtest/step`, `encode`, …).
//!
//! All three flow through the [`Recorder`] trait. Instrumented code takes
//! `&mut dyn Recorder`; the default [`NoopRecorder`] reports
//! `enabled() == false` so call sites can skip any observation work, and
//! its methods compile to nothing.
//!
//! **Observe-only contract.** Recorders never feed back into computation:
//! attaching one must leave every trained parameter and reward bitwise
//! identical. Nothing in this crate draws randomness or mutates its
//! inputs; integration points gate extra *measurement* (never behaviour)
//! on [`Recorder::enabled`].
//!
//! # Run logs
//!
//! [`JsonlSink`] streams one self-describing JSON record per observation
//! unit (training epoch, backtest step, deployment) to an append-only
//! file. Counters, gauges, and spans observed since the previous record
//! are attached to the next one, so the log is a complete, ordered account
//! of the run. See [`sink`] for the schema.
//!
//! # Example
//!
//! ```
//! use spikefolio_telemetry::{MemoryRecorder, Record, Recorder, Stopwatch};
//!
//! let mut rec = MemoryRecorder::new();
//! let sw = Stopwatch::start(&rec);
//! rec.counter("loihi/synops", 1500);
//! rec.gauge("train/queue/occupancy", 2.0);
//! sw.stop(&mut rec, "train/epoch/forward_batch");
//! rec.emit(Record::new("epoch").field("reward", 0.25).field("epoch", 0u64));
//! assert_eq!(rec.counter_total("loihi/synops"), 1500);
//! assert_eq!(rec.records().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod labels;
pub mod record;
pub mod sink;
pub mod summary;
pub mod value;

pub use record::Record;
pub use sink::{JsonlSink, MemoryRecorder};
pub use summary::{summarize_file, summarize_lines, RunSummary};
pub use value::Value;

use std::time::Instant;

/// The observation interface threaded through training, backtesting, and
/// deployment.
///
/// All methods have no-op defaults so simple recorders only override what
/// they store. Implementations must be **observe-only**: recording must
/// not change any computed result (see the crate docs).
pub trait Recorder {
    /// Whether observations are stored at all. Call sites use this to skip
    /// work that exists purely to be recorded (norm computations, clones).
    /// The [`NoopRecorder`] returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to the monotonic counter `label`.
    fn counter(&mut self, label: &str, delta: u64) {
        let _ = (label, delta);
    }

    /// Observes the current value of gauge `label`.
    fn gauge(&mut self, label: &str, value: f64) {
        let _ = (label, value);
    }

    /// Records one completed wall-clock span of `seconds` under `label`.
    fn span(&mut self, label: &str, seconds: f64) {
        let _ = (label, seconds);
    }

    /// Emits one structured record (an epoch, a backtest step, …).
    fn emit(&mut self, record: Record) {
        let _ = record;
    }
}

/// The zero-cost default recorder: stores nothing, reports
/// [`enabled()`](Recorder::enabled) as `false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// A scoped wall-clock timer that only reads the clock when the recorder
/// is enabled.
///
/// Start one before a phase, [`stop`](Stopwatch::stop) it after; with a
/// [`NoopRecorder`] both ends are free (no `Instant::now` call).
#[derive(Debug)]
pub struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    /// Starts timing if `rec` is enabled; otherwise returns an inert
    /// stopwatch.
    pub fn start(rec: &(impl Recorder + ?Sized)) -> Self {
        Self { start: rec.enabled().then(Instant::now) }
    }

    /// Elapsed seconds so far (0.0 when inert).
    pub fn elapsed_s(&self) -> f64 {
        self.start.map_or(0.0, |s| s.elapsed().as_secs_f64())
    }

    /// Stops the watch and records the span under `label`; returns the
    /// elapsed seconds.
    pub fn stop(self, rec: &mut (impl Recorder + ?Sized), label: &str) -> f64 {
        match self.start {
            Some(s) => {
                let dt = s.elapsed().as_secs_f64();
                rec.span(label, dt);
                dt
            }
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_disabled_and_inert() {
        let mut rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.counter("a", 1);
        rec.gauge("b", 2.0);
        rec.span("c", 3.0);
        rec.emit(Record::new("kind"));
    }

    #[test]
    fn stopwatch_is_inert_with_noop() {
        let mut rec = NoopRecorder;
        let sw = Stopwatch::start(&rec);
        assert_eq!(sw.elapsed_s(), 0.0);
        assert_eq!(sw.stop(&mut rec, "x"), 0.0);
    }

    #[test]
    fn stopwatch_measures_with_enabled_recorder() {
        let mut rec = MemoryRecorder::new();
        let sw = Stopwatch::start(&rec);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let dt = sw.stop(&mut rec, "phase");
        assert!(dt > 0.0);
        let (total, count) = rec.span_total("phase");
        assert_eq!(count, 1);
        assert!((total - dt).abs() < 1e-12);
    }

    #[test]
    fn stopwatch_elapsed_is_monotonic_and_non_negative() {
        let rec = MemoryRecorder::new();
        let sw = Stopwatch::start(&rec);
        let mut prev = 0.0;
        for _ in 0..50 {
            let now = sw.elapsed_s();
            assert!(now >= 0.0);
            assert!(now >= prev, "elapsed_s went backwards: {now} < {prev}");
            prev = now;
        }
    }

    #[test]
    fn stop_emits_exactly_one_span_under_the_given_label() {
        let mut rec = MemoryRecorder::new();
        let sw = Stopwatch::start(&rec);
        let dt = sw.stop(&mut rec, "train/epoch/forward_batch");
        assert!(dt >= 0.0);
        let spanned: Vec<&str> = ["train/epoch/forward_batch", "train/epoch", "train"]
            .into_iter()
            .filter(|l| rec.span_total(l).1 > 0)
            .collect();
        assert_eq!(spanned, ["train/epoch/forward_batch"], "span under exactly one label");
        assert_eq!(rec.span_total("train/epoch/forward_batch").1, 1);
        // Nothing but the span was observed.
        assert!(rec.records().is_empty());
    }

    #[test]
    fn inert_stopwatch_records_nothing_even_into_an_enabled_recorder() {
        // Started against a disabled recorder, the watch stays inert no
        // matter which recorder it is stopped into.
        let noop = NoopRecorder;
        let sw = Stopwatch::start(&noop);
        let mut mem = MemoryRecorder::new();
        assert_eq!(sw.stop(&mut mem, "phase"), 0.0);
        assert_eq!(mem.span_total("phase"), (0.0, 0));
        assert!(mem.records().is_empty());
    }
}
