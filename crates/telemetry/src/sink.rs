//! Recorders that store observations: the JSONL file sink and an
//! in-memory recorder for tests and programmatic inspection.

use crate::record::Record;
use crate::value::Value;
use crate::Recorder;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Schema identifier stamped on every run-log line.
///
/// Bump the trailing version when a field changes meaning; adding fields
/// is backward compatible (readers must ignore unknown keys).
pub const SCHEMA: &str = "spikefolio.run.v1";

/// Shared counter/gauge/span aggregation between emitted records.
#[derive(Debug, Default, Clone)]
struct MetricWindow {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    /// label → (total seconds, span count) since the last emit.
    spans: BTreeMap<String, (f64, u64)>,
}

impl MetricWindow {
    fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.spans.is_empty()
    }

    fn take(&mut self) -> MetricWindow {
        std::mem::take(self)
    }

    /// Attaches the window's metrics to `fields` as `counters` / `gauges`
    /// / `spans` objects (omitted when empty).
    fn attach(self, fields: &mut Vec<(String, Value)>) {
        if !self.counters.is_empty() {
            fields.push((
                "counters".into(),
                Value::Map(self.counters.into_iter().map(|(k, v)| (k, Value::U64(v))).collect()),
            ));
        }
        if !self.gauges.is_empty() {
            fields.push((
                "gauges".into(),
                Value::Map(self.gauges.into_iter().map(|(k, v)| (k, Value::F64(v))).collect()),
            ));
        }
        if !self.spans.is_empty() {
            fields.push((
                "spans".into(),
                Value::Map(
                    self.spans
                        .into_iter()
                        .map(|(k, (s, n))| {
                            (
                                k,
                                Value::Map(vec![
                                    ("s".into(), Value::F64(s)),
                                    ("n".into(), Value::U64(n)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ));
        }
    }
}

/// Streams one self-describing JSON record per emit to an append-only
/// JSONL file.
///
/// # Schema
///
/// Every line is one JSON object:
///
/// ```json
/// {"schema":"spikefolio.run.v1","seq":3,"kind":"epoch",
///  "epoch":3,"reward":0.12,...,
///  "counters":{"loihi/synops":1500},
///  "gauges":{"train/queue/occupancy":2},
///  "spans":{"train/epoch/forward_batch":{"s":0.8,"n":8}}}
/// ```
///
/// * `schema` — [`SCHEMA`], stamped on every line so concatenated logs
///   stay self-describing;
/// * `seq` — 0-based record index within this sink;
/// * `kind` — the record kind (`"epoch"`, `"backtest_step"`, …);
/// * the record's own fields, in emission order;
/// * `counters` / `gauges` / `spans` — everything observed since the
///   previous emit (counter deltas, last gauge values, span totals with
///   call counts), omitted when empty.
///
/// [`finish`](JsonlSink::finish) appends a final `run_end` record with
/// whole-run counter totals and flushes the file.
#[derive(Debug)]
pub struct JsonlSink<W: Write = BufWriter<File>> {
    out: W,
    seq: u64,
    window: MetricWindow,
    counter_totals: BTreeMap<String, u64>,
    error: Option<io::Error>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a run-log file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }

    /// Opens `path` for appending (the log format is append-only, so
    /// resumed runs may share one file).
    ///
    /// # Errors
    ///
    /// Propagates the file-open error.
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        let f = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self::new(BufWriter::new(f)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer (e.g. a `Vec<u8>` in tests).
    pub fn new(out: W) -> Self {
        Self {
            out,
            seq: 0,
            window: MetricWindow::default(),
            counter_totals: BTreeMap::new(),
            error: None,
        }
    }

    /// The first I/O error encountered, if any. Writes after an error are
    /// dropped; check this (or use [`finish`](Self::finish)) to surface
    /// failures.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.seq
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.out.write_all(line.as_bytes()).and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }

    /// Writes a final `run_end` record with whole-run counter totals,
    /// flushes, and returns the writer.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error of the sink's lifetime, if any.
    pub fn finish(mut self) -> io::Result<W> {
        let totals = std::mem::take(&mut self.counter_totals);
        let mut end = Record::new("run_end").field("records", self.seq);
        if !totals.is_empty() {
            end = end.field(
                "counter_totals",
                Value::Map(totals.into_iter().map(|(k, v)| (k, Value::U64(v))).collect()),
            );
        }
        self.emit(end);
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.out),
        }
    }
}

impl<W: Write> Recorder for JsonlSink<W> {
    fn counter(&mut self, label: &str, delta: u64) {
        *self.window.counters.entry(label.to_owned()).or_insert(0) += delta;
        *self.counter_totals.entry(label.to_owned()).or_insert(0) += delta;
    }

    fn gauge(&mut self, label: &str, value: f64) {
        self.window.gauges.insert(label.to_owned(), value);
    }

    fn span(&mut self, label: &str, seconds: f64) {
        let slot = self.window.spans.entry(label.to_owned()).or_insert((0.0, 0));
        slot.0 += seconds;
        slot.1 += 1;
    }

    fn emit(&mut self, record: Record) {
        let mut fields: Vec<(String, Value)> = Vec::with_capacity(record.fields().len() + 5);
        fields.push(("schema".into(), Value::Str(SCHEMA.into())));
        fields.push(("seq".into(), Value::U64(self.seq)));
        fields.push(("kind".into(), Value::Str(record.kind().to_owned())));
        let kind_owned = record.into_fields();
        fields.extend(kind_owned);
        if !self.window.is_empty() {
            self.window.take().attach(&mut fields);
        }
        let line = Value::Map(fields).to_json();
        self.write_line(&line);
        self.seq += 1;
    }
}

/// An in-memory recorder: keeps counter totals, last gauge values, span
/// totals, and every emitted record. Used by tests and by callers that
/// want programmatic access instead of a file.
#[derive(Debug, Default, Clone)]
pub struct MemoryRecorder {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    spans: BTreeMap<String, (f64, u64)>,
    records: Vec<Record>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total of counter `label` (0 if never incremented).
    pub fn counter_total(&self, label: &str) -> u64 {
        self.counters.get(label).copied().unwrap_or(0)
    }

    /// Last observed value of gauge `label`.
    pub fn gauge_value(&self, label: &str) -> Option<f64> {
        self.gauges.get(label).copied()
    }

    /// `(total seconds, span count)` of span `label`.
    pub fn span_total(&self, label: &str) -> (f64, u64) {
        self.spans.get(label).copied().unwrap_or((0.0, 0))
    }

    /// All emitted records, in order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// All counter totals (label-sorted).
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }
}

impl Recorder for MemoryRecorder {
    fn counter(&mut self, label: &str, delta: u64) {
        *self.counters.entry(label.to_owned()).or_insert(0) += delta;
    }

    fn gauge(&mut self, label: &str, value: f64) {
        self.gauges.insert(label.to_owned(), value);
    }

    fn span(&mut self, label: &str, seconds: f64) {
        let slot = self.spans.entry(label.to_owned()).or_insert((0.0, 0));
        slot.0 += seconds;
        slot.1 += 1;
    }

    fn emit(&mut self, record: Record) {
        self.records.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::parse;

    fn lines(buf: &[u8]) -> Vec<Value> {
        std::str::from_utf8(buf)
            .unwrap()
            .lines()
            .map(|l| parse(l).expect("valid JSON line"))
            .collect()
    }

    #[test]
    fn sink_writes_schema_stamped_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(Record::new("epoch").field("epoch", 0u64).field("reward", 0.5));
        sink.emit(Record::new("epoch").field("epoch", 1u64).field("reward", 0.75));
        let buf = sink.finish().unwrap();
        let ls = lines(&buf);
        assert_eq!(ls.len(), 3); // two epochs + run_end
        for (i, l) in ls.iter().enumerate() {
            assert_eq!(l.get("schema").and_then(Value::as_str), Some(SCHEMA));
            assert_eq!(l.get("seq").and_then(Value::as_u64), Some(i as u64));
        }
        assert_eq!(ls[0].get("kind").and_then(Value::as_str), Some("epoch"));
        assert_eq!(ls[1].get("reward").and_then(Value::as_f64), Some(0.75));
        assert_eq!(ls[2].get("kind").and_then(Value::as_str), Some("run_end"));
        assert_eq!(ls[2].get("records").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn metrics_attach_to_the_next_record_and_reset() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.counter("loihi/synops", 100);
        sink.counter("loihi/synops", 50);
        sink.gauge("train/queue/occupancy", 2.0);
        sink.span("train/epoch/forward_batch", 0.25);
        sink.span("train/epoch/forward_batch", 0.25);
        sink.emit(Record::new("epoch").field("epoch", 0u64));
        sink.emit(Record::new("epoch").field("epoch", 1u64));
        let buf = sink.finish().unwrap();
        let ls = lines(&buf);
        let first = &ls[0];
        assert_eq!(
            first.get("counters").and_then(|c| c.get("loihi/synops")).and_then(Value::as_u64),
            Some(150)
        );
        let span = first.get("spans").and_then(|s| s.get("train/epoch/forward_batch")).unwrap();
        assert_eq!(span.get("s").and_then(Value::as_f64), Some(0.5));
        assert_eq!(span.get("n").and_then(Value::as_u64), Some(2));
        // The second record carries no metric window…
        assert_eq!(ls[1].get("counters"), None);
        // …but run totals survive to run_end.
        assert_eq!(
            ls[2].get("counter_totals").and_then(|c| c.get("loihi/synops")).and_then(Value::as_u64),
            Some(150)
        );
    }

    #[test]
    fn memory_recorder_aggregates() {
        let mut rec = MemoryRecorder::new();
        rec.counter("a", 2);
        rec.counter("a", 3);
        rec.gauge("g", 1.0);
        rec.gauge("g", 4.0);
        rec.span("s", 0.5);
        rec.emit(Record::new("k"));
        assert_eq!(rec.counter_total("a"), 5);
        assert_eq!(rec.gauge_value("g"), Some(4.0));
        assert_eq!(rec.span_total("s"), (0.5, 1));
        assert_eq!(rec.records().len(), 1);
        assert_eq!(rec.counter_total("missing"), 0);
    }
}
