//! Regenerates the evaluation "figures": writes CSV files with the
//! portfolio value curves of every Table 3 strategy on each experiment's
//! backtest range, plus the SDP training reward curve.
//!
//! ```sh
//! cargo run --release --example value_curves
//! ls target/figures/
//! ```

use spikefolio::experiments::RunOptions;
use spikefolio::figures::{backtest_value_curves, training_reward_csv};
use spikefolio::SdpConfig;
use spikefolio_market::experiments::ExperimentPreset;

fn main() -> std::io::Result<()> {
    let mut config = SdpConfig::smoke();
    config.training.epochs = 6;
    config.training.steps_per_epoch = 15;
    config.training.batch_size = 32;
    config.training.learning_rate = 1e-3;
    let opts = RunOptions {
        config,
        shrink: Some((160, 45)),
        market_seed: 2016,
        guard: None,
        sanitize: None,
    };

    let out_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out_dir)?;

    for (i, preset) in ExperimentPreset::all().into_iter().enumerate() {
        let (curves_csv, sdp_log) = backtest_value_curves(&opts, preset);
        let curve_path = out_dir.join(format!("experiment{}_value_curves.csv", i + 1));
        std::fs::write(&curve_path, &curves_csv)?;
        let reward_path = out_dir.join(format!("experiment{}_sdp_reward.csv", i + 1));
        std::fs::write(&reward_path, training_reward_csv(&sdp_log))?;
        println!(
            "experiment {}: wrote {} ({} rows) and {}",
            i + 1,
            curve_path.display(),
            curves_csv.lines().count() - 1,
            reward_path.display()
        );
    }
    println!("\nplot with any tool, e.g.:");
    println!("  python3 -c \"import pandas as pd; pd.read_csv('target/figures/experiment1_value_curves.csv', index_col=0).plot(logy=True)\"");
    Ok(())
}
