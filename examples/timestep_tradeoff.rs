//! Ablation A: the energy/performance trade-off versus simulation length
//! `T` discussed in §III.B ("the larger the T, the better the performance
//! cost, but the higher the energy cost").
//!
//! ```sh
//! cargo run --release --example timestep_tradeoff
//! ```

use spikefolio::experiments::{timestep_tradeoff, RunOptions};
use spikefolio::report::format_timestep_tradeoff;
use spikefolio::SdpConfig;

fn main() {
    let mut config = SdpConfig::smoke();
    config.training.epochs = 5;
    config.training.steps_per_epoch = 12;
    config.training.batch_size = 24;
    config.training.learning_rate = 1e-3;
    let opts = RunOptions {
        config,
        shrink: Some((120, 30)),
        market_seed: 2016,
        guard: None,
        sanitize: None,
    };

    let sweep = [1, 2, 5, 10, 20];
    eprintln!("retraining and redeploying SDP at T = {sweep:?} ...");
    let points = timestep_tradeoff(&opts, &sweep);
    println!("{}", format_timestep_tradeoff(&points));
    println!("energy grows with T (event counts scale with simulation length);");
    println!("backtest quality saturates near the paper's operating point T = 5.");
}
