//! Reproduces Table 3: MDD / fAPV / Sharpe for SDP, DRL[Jiang], ONS,
//! Best Stock, ANTICOR, M0, and UCRP over the three Table 1 experiments.
//!
//! ```sh
//! cargo run --release --example table3_backtests            # medium scale (~1 min)
//! cargo run --release --example table3_backtests -- --full  # full Table 1 ranges
//! cargo run --release --example table3_backtests -- --smoke # CI scale (seconds)
//! ```

use spikefolio::experiments::{run_table3, RunOptions};
use spikefolio::report::format_table3;
use spikefolio::SdpConfig;

fn options() -> RunOptions {
    let arg = std::env::args().nth(1).unwrap_or_default();
    match arg.as_str() {
        "--full" => RunOptions::paper(),
        "--smoke" => RunOptions::smoke(),
        _ => {
            // Medium scale: paper network hyperparameters on a compressed
            // calendar, enough for the Table 3 shape to emerge.
            let mut config = SdpConfig::paper();
            config.state.window = 6;
            config.network.hidden = vec![64, 64];
            config.network.pop_in = 6;
            config.network.pop_out = 6;
            config.training.epochs = 10;
            config.training.steps_per_epoch = 20;
            config.training.batch_size = 32;
            config.training.learning_rate = 5e-4;
            RunOptions {
                config,
                shrink: Some((240, 60)),
                market_seed: 2016,
                guard: None,
                sanitize: None,
            }
        }
    }
}

fn main() {
    let opts = options();
    eprintln!(
        "running Table 3 at {} scale...",
        if opts.shrink.is_some() { "reduced" } else { "full" }
    );
    let outcomes = run_table3(&opts);
    println!("{}", format_table3(&outcomes));

    // The paper's qualitative claims, checked on this run.
    for out in &outcomes {
        let sdp = &out.row("SDP").expect("sdp row").metrics;
        let drl = &out.row("DRL[Jiang]").expect("drl row").metrics;
        println!(
            "{}: SDP fAPV {:.3} vs DRL {:.3} ({})",
            out.experiment,
            sdp.fapv,
            drl.fapv,
            if sdp.fapv >= drl.fapv {
                "SDP ahead, as in the paper"
            } else {
                "DRL ahead on this seed"
            }
        );
    }
}
