//! Longer SDP training run with per-epoch diagnostics: the Fig. 1 training
//! loop on experiment 1, followed by a held-out backtest against the DRL
//! baseline trained with the identical budget.
//!
//! ```sh
//! cargo run --release --example train_sdp
//! ```

use spikefolio::agent::SdpAgent;
use spikefolio::config::SdpConfig;
use spikefolio::drl::DrlAgent;
use spikefolio::training::Trainer;
use spikefolio_env::Backtester;
use spikefolio_market::experiments::ExperimentPreset;

fn main() {
    let preset = ExperimentPreset::experiment1().shrunk(300, 75);
    let (train, test) = preset.generate_split(2016);

    let mut config = SdpConfig::paper();
    config.state.window = 6;
    config.network.hidden = vec![64, 64];
    config.network.pop_in = 6;
    config.network.pop_out = 6;
    config.training.epochs = 15;
    config.training.steps_per_epoch = 25;
    config.training.batch_size = 32;
    config.training.learning_rate = 5e-4;

    let trainer = Trainer::new(&config);

    let mut sdp = SdpAgent::new(&config, train.num_assets(), config.seed);
    println!(
        "SDP: {} params | window {} | T = {} | hidden {:?}",
        sdp.network.num_params(),
        config.state.window,
        config.network.timesteps,
        config.network.hidden
    );
    println!("epoch |  SDP mean log-return");
    let sdp_log = trainer.train_sdp(&mut sdp, &train);
    for (i, r) in sdp_log.epoch_rewards.iter().enumerate() {
        let bar = "#".repeat(((r * 2e4).max(0.0) as usize).min(60));
        println!("{:>5} | {:+.6} {bar}", i + 1, r);
    }

    let mut drl = DrlAgent::new(&config, train.num_assets(), config.seed);
    let drl_log = trainer.train_drl(&mut drl, &train);
    println!(
        "\nfinal training reward: SDP {:+.6} vs DRL {:+.6}",
        sdp_log.final_reward(),
        drl_log.final_reward()
    );

    let backtester = Backtester::new(config.backtest);
    let r_sdp = backtester.run(&mut sdp, &test);
    let r_drl = backtester.run(&mut drl, &test);
    println!("\nheld-out backtest ({} periods):", test.num_periods());
    println!("  SDP       : {}", r_sdp.metrics);
    println!("  DRL[Jiang]: {}", r_drl.metrics);
}
