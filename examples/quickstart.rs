//! Quickstart: generate a synthetic crypto market, train a small SDP
//! agent, and backtest it against the uniform benchmark.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use spikefolio::agent::SdpAgent;
use spikefolio::config::SdpConfig;
use spikefolio::training::Trainer;
use spikefolio_baselines::Ucrp;
use spikefolio_env::Backtester;
use spikefolio_market::experiments::ExperimentPreset;

fn main() {
    // Table 1, experiment 1 — shrunk so the demo runs in seconds.
    let preset = ExperimentPreset::experiment1().shrunk(180, 45);
    println!(
        "{}: train {} → {}, backtest {} → {}",
        preset.name, preset.train_start, preset.backtest_start, preset.backtest_start, preset.end
    );
    let (train, test) = preset.generate_split(42);
    println!(
        "generated {} assets × {} train / {} backtest periods",
        train.num_assets(),
        train.num_periods(),
        test.num_periods()
    );

    // A small SDP: population coding → LIF × 24 → rate decoder, T = 5.
    let mut config = SdpConfig::smoke();
    config.training.epochs = 8;
    config.training.steps_per_epoch = 16;
    config.training.batch_size = 32;
    config.training.learning_rate = 1e-3;

    let mut agent = SdpAgent::new(&config, train.num_assets(), config.seed);
    println!("{}", agent.network.summary());

    println!("training...");
    let log = Trainer::new(&config).train_sdp(&mut agent, &train);
    for (i, r) in log.epoch_rewards.iter().enumerate() {
        println!("  epoch {:>2}: mean log return {:+.6}", i + 1, r);
    }

    let backtester = Backtester::new(config.backtest);
    let sdp = backtester.run(&mut agent, &test);
    let ucrp = backtester.run(&mut Ucrp::new(), &test);

    println!("\nbacktest ({} periods):", test.num_periods());
    println!("  SDP : {}", sdp.metrics);
    println!("  UCRP: {}", ucrp.metrics);
}
