//! Walk-forward (online) retraining: the agent periodically refreshes its
//! weights on a trailing window while trading forward — the deployment
//! mode the paper's real-time/embedded motivation implies.
//!
//! ```sh
//! cargo run --release --example online_rebalancing
//! ```

use spikefolio::config::SdpConfig;
use spikefolio::online::{walk_forward, WalkForwardConfig};
use spikefolio_env::analysis::rolling_sharpe;
use spikefolio_market::experiments::ExperimentPreset;

fn main() {
    // One long market spanning several regimes.
    let market = ExperimentPreset::experiment2().shrunk(360, 0).generate(2016);

    let mut config = SdpConfig::smoke();
    config.training.epochs = 4;
    config.training.steps_per_epoch = 10;
    config.training.batch_size = 24;
    config.training.learning_rate = 1e-3;

    let wf = WalkForwardConfig { train_window: 300, trade_window: 80, retrain_from_scratch: false };
    println!(
        "walk-forward: retrain on trailing {} periods, trade {} periods per block",
        wf.train_window, wf.trade_window
    );
    let result = walk_forward(&config, wf, &market, 7);
    println!("{} retrainings over {} traded periods", result.retrainings, result.values.len() - 1);
    for (i, r) in result.block_rewards.iter().enumerate() {
        println!("  block {:>2}: final training reward {:+.6}", i + 1, r);
    }
    println!("\ncompounded result: {}", result.metrics);

    let rs = rolling_sharpe(&result.values, 40);
    if let (Some(first), Some(last)) = (rs.first(), rs.last()) {
        println!("rolling Sharpe (40-period): starts {:+.3}, ends {:+.3}", first, last);
    }
}
