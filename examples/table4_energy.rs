//! Reproduces Table 4: idle/dynamic power, throughput, and energy per
//! inference for the DRL baseline on CPU/GPU vs SDP on the Loihi model.
//!
//! ```sh
//! cargo run --release --example table4_energy
//! cargo run --release --example table4_energy -- --smoke
//! ```

use spikefolio::experiments::{run_table4, RunOptions, PAPER_LOIHI_NJ_PER_INF};
use spikefolio::report::format_table4;
use spikefolio::SdpConfig;

fn options() -> RunOptions {
    if std::env::args().any(|a| a == "--smoke") {
        return RunOptions::smoke();
    }
    let mut config = SdpConfig::paper();
    config.training.epochs = 4; // Table 4 only needs a trained-enough policy
    config.training.steps_per_epoch = 10;
    config.training.batch_size = 32;
    RunOptions { config, shrink: Some((120, 40)), market_seed: 2016, guard: None, sanitize: None }
}

fn main() {
    let opts = options();
    eprintln!(
        "training + deploying SDP for each experiment (this touches every pipeline stage)..."
    );
    let outcomes = run_table4(&opts);
    println!("{}", format_table4(&outcomes));

    println!("paper headline: ≥186x energy advantage vs CPU, ≥516x vs GPU;");
    println!(
        "calibration endpoint: Loihi at T={} on Experiment 1 = {:.2} nJ/inf (paper: {:.2})",
        opts.config.network.timesteps,
        outcomes[0].loihi().nj_per_inf,
        PAPER_LOIHI_NJ_PER_INF
    );
    for out in &outcomes {
        println!(
            "{}: {:.0}x vs CPU, {:.0}x vs GPU",
            out.experiment,
            out.cpu_advantage(),
            out.gpu_advantage()
        );
    }
}
