//! Extended strategy comparison: the Table 3 roster plus EG, PAMR, OLMAR,
//! and buy-and-hold, with allocation statistics per strategy — a broader
//! sweep over the Li & Hoi strategy families than the paper prints.
//!
//! ```sh
//! cargo run --release --example extended_comparison
//! ```

use spikefolio::experiments::{run_extended_comparison, RunOptions};
use spikefolio::SdpConfig;
use spikefolio_market::experiments::ExperimentPreset;

fn main() {
    let mut config = SdpConfig::smoke();
    config.training.epochs = 6;
    config.training.steps_per_epoch = 15;
    config.training.batch_size = 32;
    config.training.learning_rate = 1e-3;
    let opts = RunOptions {
        config,
        shrink: Some((160, 45)),
        market_seed: 2016,
        guard: None,
        sanitize: None,
    };

    for preset in ExperimentPreset::all() {
        let out = run_extended_comparison(&opts, preset);
        println!("=== {} ===", out.experiment);
        println!(
            "{:<14} {:>10} {:>12} {:>10} {:>10} {:>10}",
            "Strategy", "MDD", "fAPV", "Sharpe", "Sortino", "vol(ann)"
        );
        for row in &out.rows {
            println!(
                "{:<14} {:>10.3} {:>12.4} {:>10.3} {:>10.3} {:>10.3}",
                row.strategy,
                row.metrics.mdd,
                row.metrics.fapv,
                row.metrics.sharpe,
                row.metrics.sortino,
                row.metrics.annual_volatility
            );
        }
        println!();
    }
}
