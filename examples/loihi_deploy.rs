//! Fig. 2 deployment walk-through: train SDP, rescale per eq. (14), map
//! onto the chip model, and compare float vs on-chip decisions and the
//! energy profile.
//!
//! ```sh
//! cargo run --release --example loihi_deploy
//! ```

use spikefolio::agent::SdpAgent;
use spikefolio::config::SdpConfig;
use spikefolio::deploy::LoihiDeployment;
use spikefolio::training::Trainer;
use spikefolio_env::Backtester;
use spikefolio_loihi::energy::LoihiEnergyModel;
use spikefolio_loihi::LoihiChip;
use spikefolio_market::experiments::ExperimentPreset;

fn main() {
    let preset = ExperimentPreset::experiment1().shrunk(150, 40);
    let (train, test) = preset.generate_split(7);

    let mut config = SdpConfig::smoke();
    config.training.epochs = 6;
    config.training.steps_per_epoch = 15;
    config.training.batch_size = 32;
    config.training.learning_rate = 1e-3;

    let mut agent = SdpAgent::new(&config, train.num_assets(), config.seed);
    println!("training SDP ({} params)...", agent.network.num_params());
    let _ = Trainer::new(&config).train_sdp(&mut agent, &train);

    println!("quantizing per eq. (14) and mapping onto the chip model...");
    let mut deployed = LoihiDeployment::new(&agent, &LoihiChip::default()).expect("fits on chip");
    let report = deployed.quantization_report();
    for (k, (r, e)) in report.ratios.iter().zip(&report.max_errors).enumerate() {
        println!("  layer {k}: rescale ratio {r:>9.2}, max weight error {e:.2e}");
    }
    let alloc = deployed.allocation();
    println!(
        "  chip allocation: {} cores, {} compartments, {} synapses",
        alloc.total_cores, alloc.total_compartments, alloc.total_synapses
    );

    let backtester = Backtester::new(config.backtest);
    let r_float = backtester.run(&mut agent, &test);
    let r_chip = backtester.run(&mut deployed, &test);
    println!("\nbacktest ({} periods):", test.num_periods());
    println!("  float SDP  : {}", r_float.metrics);
    println!("  SDP (Loihi): {}", r_chip.metrics);

    let stats = deployed.mean_stats().to_spike_stats();
    println!(
        "\nmean events/inference: {} input spikes, {} neuron spikes, {} synops, {} updates",
        stats.encoder_spikes, stats.neuron_spikes, stats.synops, stats.neuron_updates
    );
    let physical = LoihiEnergyModel::davies2018();
    let calibrated = LoihiEnergyModel::calibrated(&stats, 15.81);
    println!(
        "energy/inference: {:.2} µJ (Davies-2018 constants) | {:.2} nJ (paper-calibrated)",
        physical.dynamic_energy(&stats) * 1e6,
        calibrated.dynamic_energy(&stats) * 1e9
    );
    println!(
        "latency/inference: {:.0} µs at T = {}",
        physical.latency(config.network.timesteps) * 1e6,
        config.network.timesteps
    );
}
