#!/usr/bin/env bash
# Repository gate: formatting, lints (warnings are errors), and the full
# test suite. Run from the workspace root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> chaos suite (fault injection + property tests)"
cargo test -q -p spikefolio --test fault_injection

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run --workspace

echo "==> bench-baseline smoke (pin + self-compare must pass)"
mkdir -p target
cargo run --release -q --bin spikefolio -- bench run --smoke --seed 7 \
  --out target/bench_smoke.json
cargo run --release -q --bin spikefolio -- bench compare target/bench_smoke.json --smoke --seed 7

echo "==> profile smoke (chrome trace must be valid JSON)"
cargo run --release -q --bin spikefolio -- profile --smoke --seed 7 \
  --trace target/profile_trace.json >/dev/null
python3 -c "import json,sys; d=json.load(open('target/profile_trace.json')); \
events=d['traceEvents']; assert events, 'empty trace'; \
print(f'    profile_trace.json OK ({len(events)} events)')" 2>/dev/null \
  || test -s target/profile_trace.json

echo "==> serve smoke (loopback server, seeded checkpoint, deterministic loadgen)"
cargo run --release -q --bin spikefolio -- checkpoint init target/serve_smoke.ckpt \
  --smoke --seed 7
cargo run --release -q --bin spikefolio -- loadgen --smoke \
  --checkpoint target/serve_smoke.ckpt --seed 7

echo "CI checks passed."
