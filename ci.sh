#!/usr/bin/env bash
# Repository gate: formatting, lints (warnings are errors), and the full
# test suite. Run from the workspace root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> chaos suite (fault injection + property tests)"
cargo test -q -p spikefolio --test fault_injection

echo "==> live-desk chaos acceptance (gate invariants, bitwise replay)"
cargo test -q -p spikefolio --test live_desk

echo "==> sparse-kernel equivalence battery (dense vs event-driven, bitwise)"
cargo test -q -p spikefolio --test sparse_kernels

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run --workspace

echo "==> bench-baseline smoke (pin + self-compare must pass)"
mkdir -p target
cargo run --release -q --bin spikefolio -- bench run --smoke --seed 7 \
  --out target/bench_smoke.json
cargo run --release -q --bin spikefolio -- bench compare target/bench_smoke.json --smoke --seed 7
python3 -c "import json; d=json.load(open('target/bench_smoke.json')); \
e={x['name']: x['ops'] for x in d['entries']}; f=e['forward/b32']; \
assert f['sparse_events'] == f['synops'] > 0, \
    f\"kernel event tally {f['sparse_events']} != synops {f['synops']}\"; \
print(f\"    forward/b32 sparse_events == synops == {f['synops']}\")"

echo "==> profile smoke (chrome trace must be valid JSON)"
cargo run --release -q --bin spikefolio -- profile --smoke --seed 7 \
  --trace target/profile_trace.json >/dev/null
python3 -c "import json,sys; d=json.load(open('target/profile_trace.json')); \
events=d['traceEvents']; assert events, 'empty trace'; \
print(f'    profile_trace.json OK ({len(events)} events)')" 2>/dev/null \
  || test -s target/profile_trace.json

echo "==> serve smoke (loopback server, seeded checkpoint, deterministic loadgen)"
cargo run --release -q --bin spikefolio -- checkpoint init target/serve_smoke.ckpt \
  --smoke --seed 7
cargo run --release -q --bin spikefolio -- loadgen --smoke \
  --checkpoint target/serve_smoke.ckpt --seed 7

echo "==> observatory smoke (metrics verb schema + exact stage counts under load)"
OBS_REQUESTS=192
cargo run --release -q --bin spikefolio -- serve --checkpoint target/serve_smoke.ckpt \
  --smoke --addr 127.0.0.1:0 --trace-sample 64 --trace target/serve_trace.json \
  > target/serve_obs.log 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
# The server prints its bound address ("serving ... on HOST:PORT ...") on
# startup; poll the log until it appears.
OBS_ADDR=""
for _ in $(seq 1 50); do
  OBS_ADDR=$(sed -n 's/^serving .* on \([0-9.]*:[0-9]*\) .*$/\1/p' target/serve_obs.log | head -1)
  [ -n "$OBS_ADDR" ] && break
  sleep 0.1
done
test -n "$OBS_ADDR" || { echo "server never reported its address"; cat target/serve_obs.log; exit 1; }
cargo run --release -q --bin spikefolio -- loadgen --addr "$OBS_ADDR" \
  --requests "$OBS_REQUESTS" --seed 7 --out target/loadgen_obs.json
# Mid-life dashboard scrape: one serve-top frame must render.
cargo run --release -q --bin spikefolio -- serve-top --addr "$OBS_ADDR" --iterations 1 \
  | grep -q "spikefolio serve-top" || { echo "serve-top frame missing"; exit 1; }
# Scrape the snapshot and validate: schema tag, and each of the six stage
# histogram counts exactly equals the loadgen request tally (the
# observatory's no-lost-no-double-count invariant).
python3 - "$OBS_ADDR" "$OBS_REQUESTS" <<'PYEOF'
import json, socket, sys
addr, expected = sys.argv[1], int(sys.argv[2])
host, port = addr.rsplit(":", 1)
s = socket.create_connection((host, int(port)), timeout=10)
s.sendall(b'{"cmd":"metrics"}\n')
buf = b""
while not buf.endswith(b"\n"):
    chunk = s.recv(65536)
    if not chunk:
        break
    buf += chunk
s.close()
resp = json.loads(buf.decode())
assert resp.get("ok") is True, f"metrics verb failed: {resp}"
assert resp.get("schema") == "spikefolio.metrics.v1", f"schema: {resp.get('schema')}"
m = resp.get("metrics", {})
stages = m.get("stages", {})
for stage in ("accept", "parse", "queue_wait", "batch_form", "backend_infer", "render"):
    count = stages.get(stage, {}).get("count")
    assert count == expected, f"stage {stage}: count {count} != issued requests {expected}"
served = m.get("counters", {}).get("served")
assert served == expected, f"served {served} != {expected}"
health = m.get("health", {})
assert isinstance(health.get("degraded"), bool), "health.degraded missing"
trace = m.get("trace", {})
assert trace.get("sample_every") == 64, f"trace sampling: {trace}"
print(f"    metrics schema OK; all 6 stage counts == {expected}; "
      f"{trace.get('sampled', 0)} requests trace-sampled")
PYEOF
# Clean shutdown via the protocol, then the sampled request trace must be
# valid chrome-trace JSON.
python3 - "$OBS_ADDR" <<'PYEOF'
import socket, sys
host, port = sys.argv[1].rsplit(":", 1)
s = socket.create_connection((host, int(port)), timeout=10)
s.sendall(b'{"cmd":"shutdown"}\n')
s.recv(4096)
s.close()
PYEOF
wait "$SERVE_PID"
trap - EXIT
python3 -c "import json; d=json.load(open('target/serve_trace.json')); \
events=[e for e in d['traceEvents'] if e.get('name','').startswith('serve/req/')]; \
assert events, 'no sampled request spans in trace'; \
print(f'    serve_trace.json OK ({len(events)} request spans)')"

echo "==> live-desk smoke (seeded fault script; serving must never regress)"
rm -rf target/live_desk_smoke
# Seed 5 is picked so the faulted rounds reach their fault's pipeline
# stage (a round the reward floor rejects never attempts its swap, so a
# swapio fault scheduled there would go unexercised).
cargo run --release -q --bin spikefolio -- live-desk --seed 5 --rounds 4 --epochs 2 \
  --faults "corrupt@1,nan@2,swapio@3" --dir target/live_desk_smoke \
  --out target/live_desk_smoke/report.json
python3 - <<'PYEOF'
import json
d = json.load(open("target/live_desk_smoke/report.json"))
assert d["schema"] == "spikefolio.desk.v1", f"schema: {d.get('schema')}"
gated = set(d["gate_passed_versions"])
for r in d["rounds"]:
    s, i = r["serving_reward"], r["incumbent_reward"]
    if s == s and i == i:  # both finite (NaN != NaN)
        assert s >= i, f"round {r['round']}: served {s} regressed below incumbent {i}"
    assert r["served_version"] in gated, \
        f"round {r['round']} served ungated v{r['served_version']}"
assert d["final_version"] in gated, f"final v{d['final_version']} ungated"
assert d["recoveries"] >= 3, f"3 injected faults, only {d['recoveries']} recoveries"
assert d["degraded"] is False, "desk must end healthy after recovering every fault"
assert d["ended_early"] is False, "feed must not stall in the smoke"
print(f"    live-desk OK: {d['promotions']} promoted, {d['quarantines']} quarantined, "
      f"{d['recoveries']} recoveries, serving v{d['final_version']} "
      f"(crc {d['final_weights_crc']:#010x}), degraded cleared")
PYEOF
# The desk-top dashboard must render one frame from the final status file.
cargo run --release -q --bin spikefolio -- desk-top \
  --status target/live_desk_smoke/desk-top.json --iterations 1 \
  | grep -q "spikefolio desk-top" || { echo "desk-top frame missing"; exit 1; }

echo "==> blackbox crash smoke (panic mid-round must leave an ordered flight-recorder dump)"
rm -rf target/blackbox_smoke
cargo run --release -q --bin spikefolio -- live-desk --seed 5 --rounds 2 --epochs 2 \
  --faults "crash@1" --dir target/blackbox_smoke > target/blackbox_smoke.log 2>&1 \
  && { echo "crash fault did not kill the desk"; exit 1; } || true
python3 - <<'PYEOF'
import json
d = json.load(open("target/blackbox_smoke/blackbox.json"))
assert d["schema"] == "spikefolio.blackbox.v1", f"schema: {d.get('schema')}"
ev = d["events"]
assert ev, "empty dump"
seqs = [e["seq"] for e in ev]
assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs), f"unordered tail: {seqs}"
assert ev[-1]["stage"] == "panic", f"last event {ev[-1]['stage']!r} is not the panic"
stages = [e["stage"] for e in ev]
ci = stages.index("fault/crash")
assert ci < len(stages) - 1, "crash event must precede the panic"
assert ev[ci]["round"] == 1, f"crash recorded for round {ev[ci].get('round')}, scheduled for 1"
print(f"    blackbox dump OK: {len(ev)} events, ordered tail ends at the panic (seq {seqs[-1]})")
PYEOF

echo "==> lineage ledger smoke (verb renders; JSON schema checks out)"
cargo run --release -q --bin spikefolio -- lineage target/live_desk_smoke/lineage.jsonl \
  | grep -q "round" || { echo "lineage table missing"; exit 1; }
cargo run --release -q --bin spikefolio -- lineage target/live_desk_smoke/lineage.jsonl --json \
  > target/lineage_smoke.json
python3 - <<'PYEOF'
import json
d = json.load(open("target/lineage_smoke.json"))
assert d["schema"] == "spikefolio.lineage-log.v1", f"schema: {d.get('schema')}"
assert d["skipped"] == 0, f"{d['skipped']} torn/corrupt ledger lines in a clean run"
assert len(d["entries"]) == 4, f"{len(d['entries'])} ledger entries != 4 desk rounds"
print(f"    lineage ledger OK: {len(d['entries'])} entries, 0 skipped")
PYEOF

echo "==> scenario matrix smoke (2 universes x 2 scenarios; schema + determinism + coverage)"
cargo run --release -q --bin spikefolio -- scenarios run \
  --universes crypto,equity --scenarios calm,flash-crash --smoke --seed 11 \
  --json --out target/scenario_smoke_a.json > /dev/null
cargo run --release -q --bin spikefolio -- scenarios run \
  --universes crypto,equity --scenarios calm,flash-crash --smoke --seed 11 \
  --json --out target/scenario_smoke_b.json > /dev/null
cmp target/scenario_smoke_a.json target/scenario_smoke_b.json \
  || { echo "scorecard not bitwise-deterministic under a pinned seed"; exit 1; }
python3 - <<'PYEOF'
import json
d = json.load(open("target/scenario_smoke_a.json"))
assert d["schema"] == "spikefolio.scorecard.v1", f"schema: {d.get('schema')}"
assert d["seed"] == 11, f"seed: {d.get('seed')}"
universes, scenarios = ["crypto", "equity"], ["calm", "flash-crash"]
strategies = ["SDP", "DRL[Jiang]", "EIIE", "DDPG", "ONS", "ANTICOR", "UCRP", "Buy and Hold"]
assert d["universes"] == universes and d["scenarios"] == scenarios, \
    f"axes: {d['universes']} x {d['scenarios']}"
assert set(d["strategies"]) == set(strategies), f"strategies: {d['strategies']}"
cells = {(c["universe"], c["scenario"], c["strategy"]): c for c in d["cells"]}
assert len(cells) == len(d["cells"]) == len(universes) * len(scenarios) * len(strategies), \
    f"{len(d['cells'])} cells (after dedup {len(cells)})"
for u in universes:
    for s in scenarios:
        for strat in strategies:
            c = cells[(u, s, strat)]
            for k in ("reward", "sharpe", "max_drawdown", "turnover", "cost_drag", "final_value"):
                assert isinstance(c[k], (int, float)) and c[k] == c[k], f"{(u,s,strat)}: bad {k}"
            assert c["final_value"] > 0, f"{(u,s,strat)}: value {c['final_value']}"
assert "wall_s" not in json.dumps(d), "scorecard must not carry wall-clock fields"
print(f"    scenario matrix OK: {len(d['cells'])} cells, deterministic replay, all strategies scored")
PYEOF

echo "CI checks passed."
