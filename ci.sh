#!/usr/bin/env bash
# Repository gate: formatting, lints (warnings are errors), and the full
# test suite. Run from the workspace root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> chaos suite (fault injection + property tests)"
cargo test -q -p spikefolio --test fault_injection

echo "==> sparse-kernel equivalence battery (dense vs event-driven, bitwise)"
cargo test -q -p spikefolio --test sparse_kernels

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run --workspace

echo "==> bench-baseline smoke (pin + self-compare must pass)"
mkdir -p target
cargo run --release -q --bin spikefolio -- bench run --smoke --seed 7 \
  --out target/bench_smoke.json
cargo run --release -q --bin spikefolio -- bench compare target/bench_smoke.json --smoke --seed 7
python3 -c "import json; d=json.load(open('target/bench_smoke.json')); \
e={x['name']: x['ops'] for x in d['entries']}; f=e['forward/b32']; \
assert f['sparse_events'] == f['synops'] > 0, \
    f\"kernel event tally {f['sparse_events']} != synops {f['synops']}\"; \
print(f\"    forward/b32 sparse_events == synops == {f['synops']}\")"

echo "==> profile smoke (chrome trace must be valid JSON)"
cargo run --release -q --bin spikefolio -- profile --smoke --seed 7 \
  --trace target/profile_trace.json >/dev/null
python3 -c "import json,sys; d=json.load(open('target/profile_trace.json')); \
events=d['traceEvents']; assert events, 'empty trace'; \
print(f'    profile_trace.json OK ({len(events)} events)')" 2>/dev/null \
  || test -s target/profile_trace.json

echo "==> serve smoke (loopback server, seeded checkpoint, deterministic loadgen)"
cargo run --release -q --bin spikefolio -- checkpoint init target/serve_smoke.ckpt \
  --smoke --seed 7
cargo run --release -q --bin spikefolio -- loadgen --smoke \
  --checkpoint target/serve_smoke.ckpt --seed 7

echo "CI checks passed."
