#!/usr/bin/env bash
# Repository gate: formatting, lints (warnings are errors), and the full
# test suite. Run from the workspace root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> chaos suite (fault injection + property tests)"
cargo test -q -p spikefolio --test fault_injection

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run --workspace

echo "CI checks passed."
